//! The single-index baseline for the E6 ablation: one monolithic index
//! with per-tuple eviction.
//!
//! This is the design the chained index exists to avoid — stale-tuple
//! discarding must walk individual entries of the live structure, paying
//! O(expired) removals with hash/B-tree maintenance per tuple, and the
//! bookkeeping (a FIFO of insertion timestamps) adds per-tuple memory.

use crate::sub::{IndexKind, SubIndex, ENTRY_OVERHEAD_BYTES};
use bistream_types::predicate::ProbePlan;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use std::collections::VecDeque;

/// A windowed index with no chaining: eviction removes tuples one by one.
#[derive(Debug)]
pub struct NaiveWindowIndex {
    index: SubIndex,
    window: WindowSpec,
    /// Insertion log in timestamp order: (ts, key) pairs enabling eviction.
    log: VecDeque<(Ts, Value)>,
    bytes: usize,
    expired: u64,
}

impl NaiveWindowIndex {
    /// Create an empty naive index of the given flavour over `window`.
    pub fn new(kind: IndexKind, window: WindowSpec) -> NaiveWindowIndex {
        NaiveWindowIndex {
            index: SubIndex::new(kind),
            window,
            log: VecDeque::new(),
            bytes: 0,
            expired: 0,
        }
    }

    /// Store `tuple` under `key`.
    pub fn insert(&mut self, key: Value, tuple: Tuple) {
        self.bytes +=
            tuple.size_bytes() + ENTRY_OVERHEAD_BYTES + std::mem::size_of::<(Ts, Value)>();
        self.log.push_back((tuple.ts(), key.clone()));
        self.index.insert(key, tuple);
    }

    /// Evict every stored tuple expired w.r.t. `incoming_ts` (Theorem 1 at
    /// tuple granularity). Returns tuples removed.
    pub fn expire(&mut self, incoming_ts: Ts) -> usize {
        let mut dropped = 0usize;
        while let Some((ts, _)) = self.log.front() {
            if !self.window.is_expired(*ts, incoming_ts) {
                break;
            }
            let Some((ts, key)) = self.log.pop_front() else { break };
            remove_one(&mut self.index, &key, ts);
            dropped += 1;
            self.expired += 1;
        }
        // Memory accounting: approximate, proportional to live count.
        if dropped > 0 {
            let live = self.log.len();
            let total = live + dropped;
            self.bytes = (self.bytes.checked_div(total)).unwrap_or(0) * live;
        }
        dropped
    }

    /// Visit stored tuples key-matching `plan` within window of `probe_ts`.
    /// Returns candidates visited.
    pub fn probe<F: FnMut(&Tuple)>(&self, plan: &ProbePlan, probe_ts: Ts, mut f: F) -> usize {
        let window = self.window;
        self.index.probe(plan, |t| {
            if window.in_scope(t.ts(), probe_ts) {
                f(t);
            }
        })
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Accounted bytes of live state.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Tuples evicted so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

/// Remove one tuple with timestamp `ts` stored under `key`.
fn remove_one(index: &mut SubIndex, key: &Value, ts: Ts) {
    match index {
        SubIndex::Hash(m) => {
            if let Some(v) = m.get_mut(key) {
                if let Some(pos) = v.iter().position(|t| t.ts() == ts) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    m.remove(key);
                }
            }
        }
        SubIndex::Ordered(m) => {
            if let Some(v) = m.get_mut(key) {
                if let Some(pos) = v.iter().position(|t| t.ts() == ts) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    m.remove(key);
                }
            }
        }
        SubIndex::Scan(v) => {
            if let Some(pos) = v.iter().position(|(k, t)| k == key && t.ts() == ts) {
                v.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::rel::Rel;

    fn t(ts: Ts, k: i64) -> Tuple {
        Tuple::new(Rel::R, ts, vec![Value::Int(k)])
    }

    fn exact(k: i64) -> ProbePlan {
        ProbePlan::ExactKey(Value::Int(k))
    }

    #[test]
    fn insert_probe_expire_cycle() {
        let mut n = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(100));
        for ts in [0, 50, 100, 150] {
            n.insert(Value::Int(1), t(ts, 1));
        }
        assert_eq!(n.len(), 4);
        let mut hits = Vec::new();
        n.probe(&exact(1), 150, |t| hits.push(t.ts()));
        hits.sort_unstable();
        assert_eq!(hits, vec![50, 100, 150]);
        // Expire against incoming ts=201: tuples with 201 − ts > 100,
        // i.e. ts < 101, die — that is ts ∈ {0, 50, 100}.
        let dropped = n.expire(201);
        assert_eq!(dropped, 3);
        assert_eq!(n.len(), 1);
        assert_eq!(n.expired(), 3);
    }

    #[test]
    fn eviction_is_exact_per_tuple() {
        let mut n = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(10));
        n.insert(Value::Int(1), t(0, 1));
        n.insert(Value::Int(2), t(5, 2));
        n.expire(12); // expires only ts=0 (12-0 > 10, 12-5 <= 10)
        assert_eq!(n.len(), 1);
        let mut hits = 0;
        n.probe(&exact(2), 12, |_| hits += 1);
        assert_eq!(hits, 1);
        n.probe(&exact(1), 12, |_| panic!("evicted"));
    }

    #[test]
    fn bytes_shrink_on_expiry() {
        let mut n = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(10));
        for ts in 0..100 {
            n.insert(Value::Int(ts as i64 % 5), t(ts, ts as i64 % 5));
        }
        let peak = n.bytes();
        n.expire(1_000);
        assert!(n.is_empty());
        assert!(n.bytes() < peak / 10);
    }

    #[test]
    fn works_with_ordered_flavour_and_ranges() {
        let mut n = NaiveWindowIndex::new(IndexKind::Ordered, WindowSpec::sliding(1_000));
        for k in 0..10 {
            n.insert(Value::Int(k), t(k as Ts, k));
        }
        let plan = ProbePlan::Range {
            lo: std::ops::Bound::Included(Value::Int(3)),
            hi: std::ops::Bound::Included(Value::Int(5)),
        };
        let mut keys = Vec::new();
        n.probe(&plan, 10, |t| keys.push(t.get(0).unwrap().as_int().unwrap()));
        keys.sort_unstable();
        assert_eq!(keys, vec![3, 4, 5]);
    }
}
