//! Sub-index implementations: the building blocks of the chain.
//!
//! Every sub-index stores `(key, tuple)` pairs, where the key is the
//! tuple's join attribute extracted by the joiner, and answers probes
//! described by a [`ProbePlan`]. The flavour is chosen once per joiner from
//! the predicate class and must support that predicate's plans:
//!
//! | flavour  | `ExactKey` | `Range` | `FullScan` | backing |
//! |----------|-----------|---------|------------|---------|
//! | Hash     | O(1)      | —       | O(n)       | `FxHashMap<Value, Vec<Tuple>>` |
//! | Ordered  | O(log n)  | O(log n + k) | O(n)  | `BTreeMap<Value, Vec<Tuple>>` |
//! | Scan     | —         | —       | O(n)       | `Vec<(Value, Tuple)>` |

use bistream_types::hash::FxHashMap;
use bistream_types::predicate::ProbePlan;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which sub-index flavour a joiner uses; derived from the predicate class
/// via [`IndexKind::for_predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Hash map keyed by join attribute — equi predicates.
    Hash,
    /// B-tree keyed by join attribute — band and inequality predicates.
    Ordered,
    /// Unindexed append log — cross products.
    Scan,
}

impl IndexKind {
    /// The flavour suited to a predicate: hash for equi, ordered for
    /// anything with a key range, scan for cross products.
    pub fn for_predicate(p: &bistream_types::predicate::JoinPredicate) -> IndexKind {
        use bistream_types::predicate::JoinPredicate::*;
        match p {
            Equi { .. } => IndexKind::Hash,
            Band { .. } | Theta { .. } => IndexKind::Ordered,
            Cross => IndexKind::Scan,
        }
    }
}

/// Fixed per-entry overhead charged by the memory accounting, covering the
/// key clone and container bookkeeping. A round number by design: the
/// accounting feeds relative comparisons (biclique vs matrix, chained vs
/// naive), not absolute RSS prediction.
pub const ENTRY_OVERHEAD_BYTES: usize = 48;

/// One sub-index of the chain.
#[derive(Debug)]
pub(crate) enum SubIndex {
    Hash(FxHashMap<Value, Vec<Tuple>>),
    Ordered(BTreeMap<Value, Vec<Tuple>>),
    Scan(Vec<(Value, Tuple)>),
}

impl SubIndex {
    pub(crate) fn new(kind: IndexKind) -> SubIndex {
        match kind {
            IndexKind::Hash => SubIndex::Hash(FxHashMap::default()),
            IndexKind::Ordered => SubIndex::Ordered(BTreeMap::new()),
            IndexKind::Scan => SubIndex::Scan(Vec::new()),
        }
    }

    /// Insert a tuple under its join key.
    pub(crate) fn insert(&mut self, key: Value, tuple: Tuple) {
        match self {
            SubIndex::Hash(m) => m.entry(key).or_default().push(tuple),
            SubIndex::Ordered(m) => m.entry(key).or_default().push(tuple),
            SubIndex::Scan(v) => v.push((key, tuple)),
        }
    }

    /// Number of stored tuples.
    #[allow(dead_code)] // exercised by tests; chain links track counts inline
    pub(crate) fn len(&self) -> usize {
        match self {
            SubIndex::Hash(m) => m.values().map(Vec::len).sum(),
            SubIndex::Ordered(m) => m.values().map(Vec::len).sum(),
            SubIndex::Scan(v) => v.len(),
        }
    }

    /// Visit every candidate tuple selected by `plan`, calling `f` with
    /// each. Returns the number of candidates visited (the joiner's cost
    /// model charges per candidate).
    ///
    /// Candidates are *key*-matched only; the caller still applies the
    /// pairwise window check and (for `FullScan` plans) the predicate.
    pub(crate) fn probe<F: FnMut(&Tuple)>(&self, plan: &ProbePlan, mut f: F) -> usize {
        let mut visited = 0usize;
        match (self, plan) {
            (SubIndex::Hash(m), ProbePlan::ExactKey(k)) => {
                if let Some(ts) = m.get(k) {
                    for t in ts {
                        visited += 1;
                        f(t);
                    }
                }
            }
            (SubIndex::Ordered(m), ProbePlan::ExactKey(k)) => {
                if let Some(ts) = m.get(k) {
                    for t in ts {
                        visited += 1;
                        f(t);
                    }
                }
            }
            (SubIndex::Ordered(m), ProbePlan::Range { lo, hi }) => {
                for (_, ts) in m.range((lo.clone(), hi.clone())) {
                    for t in ts {
                        visited += 1;
                        f(t);
                    }
                }
            }
            // Full scans and any plan a flavour cannot serve natively fall
            // back to visiting everything; the predicate re-check at the
            // joiner keeps this correct (only ever hit by Scan/Cross and by
            // Hash under a range plan, which the engine never produces).
            (ix, _) => {
                ix.for_each(|t| {
                    visited += 1;
                    f(t);
                });
            }
        }
        visited
    }

    /// Visit every `(key, tuple)` entry — used by snapshotting.
    pub(crate) fn for_each_entry<F: FnMut(&Value, &Tuple)>(&self, mut f: F) {
        match self {
            SubIndex::Hash(m) => {
                for (k, ts) in m {
                    for t in ts {
                        f(k, t);
                    }
                }
            }
            SubIndex::Ordered(m) => {
                for (k, ts) in m {
                    for t in ts {
                        f(k, t);
                    }
                }
            }
            SubIndex::Scan(v) => {
                for (k, t) in v {
                    f(k, t);
                }
            }
        }
    }

    fn for_each<F: FnMut(&Tuple)>(&self, mut f: F) {
        match self {
            SubIndex::Hash(m) => {
                for ts in m.values() {
                    for t in ts {
                        f(t);
                    }
                }
            }
            SubIndex::Ordered(m) => {
                for ts in m.values() {
                    for t in ts {
                        f(t);
                    }
                }
            }
            SubIndex::Scan(v) => {
                for (_, t) in v {
                    f(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::predicate::JoinPredicate;
    use bistream_types::rel::Rel;
    use std::ops::Bound;

    fn t(k: i64) -> Tuple {
        Tuple::new(Rel::R, k as u64, vec![Value::Int(k)])
    }

    fn filled(kind: IndexKind) -> SubIndex {
        let mut s = SubIndex::new(kind);
        for k in [5, 1, 3, 1] {
            s.insert(Value::Int(k), t(k));
        }
        s
    }

    #[test]
    fn kind_for_predicate() {
        assert_eq!(
            IndexKind::for_predicate(&JoinPredicate::Equi { r_attr: 0, s_attr: 0 }),
            IndexKind::Hash
        );
        assert_eq!(
            IndexKind::for_predicate(&JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 }),
            IndexKind::Ordered
        );
        assert_eq!(IndexKind::for_predicate(&JoinPredicate::Cross), IndexKind::Scan);
    }

    #[test]
    fn exact_key_probe_on_hash_and_ordered() {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let s = filled(kind);
            let mut hits = Vec::new();
            let visited = s.probe(&ProbePlan::ExactKey(Value::Int(1)), |t| hits.push(t.clone()));
            assert_eq!(visited, 2, "{kind:?}");
            assert_eq!(hits.len(), 2);
            assert!(hits.iter().all(|t| t.get(0) == Some(&Value::Int(1))));
            let miss = s.probe(&ProbePlan::ExactKey(Value::Int(99)), |_| panic!("no hit"));
            assert_eq!(miss, 0);
        }
    }

    #[test]
    fn range_probe_on_ordered() {
        let s = filled(IndexKind::Ordered);
        let mut keys = Vec::new();
        let plan = ProbePlan::Range {
            lo: Bound::Included(Value::Int(1)),
            hi: Bound::Excluded(Value::Int(5)),
        };
        s.probe(&plan, |t| keys.push(t.get(0).unwrap().as_int().unwrap()));
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 1, 3]);
    }

    #[test]
    fn full_scan_visits_everything_in_every_flavour() {
        for kind in [IndexKind::Hash, IndexKind::Ordered, IndexKind::Scan] {
            let s = filled(kind);
            let mut n = 0;
            let visited = s.probe(&ProbePlan::FullScan, |_| n += 1);
            assert_eq!(n, 4, "{kind:?}");
            assert_eq!(visited, 4);
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn mixed_numeric_keys_group_in_ordered_range() {
        // Int and Float keys of equal numeric value occupy one B-tree slot
        // (Value's total order treats them equal), so band probes with
        // Float bounds find Int-keyed tuples.
        let mut s = SubIndex::new(IndexKind::Ordered);
        s.insert(Value::Int(10), t(10));
        let plan = ProbePlan::Range {
            lo: Bound::Included(Value::Float(9.5)),
            hi: Bound::Included(Value::Float(10.5)),
        };
        let mut n = 0;
        s.probe(&plan, |_| n += 1);
        assert_eq!(n, 1);
    }
}
