//! The chained in-memory index — the per-unit storage structure of the
//! join-biclique model.
//!
//! A joiner cannot afford to organise its whole window in a single index:
//! stale-tuple discarding would then touch live data on every eviction. The
//! chained index instead partitions stored tuples by *archive period* `P`:
//! tuples are inserted into the **active** sub-index until its min/max
//! timestamp span exceeds `P`, at which point it is sealed and appended to
//! a chain of **archived** sub-indexes ordered by construction time.
//!
//! - **Indexing** ([`chain::ChainedIndex::insert`]) touches only the active
//!   sub-index.
//! - **Discarding** ([`chain::ChainedIndex::expire`]) applies Theorem 1 at
//!   sub-index granularity: an archived sub-index whose *max* timestamp is
//!   more than one window older than the incoming opposite-relation tuple
//!   is dropped wholesale — O(1) per expired sub-index, never touching
//!   live ones.
//! - **Join processing** ([`chain::ChainedIndex::probe`]) probes the active
//!   and all archived sub-indexes with the predicate's
//!   [`bistream_types::predicate::ProbePlan`], applying the pairwise window
//!   check to each candidate (archived sub-indexes may retain a tail of
//!   individually-stale tuples until they expire as a whole — lazy
//!   discarding trades a cheap timestamp comparison for index-maintenance
//!   work).
//!
//! Sub-index flavours ([`sub`]): a hash sub-index for equi predicates, an
//! ordered (B-tree) sub-index for band/inequality predicates, and an
//! append-only scan sub-index for cross products. [`naive`] provides the
//! single-index, per-tuple-eviction baseline used by the E6 ablation.
//! [`mod@snapshot`] serialises/restores a chain's live state for unit
//! recovery.

#![warn(missing_docs)]

pub mod chain;
pub mod naive;
pub mod snapshot;
pub mod sub;

pub use chain::{ChainStats, ChainedIndex, IndexObs, ProbeStats};
pub use naive::NaiveWindowIndex;
pub use snapshot::{restore, snapshot};
pub use sub::IndexKind;
