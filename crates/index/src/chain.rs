//! The chained in-memory index proper.

use crate::sub::{IndexKind, SubIndex, ENTRY_OVERHEAD_BYTES};
use bistream_types::audit::Auditor;
use bistream_types::journal::{EventJournal, EventKind};
use bistream_types::metrics::{Counter, Gauge, Histogram};
use bistream_types::predicate::ProbePlan;
use bistream_types::registry::Observability;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;

/// One link of the chain: a sub-index plus the timestamp span of its
/// contents.
#[derive(Debug)]
struct Link {
    index: SubIndex,
    /// `(min_ts, max_ts)` of the stored tuples, or `None` while the link is
    /// empty. Making the span an `Option` (rather than the old
    /// `min_ts: Ts::MAX, max_ts: 0` sentinel pair) forces every reader to
    /// decide what an empty link means instead of silently comparing
    /// against an inverted span.
    span: Option<(Ts, Ts)>,
    count: usize,
    bytes: usize,
}

impl Link {
    fn new(kind: IndexKind) -> Link {
        Link { index: SubIndex::new(kind), span: None, count: 0, bytes: 0 }
    }

    fn insert(&mut self, key: Value, tuple: Tuple) {
        let ts = tuple.ts();
        self.span = Some(match self.span {
            Some((lo, hi)) => (lo.min(ts), hi.max(ts)),
            None => (ts, ts),
        });
        self.count += 1;
        self.bytes += tuple.size_bytes() + ENTRY_OVERHEAD_BYTES;
        self.index.insert(key, tuple);
    }
}

/// Cost/result statistics of one probe, fed to the joiner's CPU model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ProbeStats {
    /// Key-matched candidates visited (incl. out-of-window ones).
    pub candidates: usize,
    /// Candidates that passed the pairwise window check and were yielded.
    pub in_window: usize,
    /// Sub-indexes touched by the probe.
    pub sub_indexes: usize,
}

/// Point-in-time statistics of the chain, fed to memory metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ChainStats {
    /// Live tuples stored (active + archived).
    pub tuples: usize,
    /// Accounted bytes of live state.
    pub bytes: usize,
    /// Number of sub-indexes (1 active + archived).
    pub sub_indexes: usize,
    /// Tuples discarded by expiry so far.
    pub expired_tuples: u64,
    /// Bytes discarded by expiry so far.
    pub expired_bytes: u64,
    /// Sub-indexes discarded by expiry so far.
    pub expired_sub_indexes: u64,
}

/// Per-index observability hooks: registry-backed gauges/counters plus the
/// shared event journal, labeled with the owning joiner's identity.
///
/// Created by the joiner via [`IndexObs::register`] and attached with
/// [`ChainedIndex::set_obs`]; the chain then keeps its live-size gauges
/// current and journals every archive/discard transition (the raw material
/// of the E6 expiry experiment).
#[derive(Debug)]
pub struct IndexObs {
    journal: EventJournal,
    side: Rel,
    unit: u32,
    sub_indexes: Arc<Gauge>,
    live_tuples: Arc<Gauge>,
    live_bytes: Arc<Gauge>,
    archived_tuples: Arc<Counter>,
    archived_bytes: Arc<Counter>,
    expired_tuples: Arc<Counter>,
    expired_bytes: Arc<Counter>,
    expired_sub_indexes: Arc<Counter>,
    /// Probe fan-out: how many chain links each probe touched — the
    /// per-probe cost the paper's chained-index design bounds via the
    /// archive period.
    probe_sub_indexes: Arc<Histogram>,
    /// Key-matched candidates visited per probe (incl. out-of-window).
    probe_candidates: Arc<Histogram>,
}

impl IndexObs {
    /// Register the chain's metric series under `joiner="<side><unit>"`
    /// (e.g. `joiner="R3"`) and hook up the shared journal.
    pub fn register(obs: &Observability, side: Rel, unit: u32) -> IndexObs {
        let joiner = format!("{side}{unit}");
        let labels: &[(&str, &str)] = &[("joiner", &joiner)];
        let reg = &obs.registry;
        IndexObs {
            journal: obs.journal.clone(),
            side,
            unit,
            sub_indexes: reg.gauge(bistream_types::metric_names::INDEX_SUB_INDEXES, labels),
            live_tuples: reg.gauge(bistream_types::metric_names::INDEX_LIVE_TUPLES, labels),
            live_bytes: reg.gauge(bistream_types::metric_names::INDEX_LIVE_BYTES, labels),
            archived_tuples: reg
                .counter(bistream_types::metric_names::INDEX_ARCHIVED_TUPLES_TOTAL, labels),
            archived_bytes: reg
                .counter(bistream_types::metric_names::INDEX_ARCHIVED_BYTES_TOTAL, labels),
            expired_tuples: reg
                .counter(bistream_types::metric_names::INDEX_EXPIRED_TUPLES_TOTAL, labels),
            expired_bytes: reg
                .counter(bistream_types::metric_names::INDEX_EXPIRED_BYTES_TOTAL, labels),
            expired_sub_indexes: reg
                .counter(bistream_types::metric_names::INDEX_EXPIRED_SUB_INDEXES_TOTAL, labels),
            probe_sub_indexes: reg
                .histogram(bistream_types::metric_names::INDEX_PROBE_SUB_INDEXES, labels),
            probe_candidates: reg
                .histogram(bistream_types::metric_names::INDEX_PROBE_CANDIDATES, labels),
        }
    }
}

/// The chained in-memory index: an active sub-index receiving inserts and
/// a FIFO chain of archived sub-indexes awaiting wholesale expiry.
///
/// ```
/// use bistream_index::{ChainedIndex, IndexKind};
/// use bistream_types::{predicate::ProbePlan, rel::Rel, tuple::Tuple,
///                      value::Value, window::WindowSpec};
///
/// let mut index = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
/// index.insert(Value::Int(7), Tuple::new(Rel::R, 50, vec![Value::Int(7)]));
/// let mut hits = 0;
/// index.probe(&ProbePlan::ExactKey(Value::Int(7)), 60, |_| hits += 1);
/// assert_eq!(hits, 1);
/// // A much later insert seals the active sub-index into the chain…
/// index.insert(Value::Int(8), Tuple::new(Rel::R, 5_000, vec![Value::Int(8)]));
/// // …and an opposite-side arrival a window later expires the old one.
/// assert_eq!(index.expire(2_000), 1);
/// index.probe(&ProbePlan::ExactKey(Value::Int(7)), 2_000, |_| unreachable!());
/// ```
#[derive(Debug)]
pub struct ChainedIndex {
    kind: IndexKind,
    window: WindowSpec,
    /// Archive period `P` in milliseconds: the timestamp span after which
    /// the active sub-index is sealed.
    period: Ts,
    active: Link,
    /// Archived links, oldest first.
    archived: VecDeque<Link>,
    expired_tuples: u64,
    expired_bytes: u64,
    expired_sub_indexes: u64,
    /// Last epoch an [`ChainedIndex::advance_epoch`] scan actually ran at
    /// (0 until the first one).
    last_epoch: Ts,
    obs: Option<IndexObs>,
    /// Invariant auditor plus the owning joiner's label (e.g. `"R3"`);
    /// every wholesale discard is checked against Theorem 1.
    audit: Option<(Auditor, String)>,
}

impl ChainedIndex {
    /// Create a chain for `kind` over `window`, sealing the active
    /// sub-index every `period` milliseconds of timestamp span.
    ///
    /// A `period` of zero is treated as 1 (each timestamp tick gets its own
    /// sub-index); callers wanting the single-index behaviour should use
    /// [`crate::naive::NaiveWindowIndex`] instead.
    pub fn new(kind: IndexKind, window: WindowSpec, period: Ts) -> ChainedIndex {
        ChainedIndex {
            kind,
            window,
            period: period.max(1),
            active: Link::new(kind),
            archived: VecDeque::new(),
            expired_tuples: 0,
            expired_bytes: 0,
            expired_sub_indexes: 0,
            last_epoch: 0,
            obs: None,
            audit: None,
        }
    }

    /// Attach the invariant [`Auditor`]: every wholesale discard performed
    /// by [`ChainedIndex::expire`] is then checked against Theorem 1 (the
    /// dropped link's newest tuple must be more than one window older than
    /// the incoming opposite-side timestamp) under `owner`'s label.
    pub fn set_auditor(&mut self, auditor: Auditor, owner: String) {
        self.audit = Some((auditor, owner));
    }

    /// Attach observability hooks (see [`IndexObs::register`]). The gauges
    /// are initialised from the chain's current state.
    pub fn set_obs(&mut self, obs: IndexObs) {
        self.obs = Some(obs);
        self.sync_gauges();
    }

    /// Push the live-size gauges to the registry, if hooks are attached.
    fn sync_gauges(&self) {
        if let Some(obs) = &self.obs {
            let stats = self.stats();
            obs.sub_indexes.set(stats.sub_indexes as u64);
            obs.live_tuples.set(stats.tuples as u64);
            obs.live_bytes.set(stats.bytes as u64);
        }
    }

    /// The window this chain enforces.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// The archive period `P`.
    pub fn period(&self) -> Ts {
        self.period
    }

    /// **Data indexing**: store `tuple` under `key`.
    ///
    /// The tuple enters the active sub-index; if that widens the active
    /// span beyond `P`, the active sub-index is sealed into the chain and a
    /// fresh one is started *containing this tuple* — sealing happens
    /// before insertion so each link's span never exceeds `P`.
    pub fn insert(&mut self, key: Value, tuple: Tuple) {
        self.insert_inner(key, tuple);
        self.sync_gauges();
    }

    /// **Batched data indexing**: store a run of `(key, tuple)` pairs in
    /// order. Semantically identical to calling [`ChainedIndex::insert`]
    /// per pair — sealing decisions are made tuple by tuple — but the
    /// gauge sync to the registry is amortised to once per batch.
    ///
    /// Returns the number of tuples inserted.
    pub fn insert_batch<I: IntoIterator<Item = (Value, Tuple)>>(&mut self, items: I) -> usize {
        let mut n = 0;
        for (key, tuple) in items {
            self.insert_inner(key, tuple);
            n += 1;
        }
        if n > 0 {
            self.sync_gauges();
        }
        n
    }

    fn insert_inner(&mut self, key: Value, tuple: Tuple) {
        if let Some((min_ts, max_ts)) = self.active.span {
            let span_after = max_ts.max(tuple.ts()).saturating_sub(min_ts.min(tuple.ts()));
            if span_after > self.period {
                let sealed = std::mem::replace(&mut self.active, Link::new(self.kind));
                if let Some(obs) = &self.obs {
                    obs.archived_tuples.add(sealed.count as u64);
                    obs.archived_bytes.add(sealed.bytes as u64);
                    obs.journal.record(
                        tuple.ts(),
                        EventKind::SubIndexArchived {
                            side: obs.side,
                            unit: obs.unit,
                            tuples: sealed.count as u64,
                            bytes: sealed.bytes as u64,
                        },
                    );
                }
                self.archived.push_back(sealed);
            }
        }
        self.active.insert(key, tuple);
    }

    /// **Data discarding** (Theorem 1 at sub-index granularity): drop every
    /// archived sub-index whose newest tuple is more than one window older
    /// than `incoming_ts` (the timestamp of an opposite-relation tuple just
    /// received). Returns the number of tuples discarded.
    ///
    /// Only archived links are considered; the active link is still
    /// receiving inserts and is never dropped wholesale.
    pub fn expire(&mut self, incoming_ts: Ts) -> usize {
        let mut dropped = 0usize;
        while let Some(front) = self.archived.front() {
            let stale = match front.span {
                // An empty link holds no state worth keeping; drop it.
                None => true,
                Some((_, max_ts)) => self.window.is_expired(max_ts, incoming_ts),
            };
            if stale {
                let Some(link) = self.archived.pop_front() else { break };
                if let Some((auditor, owner)) = &self.audit {
                    let (min_ts, max_ts) = link.span.unwrap_or((Ts::MAX, 0));
                    auditor.index_discard(
                        owner,
                        min_ts,
                        max_ts,
                        link.count as u64,
                        incoming_ts,
                        self.window.size(),
                    );
                }
                dropped += link.count;
                self.expired_tuples += link.count as u64;
                self.expired_bytes += link.bytes as u64;
                self.expired_sub_indexes += 1;
                if let Some(obs) = &self.obs {
                    obs.expired_tuples.add(link.count as u64);
                    obs.expired_bytes.add(link.bytes as u64);
                    obs.expired_sub_indexes.inc();
                    obs.journal.record(
                        incoming_ts,
                        EventKind::SubIndexDiscarded {
                            side: obs.side,
                            unit: obs.unit,
                            tuples: link.count as u64,
                            bytes: link.bytes as u64,
                        },
                    );
                }
            } else {
                // Links are archived in timestamp order under the ordering
                // protocol, so the first live link ends the scan.
                break;
            }
        }
        if dropped > 0 {
            self.sync_gauges();
        }
        dropped
    }

    /// **Epoch-based data discarding**: the sharded runtime's rate-limited
    /// form of [`expire`](ChainedIndex::expire). An expiry scan only runs
    /// when `epoch` has advanced at least one archive period `P` past the
    /// last scan; in between, the call is a constant-time no-op.
    ///
    /// Deferring expiry never changes join results — probes window-check
    /// every candidate — it only lets at most one period's worth of stale
    /// links linger, which is the same residency bound the chain already
    /// accepts by expiring at sub-index granularity. Returns the number of
    /// tuples discarded (0 when gated).
    pub fn advance_epoch(&mut self, epoch: Ts) -> usize {
        if epoch.saturating_sub(self.last_epoch) < self.period {
            return 0;
        }
        self.last_epoch = epoch;
        self.expire(epoch)
    }

    /// **Join processing**: visit every stored tuple that key-matches
    /// `plan` *and* is within one window of `probe_ts`, across the active
    /// and all archived sub-indexes.
    ///
    /// The caller is responsible for any residual predicate check (only
    /// needed for `FullScan` plans) and for calling [`expire`] first —
    /// probing does not discard.
    ///
    /// [`expire`]: ChainedIndex::expire
    pub fn probe<F: FnMut(&Tuple)>(&self, plan: &ProbePlan, probe_ts: Ts, mut f: F) -> ProbeStats {
        let mut stats = ProbeStats::default();
        let window = self.window;
        for link in self.archived.iter().chain(std::iter::once(&self.active)) {
            // Empty links have no span and nothing to probe.
            let Some((min_ts, max_ts)) = link.span else { continue };
            // Skip links entirely out of window scope (cheap span check).
            if !window.in_scope(max_ts, probe_ts) && !window.in_scope(min_ts, probe_ts) {
                // The whole span is on one side of the window iff both ends
                // are out on the same side; spans straddling the window
                // would have one end in scope.
                if max_ts < probe_ts || min_ts > probe_ts {
                    continue;
                }
            }
            stats.sub_indexes += 1;
            stats.candidates += link.index.probe(plan, |t| {
                if window.in_scope(t.ts(), probe_ts) {
                    stats.in_window += 1;
                    f(t);
                }
            });
        }
        if let Some(obs) = &self.obs {
            obs.probe_sub_indexes.record(stats.sub_indexes as u64);
            obs.probe_candidates.record(stats.candidates as u64);
        }
        stats
    }

    /// **Batched join processing**: run several probes over the chain in
    /// one pass, visiting each sub-index once (link-major traversal)
    /// instead of walking the whole chain per probe. Exact-key probes are
    /// additionally sorted by key so lookups inside each link touch the
    /// sub-index in key order.
    ///
    /// Each probe is `(plan, probe_ts)`; `f` receives the probe's position
    /// in `probes` and each in-window match. Matches are delivered grouped
    /// by probe in input order, and within one probe in the exact order a
    /// standalone [`ChainedIndex::probe`] would yield them, so downstream
    /// emission order is independent of the batching. Per-probe
    /// [`ProbeStats`] are returned (and recorded per probe in the attached
    /// histograms), identical to what `k` standalone probes would report.
    pub fn probe_batch<F: FnMut(usize, &Tuple)>(
        &self,
        probes: &[(ProbePlan, Ts)],
        mut f: F,
    ) -> Vec<ProbeStats> {
        let mut stats = vec![ProbeStats::default(); probes.len()];
        if probes.is_empty() {
            return stats;
        }
        // Key-sorted visit order: exact keys ascending, then ranges, then
        // full scans; ties broken by input position for determinism.
        let mut order: Vec<usize> = (0..probes.len()).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&probes[a].0, &probes[b].0);
            plan_rank(pa)
                .cmp(&plan_rank(pb))
                .then_with(|| match (pa, pb) {
                    (ProbePlan::ExactKey(x), ProbePlan::ExactKey(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                })
                .then(a.cmp(&b))
        });
        // Matches are buffered per probe (tuple clones are refcount bumps)
        // so emission order stays probe-major even though the traversal is
        // link-major.
        let mut matched: Vec<Vec<Tuple>> = vec![Vec::new(); probes.len()];
        let window = self.window;
        for link in self.archived.iter().chain(std::iter::once(&self.active)) {
            let Some((min_ts, max_ts)) = link.span else { continue };
            for &i in &order {
                let (plan, probe_ts) = &probes[i];
                let probe_ts = *probe_ts;
                // Same span-scope skip as the standalone probe.
                if !window.in_scope(max_ts, probe_ts)
                    && !window.in_scope(min_ts, probe_ts)
                    && (max_ts < probe_ts || min_ts > probe_ts)
                {
                    continue;
                }
                let s = &mut stats[i];
                s.sub_indexes += 1;
                let sink = &mut matched[i];
                let mut in_window = 0;
                s.candidates += link.index.probe(plan, |t| {
                    if window.in_scope(t.ts(), probe_ts) {
                        in_window += 1;
                        sink.push(t.clone());
                    }
                });
                s.in_window += in_window;
            }
        }
        for (i, hits) in matched.iter().enumerate() {
            for t in hits {
                f(i, t);
            }
        }
        if let Some(obs) = &self.obs {
            for s in &stats {
                obs.probe_sub_indexes.record(s.sub_indexes as u64);
                obs.probe_candidates.record(s.candidates as u64);
            }
        }
        stats
    }

    /// Visit every live `(key, tuple)` entry across the chain (archived
    /// links first, then the active one) — snapshot support.
    pub(crate) fn for_each_entry<F: FnMut(&Value, &Tuple)>(&self, mut f: F) {
        for link in self.archived.iter().chain(std::iter::once(&self.active)) {
            link.index.for_each_entry(&mut f);
        }
    }

    /// Current size statistics.
    pub fn stats(&self) -> ChainStats {
        let (mut tuples, mut bytes) = (self.active.count, self.active.bytes);
        for l in &self.archived {
            tuples += l.count;
            bytes += l.bytes;
        }
        ChainStats {
            tuples,
            bytes,
            sub_indexes: 1 + self.archived.len(),
            expired_tuples: self.expired_tuples,
            expired_bytes: self.expired_bytes,
            expired_sub_indexes: self.expired_sub_indexes,
        }
    }

    /// Live tuple count (active + archived).
    pub fn len(&self) -> usize {
        self.active.count + self.archived.iter().map(|l| l.count).sum::<usize>()
    }

    /// True if no live tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Visit-order class of a probe plan inside a batch: exact keys first
/// (sorted by key), then ranges, then full scans.
fn plan_rank(plan: &ProbePlan) -> u8 {
    match plan {
        ProbePlan::ExactKey(_) => 0,
        ProbePlan::Range { .. } => 1,
        ProbePlan::FullScan => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::rel::Rel;

    fn t(ts: Ts, k: i64) -> Tuple {
        Tuple::new(Rel::R, ts, vec![Value::Int(k)])
    }

    fn chain(window_ms: Ts, period: Ts) -> ChainedIndex {
        ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(window_ms), period)
    }

    fn exact(k: i64) -> ProbePlan {
        ProbePlan::ExactKey(Value::Int(k))
    }

    #[test]
    fn inserts_accumulate_in_active_until_period_exceeded() {
        let mut c = chain(1_000, 100);
        for ts in [0, 50, 100] {
            c.insert(Value::Int(1), t(ts, 1));
        }
        assert_eq!(c.stats().sub_indexes, 1, "span 100 == P stays active");
        c.insert(Value::Int(1), t(101, 1));
        assert_eq!(c.stats().sub_indexes, 2, "span 101 > P seals");
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn probe_finds_matches_across_links_within_window() {
        let mut c = chain(1_000, 10);
        for ts in (0..100).step_by(20) {
            c.insert(Value::Int(7), t(ts, 7));
        }
        let mut hits = 0;
        let stats = c.probe(&exact(7), 100, |_| hits += 1);
        assert_eq!(hits, 5);
        assert_eq!(stats.in_window, 5);
        assert!(stats.sub_indexes >= 2, "chain actually chained");
        // A different key finds nothing.
        let stats = c.probe(&exact(8), 100, |_| panic!("no match"));
        assert_eq!(stats.in_window, 0);
    }

    #[test]
    fn probe_applies_pairwise_window_check() {
        let mut c = chain(100, 1_000); // everything stays in one active link
        c.insert(Value::Int(1), t(0, 1));
        c.insert(Value::Int(1), t(500, 1));
        let mut hits = Vec::new();
        c.probe(&exact(1), 550, |t| hits.push(t.ts()));
        assert_eq!(hits, vec![500], "ts=0 is out of the 100ms window");
    }

    #[test]
    fn expire_drops_whole_archived_links_only() {
        let mut c = chain(100, 50);
        // Three sealed links (~spans of 50) plus an active one.
        for ts in (0..=300).step_by(25) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        let before = c.stats();
        assert!(before.sub_indexes >= 3);
        // Incoming opposite tuple at ts=400: links with max_ts < 300 die.
        let dropped = c.expire(400);
        assert!(dropped > 0);
        let after = c.stats();
        assert_eq!(after.tuples, before.tuples - dropped);
        assert_eq!(after.expired_tuples, dropped as u64);
        epoch_checks(&mut c);
    }

    // Piggybacks on the expire test's chain: epoch gating is relative to
    // the last epoch scan, not to wall or tuple time.
    fn epoch_checks(c: &mut ChainedIndex) {
        assert_eq!(c.advance_epoch(401), 0, "first epoch past the gate scans, finds nothing new");
        assert_eq!(c.advance_epoch(402), 0, "within one period of the last scan: gated no-op");
    }

    #[test]
    fn advance_epoch_gates_scans_to_one_per_period() {
        let mut c = chain(100, 50);
        for ts in (0..=300).step_by(25) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        // Epochs advancing less than one period since the last scan are
        // no-ops even when stale links exist.
        assert!(c.advance_epoch(400) > 0, "first scan past the gate drops stale links");
        let survivors = c.stats().tuples;
        c.insert(Value::Int(1), t(400, 1));
        assert_eq!(c.advance_epoch(449), 0, "sub-period epoch advance is gated");
        assert_eq!(c.stats().tuples, survivors + 1, "nothing dropped while gated");
        // A full period later the scan runs and catches up with expire().
        let dropped = c.advance_epoch(600);
        assert!(dropped > 0, "post-gate epoch scan drops the links expire() would");
        let mut twin = chain(100, 50);
        for ts in (0..=300).step_by(25) {
            twin.insert(Value::Int(1), t(ts, 1));
        }
        twin.insert(Value::Int(1), t(400, 1));
        twin.expire(600);
        assert_eq!(c.stats().tuples, twin.stats().tuples, "epoch expiry converges with expire");
        // Everything still stored is within `ts > 400 - 100 - P` roughly;
        // at minimum, nothing younger than the window boundary was lost:
        let mut live = Vec::new();
        c.probe(&exact(1), 400, |t| live.push(t.ts()));
        assert!(live.iter().all(|&ts| ts >= 300), "{live:?}");
    }

    #[test]
    fn expire_never_touches_active_link() {
        let mut c = chain(10, 1_000_000); // one giant active link
        c.insert(Value::Int(1), t(0, 1));
        c.insert(Value::Int(1), t(5, 1));
        assert_eq!(c.expire(1_000), 0, "active link survives even if stale");
        assert_eq!(c.len(), 2);
        // …but probes filter its stale contents.
        let mut hits = 0;
        c.probe(&exact(1), 1_000, |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn full_history_window_never_expires() {
        let mut c = ChainedIndex::new(IndexKind::Hash, WindowSpec::FullHistory, 100);
        for ts in (0..1000).step_by(100) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        assert_eq!(c.expire(1_000_000), 0);
        let mut hits = 0;
        c.probe(&exact(1), 1_000_000, |_| hits += 1);
        assert_eq!(hits, 10);
    }

    #[test]
    fn memory_accounting_rises_and_falls() {
        let mut c = chain(100, 20);
        for ts in (0..=200).step_by(10) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        let peak = c.stats().bytes;
        assert!(peak > 0);
        c.expire(1_000);
        let after = c.stats().bytes;
        assert!(after < peak);
        // Only the active link remains after a full-window expiry.
        assert_eq!(c.stats().sub_indexes, 1);
    }

    #[test]
    fn zero_period_is_clamped() {
        let c = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(10), 0);
        assert_eq!(c.period(), 1);
    }

    #[test]
    fn obs_tracks_archive_and_discard() {
        use bistream_types::registry::Observability;

        let obs = Observability::new();
        let mut c = chain(100, 50);
        c.set_obs(IndexObs::register(&obs, Rel::R, 2));
        for ts in (0..=300).step_by(25) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        c.expire(400);
        c.probe(&exact(1), 400, |_| {});
        let snap = obs.registry.scrape(400);
        let labels: &[(&str, &str)] = &[("joiner", "R2")];
        assert!(
            snap.get(bistream_types::metric_names::INDEX_PROBE_SUB_INDEXES, labels).is_some(),
            "probe fan-out histogram fed"
        );
        assert!(snap.get(bistream_types::metric_names::INDEX_PROBE_CANDIDATES, labels).is_some());
        let stats = c.stats();
        assert_eq!(
            snap.gauge(bistream_types::metric_names::INDEX_LIVE_TUPLES, labels),
            Some(stats.tuples as u64)
        );
        assert_eq!(
            snap.gauge(bistream_types::metric_names::INDEX_SUB_INDEXES, labels),
            Some(stats.sub_indexes as u64)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::INDEX_EXPIRED_TUPLES_TOTAL, labels),
            Some(stats.expired_tuples)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::INDEX_EXPIRED_BYTES_TOTAL, labels),
            Some(stats.expired_bytes)
        );
        assert!(stats.expired_bytes > 0);
        let events = obs.journal.drain();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            bistream_types::journal::EventKind::SubIndexArchived { side: Rel::R, unit: 2, .. }
        )));
        assert!(events.iter().any(|e| e.ts == 400
            && matches!(
                e.kind,
                bistream_types::journal::EventKind::SubIndexDiscarded { side: Rel::R, unit: 2, .. }
            )));
    }

    #[test]
    fn empty_link_has_no_span_and_is_skipped_by_probe_and_expiry() {
        // Regression for the old `min_ts: Ts::MAX, max_ts: 0` sentinel
        // pair: an empty-but-present link must never contribute its
        // (previously inverted) span to probe scope-skips or expiry
        // decisions.
        assert_eq!(Link::new(IndexKind::Hash).span, None);
        let mut c = chain(100, 50);
        // Force an empty archived link directly — the degenerate state the
        // sentinel made dangerous.
        c.archived.push_back(Link::new(IndexKind::Hash));
        c.insert(Value::Int(1), t(10, 1));
        let mut hits = 0;
        let stats = c.probe(&exact(1), 10, |_| hits += 1);
        assert_eq!(hits, 1, "live tuple still found");
        assert_eq!(stats.sub_indexes, 1, "empty link not counted as probed");
        let mut batch_hits = 0;
        c.probe_batch(&[(exact(1), 10)], |_, _| batch_hits += 1);
        assert_eq!(batch_hits, 1);
        // Expiry drops the empty link without charging any tuples/bytes…
        assert_eq!(c.expire(10), 0);
        let stats = c.stats();
        assert_eq!(stats.expired_tuples, 0);
        assert_eq!(stats.expired_sub_indexes, 1);
        // …and the live (active) tuple survives.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn auditor_accepts_lawful_discards_and_catches_premature_ones() {
        use bistream_types::audit::Auditor;

        // Lawful expiry through the chain: zero violations, including for
        // the empty-link fast path.
        let auditor = Auditor::new();
        let mut c = chain(100, 50);
        c.set_auditor(auditor.clone(), "R0".into());
        c.archived.push_back(Link::new(IndexKind::Hash));
        for ts in (0..=300).step_by(25) {
            c.insert(Value::Int(1), t(ts, 1));
        }
        assert!(c.expire(500) > 0);
        assert_eq!(auditor.violation_count(), 0, "{:?}", auditor.take_violations());

        // The same hook flags a discard whose newest tuple is still inside
        // the window — what a buggy expiry path would emit.
        auditor.index_discard("R0", 0, 450, 3, 500, Some(100));
        assert_eq!(auditor.violation_count(), 1, "premature discard not flagged");
        let v = auditor.take_violations();
        assert!(v[0].message.contains("Theorem 1"), "{v:?}");
    }

    #[test]
    fn candidates_count_includes_out_of_window_hits() {
        let mut c = chain(10, 1_000_000);
        c.insert(Value::Int(1), t(0, 1));
        c.insert(Value::Int(1), t(100, 1));
        let stats = c.probe(&exact(1), 105, |_| {});
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.in_window, 1);
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let mut a = chain(1_000, 50);
        let mut b = chain(1_000, 50);
        let items: Vec<(Value, Tuple)> =
            (0..20).map(|i| (Value::Int(i % 3), t(i as Ts * 10, i % 3))).collect();
        for (k, tup) in items.clone() {
            a.insert(k, tup);
        }
        assert_eq!(b.insert_batch(items), 20);
        assert_eq!(a.stats(), b.stats(), "same seals, same accounting");
        assert_eq!(b.insert_batch(std::iter::empty()), 0);
    }

    #[test]
    fn probe_batch_matches_standalone_probes() {
        let mut c = chain(1_000, 10);
        for ts in (0..100).step_by(5) {
            c.insert(Value::Int((ts % 15) as i64), t(ts, (ts % 15) as i64));
        }
        // Deliberately unsorted keys, with a duplicate.
        let probes: Vec<(ProbePlan, Ts)> =
            [10i64, 0, 5, 10].iter().map(|&k| (exact(k), 100)).collect();
        let mut batched: Vec<Vec<Ts>> = vec![Vec::new(); probes.len()];
        let batch_stats = c.probe_batch(&probes, |i, t| batched[i].push(t.ts()));
        for (i, (plan, probe_ts)) in probes.iter().enumerate() {
            let mut alone = Vec::new();
            let stats = c.probe(plan, *probe_ts, |t| alone.push(t.ts()));
            assert_eq!(batched[i], alone, "probe {i} yields the same matches in the same order");
            assert_eq!(batch_stats[i], stats, "probe {i} reports the same stats");
        }
    }

    #[test]
    fn probe_batch_groups_matches_by_probe_in_input_order() {
        let mut c = chain(1_000, 5);
        for ts in 0..30 {
            c.insert(Value::Int(0), t(ts, 0));
        }
        let probes = vec![(exact(0), 30), (exact(0), 30)];
        let mut seen = Vec::new();
        c.probe_batch(&probes, |i, _| seen.push(i));
        let flip = seen.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flip, 1, "all matches of probe 0 before all matches of probe 1");
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn probe_batch_handles_empty_and_mixed_plans() {
        let mut c = chain(1_000, 10);
        c.insert(Value::Int(3), t(10, 3));
        assert!(c.probe_batch(&[], |_, _| panic!("no probes")).is_empty());
        let probes = vec![(ProbePlan::FullScan, 20), (exact(3), 20), (exact(9), 20)];
        let mut hits = vec![0usize; probes.len()];
        let stats = c.probe_batch(&probes, |i, _| hits[i] += 1);
        assert_eq!(hits, vec![1, 1, 0]);
        assert_eq!(stats[1].in_window, 1);
        assert_eq!(stats[2].candidates, 0);
    }
}
