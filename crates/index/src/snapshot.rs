//! Snapshot/restore of a chained index's live state.
//!
//! The original systems lean on their platform for fault tolerance (Storm
//! replay; Kubernetes restarts). A restarted unit needs its window state
//! back, and because biclique units are independent, recovering one unit
//! is purely local: serialise its `(key, tuple)` entries, restore them
//! into a fresh chain. The wire codecs of `bistream-types` are reused, so
//! the snapshot format is the same one the broker transports.
//!
//! Restores rebuild the chain by re-inserting in timestamp order, so the
//! archive-period invariants (links sealed every `P`, chain ordered by
//! construction time) hold on the restored index too.

use crate::chain::ChainedIndex;
use bistream_types::error::{Error, Result};
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic + version prefix of the snapshot format.
const MAGIC: &[u8; 4] = b"BSN1";

/// Serialise every live `(key, tuple)` entry of `index`.
///
/// (Accessible as `bistream_index::snapshot` — same name as this module.)
pub fn snapshot(index: &ChainedIndex) -> Bytes {
    let mut entries: Vec<(Value, Tuple)> = Vec::with_capacity(index.len());
    index.for_each_entry(|k, t| entries.push((k.clone(), t.clone())));
    // Timestamp order so the restore rebuilds a well-formed chain.
    entries.sort_by_key(|(_, t)| t.ts());

    let mut buf = BytesMut::with_capacity(16 + entries.len() * 32);
    buf.put_slice(MAGIC);
    buf.put_u64(entries.len() as u64);
    for (k, t) in &entries {
        k.encode(&mut buf);
        buf.put_slice(&t.encode());
    }
    buf.freeze()
}

/// Restore a snapshot into `index` (which should be freshly built with
/// the same kind/window/period as the snapshotted one). Returns the
/// number of tuples restored.
///
/// # Errors
/// [`Error::Codec`] on a malformed or truncated snapshot.
pub fn restore(index: &mut ChainedIndex, mut snapshot: impl Buf) -> Result<usize> {
    if snapshot.remaining() < MAGIC.len() + 8 {
        return Err(Error::Codec("snapshot header truncated".into()));
    }
    let mut magic = [0u8; 4];
    snapshot.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Codec(format!("bad snapshot magic {magic:?} (expected {MAGIC:?})")));
    }
    let count = snapshot.get_u64() as usize;
    for i in 0..count {
        let key = Value::decode(&mut snapshot)
            .map_err(|e| Error::Codec(format!("entry {i} key: {e}")))?;
        let tuple = Tuple::decode(&mut snapshot)
            .map_err(|e| Error::Codec(format!("entry {i} tuple: {e}")))?;
        index.insert(key, tuple);
    }
    if snapshot.has_remaining() {
        return Err(Error::Codec(format!(
            "{} trailing bytes after {count} snapshot entries",
            snapshot.remaining()
        )));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sub::IndexKind;
    use bistream_types::predicate::ProbePlan;
    use bistream_types::rel::Rel;
    use bistream_types::window::WindowSpec;

    fn filled() -> ChainedIndex {
        let mut ix = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
        for i in 0..500u64 {
            let k = Value::Int((i % 20) as i64);
            ix.insert(k.clone(), Tuple::new(Rel::R, i * 3, vec![k]));
        }
        ix
    }

    fn probe_all(ix: &ChainedIndex, probe_ts: u64) -> Vec<u64> {
        let mut out = Vec::new();
        ix.probe(&ProbePlan::FullScan, probe_ts, |t| out.push(t.ts()));
        out.sort_unstable();
        out
    }

    #[test]
    fn snapshot_restore_round_trips_live_state() {
        let original = filled();
        let blob = snapshot(&original);
        let mut restored = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
        let n = restore(&mut restored, blob).unwrap();
        assert_eq!(n, original.len());
        assert_eq!(restored.len(), original.len());
        // Probes agree at several horizons.
        for probe_ts in [0u64, 800, 1_499, 3_000] {
            assert_eq!(probe_all(&restored, probe_ts), probe_all(&original, probe_ts));
        }
        // Expiry behaves identically post-restore.
        let mut orig = filled();
        let mut rest = restored;
        assert_eq!(rest.expire(10_000) > 0, orig.expire(10_000) > 0);
    }

    #[test]
    fn restored_chain_respects_archive_period() {
        let original = filled();
        let blob = snapshot(&original);
        let mut restored = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
        restore(&mut restored, blob).unwrap();
        // 500 tuples over 1500ms with P=100 → at least a dozen links.
        assert!(restored.stats().sub_indexes > 10);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let blob = snapshot(&filled());
        // Bad magic.
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        let mut ix = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
        assert!(restore(&mut ix, &bad[..]).is_err());
        // Truncations at every length must error, never panic.
        for cut in 0..blob.len().min(64) {
            let mut ix = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
            assert!(restore(&mut ix, &blob[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = blob.to_vec();
        long.push(0);
        let mut ix = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(1_000), 100);
        assert!(restore(&mut ix, &long[..]).is_err());
    }

    #[test]
    fn empty_index_round_trips() {
        let ix = ChainedIndex::new(IndexKind::Ordered, WindowSpec::FullHistory, 50);
        let blob = snapshot(&ix);
        let mut restored = ChainedIndex::new(IndexKind::Ordered, WindowSpec::FullHistory, 50);
        assert_eq!(restore(&mut restored, blob).unwrap(), 0);
        assert!(restored.is_empty());
    }
}
