//! Property tests for the snapshot codec: the restore of a snapshot is
//! *behaviourally* identical to the original index — same probe results,
//! same Theorem-1 expiry — and corrupted snapshots are rejected, never
//! mis-restored or panicked on.

use bistream_index::{restore, snapshot, ChainedIndex, IndexKind};
use bistream_types::predicate::ProbePlan;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use proptest::prelude::*;

const WINDOW: u64 = 1_000;
const PERIOD: u64 = 100;

fn fresh(kind: IndexKind) -> ChainedIndex {
    ChainedIndex::new(kind, WindowSpec::sliding(WINDOW), PERIOD)
}

/// Stored entries: (key, timestamp) with timestamps kept inside one
/// window so nothing expires during the build phase.
fn arb_entries() -> impl Strategy<Value = Vec<(i64, u64)>> {
    proptest::collection::vec((-8i64..8, 0u64..WINDOW / 2), 0..64)
}

fn build(kind: IndexKind, entries: &[(i64, u64)]) -> ChainedIndex {
    let mut idx = fresh(kind);
    for &(k, ts) in entries {
        idx.insert(Value::Int(k), Tuple::new(Rel::R, ts, vec![Value::Int(k)]));
    }
    idx
}

/// Every probe result, rendered comparably (timestamps + payload).
fn probe_all(idx: &ChainedIndex, plan: &ProbePlan, probe_ts: u64) -> Vec<String> {
    let mut out = Vec::new();
    idx.probe(plan, probe_ts, |t| out.push(format!("{t:?}")));
    out.sort();
    out
}

proptest! {
    /// Snapshot → fresh index → restore reproduces the exact probe
    /// results of the original, for exact-key and full-scan plans, on
    /// both sub-index kinds.
    #[test]
    fn restore_is_probe_equivalent(entries in arb_entries(), key in -8i64..8) {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let original = build(kind, &entries);
            let mut restored = fresh(kind);
            let n = restore(&mut restored, snapshot(&original)).expect("clean snapshot");
            prop_assert_eq!(n, entries.len());
            prop_assert_eq!(restored.len(), original.len());
            let probe_ts = WINDOW / 2;
            for plan in [ProbePlan::ExactKey(Value::Int(key)), ProbePlan::FullScan] {
                prop_assert_eq!(
                    probe_all(&restored, &plan, probe_ts),
                    probe_all(&original, &plan, probe_ts)
                );
            }
        }
    }

    /// Theorem-1 discarding is *behaviourally* identical on the restored
    /// index: after expiring both sides against the same incoming
    /// timestamp, every probe sees the same in-window tuples. (Exact
    /// drop counts may differ — restore re-inserts in timestamp order,
    /// so the physical link segmentation can be tighter than the
    /// original's — but discarding is only ever of fully-expired links,
    /// so the visible live set must agree.)
    #[test]
    fn restore_preserves_theorem_one_expiry(
        entries in arb_entries(),
        advance in 0u64..3 * WINDOW,
    ) {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let mut original = build(kind, &entries);
            let mut restored = fresh(kind);
            restore(&mut restored, snapshot(&original)).expect("clean snapshot");
            let incoming = WINDOW / 2 + advance;
            let dropped = restored.expire(incoming);
            original.expire(incoming);
            // Conservation: every entry is either still stored or was
            // counted as dropped — expiry never silently loses state.
            prop_assert_eq!(restored.len() + dropped, entries.len());
            for probe_ts in [incoming, incoming + WINDOW / 4] {
                prop_assert_eq!(
                    probe_all(&restored, &ProbePlan::FullScan, probe_ts),
                    probe_all(&original, &ProbePlan::FullScan, probe_ts)
                );
            }
        }
    }

    /// Arbitrary corruption never panics: restore either succeeds on a
    /// byte-identical snapshot or reports a codec error — and a flipped
    /// byte is never silently accepted as a *different* entry count.
    #[test]
    fn corruption_is_rejected_not_panicked(
        entries in arb_entries(),
        flip in 0usize..4096,
        xor in 1u8..,
    ) {
        let original = build(IndexKind::Hash, &entries);
        let blob = snapshot(&original);
        let mut bytes = blob.to_vec();
        let i = flip % bytes.len();
        bytes[i] ^= xor;
        let mut target = fresh(IndexKind::Hash);
        // Must not panic; on Ok the decoded entries must at least parse
        // back into the index (count bounded by what the blob can hold).
        if let Ok(n) = restore(&mut target, bytes::Bytes::from(bytes)) {
            prop_assert_eq!(n, target.len());
        }
    }
}

#[test]
fn truncation_at_every_cut_is_rejected() {
    let mut idx = fresh(IndexKind::Hash);
    for i in 0..8i64 {
        idx.insert(Value::Int(i), Tuple::new(Rel::R, i as u64, vec![Value::Int(i)]));
    }
    let blob = snapshot(&idx);
    for cut in 0..blob.len() {
        let mut target = fresh(IndexKind::Hash);
        assert!(
            restore(&mut target, blob.slice(..cut)).is_err(),
            "truncation at {cut}/{} must be rejected",
            blob.len()
        );
    }
}
