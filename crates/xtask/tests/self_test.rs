//! Lint self-test: seed one violation of each rule into a scratch
//! workspace and prove the pass rejects it, then prove the real shipped
//! tree is clean. CI runs this via `cargo test -p xtask` in addition to
//! running `cargo xtask lint` directly.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::lint_workspace;

/// A scratch directory under the target dir (kept inside the repo).
fn scratch(name: &str) -> PathBuf {
    let base = option_env!("CARGO_TARGET_TMPDIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("target").join("xtask-selftest"));
    let dir = base.join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).expect("mkdir");
    fs::write(path, content).expect("write fixture");
}

fn rules_hit(root: &Path) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        lint_workspace(root).expect("lint runs").into_iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn seeded_wallclock_violation_is_rejected() {
    let root = scratch("wallclock");
    write(
        &root,
        "crates/core/src/lib.rs",
        "fn f() -> u128 { std::time::Instant::now().elapsed().as_millis() }\n",
    );
    assert_eq!(rules_hit(&root), vec!["wallclock"]);
}

#[test]
fn seeded_panic_site_violation_is_rejected() {
    let root = scratch("panic");
    write(&root, "crates/index/src/lib.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
    assert_eq!(rules_hit(&root), vec!["panic-site"]);
}

#[test]
fn seeded_metric_name_violation_is_rejected() {
    let root = scratch("metric");
    write(
        &root,
        "crates/matrix/src/lib.rs",
        "fn f() -> &'static str { \"bistream_rogue_series_total\" }\n",
    );
    assert_eq!(rules_hit(&root), vec!["metric-name"]);
}

#[test]
fn seeded_exposition_format_violation_is_rejected() {
    let root = scratch("exposition");
    write(
        &root,
        "crates/broker/src/lib.rs",
        "fn f() -> String { \"# TYPE rogue_series counter\\n\".to_string() }\n",
    );
    assert_eq!(rules_hit(&root), vec!["exposition-format"]);
}

#[test]
fn seeded_doc_comment_violation_is_rejected() {
    let root = scratch("docs");
    write(&root, "crates/types/src/lib.rs", "pub struct Undocumented;\n");
    assert_eq!(rules_hit(&root), vec!["doc-comment"]);
}

#[test]
fn allowlist_exempts_audited_sites() {
    let root = scratch("allow");
    write(&root, "crates/core/src/lib.rs", "fn f(x: Option<u8>) -> u8 { x.expect(\"peeked\") }\n");
    write(&root, "xtask.allow", "panic crates/core/src/lib.rs 1\n");
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
}

#[test]
fn test_modules_in_seeded_tree_are_exempt() {
    let root = scratch("testexempt");
    write(
        &root,
        "crates/broker/src/lib.rs",
        "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) { x.unwrap(); }\n}\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
}

/// The shipped tree must lint clean — the same assertion `cargo xtask
/// lint` makes in CI, checked here so plain `cargo test` covers it too.
#[test]
fn shipped_tree_is_clean() {
    let findings = lint_workspace(&repo_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "shipped tree has lint findings:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
