//! Analyze self-test: seed one violation of each pass into a scratch
//! workspace and prove `cargo xtask analyze` rejects it, then prove the
//! real shipped tree (and its committed ledger) is clean. Mirrors the
//! lint self-test so every gate that blocks CI also proves, in-repo, that
//! it actually catches what it claims to catch.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::analyze::analyze_workspace;
use xtask::Finding;

/// A scratch directory under the target dir (kept inside the repo).
fn scratch(name: &str) -> PathBuf {
    let base = option_env!("CARGO_TARGET_TMPDIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("target").join("xtask-analyze-selftest"));
    let dir = base.join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).expect("mkdir");
    fs::write(path, content).expect("write fixture");
}

fn analyze(root: &Path) -> Vec<Finding> {
    analyze_workspace(root, false).expect("analyze runs")
}

fn rules_hit(root: &Path) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = analyze(root).into_iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Tag one scratch file as a lock-free hot path.
fn tag_lockfree(root: &Path, rel: &str) {
    write(root, "xtask.allow", &format!("lockfree {rel}\n"));
}

// ---- pass 1: atomics discipline -----------------------------------------

#[test]
fn seeded_implicit_ordering_is_rejected() {
    let root = scratch("implicit-ordering");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "// protocol: field head relaxed-load / release-store\n\
         struct R { head: std::sync::atomic::AtomicUsize }\n\
         impl R {\n\
             fn f(&self, o: std::sync::atomic::Ordering) -> usize { self.head.load(o) }\n\
         }\n",
    );
    assert_eq!(rules_hit(&root), vec!["atomics-ordering"]);
}

#[test]
fn seeded_seqcst_is_rejected_unless_allowlisted() {
    let src = "// protocol: field head seqcst-load / release-store\n\
               struct R { head: std::sync::atomic::AtomicUsize }\n\
               impl R {\n\
                   fn f(&self) -> usize { self.head.load(std::sync::atomic::Ordering::SeqCst) }\n\
               }\n";
    let root = scratch("seqcst");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(&root, "crates/core/src/lf.rs", src);
    assert_eq!(rules_hit(&root), vec!["atomics-seqcst"]);
    // The same file with a `seqcst` audit entry is clean.
    write(
        &root,
        "xtask.allow",
        "lockfree crates/core/src/lf.rs\nseqcst crates/core/src/lf.rs\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
}

#[test]
fn seeded_protocol_mismatch_is_rejected() {
    let root = scratch("protocol-mismatch");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "// protocol: field head relaxed-load / release-store\n\
         struct R { head: std::sync::atomic::AtomicUsize }\n\
         impl R {\n\
             fn f(&self) -> usize { self.head.load(std::sync::atomic::Ordering::Acquire) }\n\
         }\n",
    );
    let findings = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["atomics-protocol"]);
    assert!(
        findings[0].message.contains("allows only {Relaxed}"),
        "diagnostic names the declared set: {findings:?}"
    );
}

#[test]
fn atomic_field_without_protocol_header_is_rejected() {
    let root = scratch("no-protocol-header");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "struct R { head: std::sync::atomic::AtomicUsize }\n\
         impl R {\n\
             fn f(&self) -> usize { self.head.load(std::sync::atomic::Ordering::Acquire) }\n\
         }\n",
    );
    assert_eq!(rules_hit(&root), vec!["atomics-protocol"]);
}

#[test]
fn clean_lockfree_fixture_passes_all_passes() {
    let root = scratch("clean-lockfree");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "// protocol: field head relaxed-load / acquire-load / release-store\n\
         struct R { head: std::sync::atomic::AtomicUsize }\n\
         impl R {\n\
             fn push(&self) -> usize {\n\
                 let h = self.head.load(std::sync::atomic::Ordering::Acquire);\n\
                 self.head.store(h + 1, std::sync::atomic::Ordering::Release);\n\
                 h\n\
             }\n\
         }\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
}

// ---- pass 2: unsafe ledger ----------------------------------------------

#[test]
fn seeded_missing_safety_comment_is_rejected() {
    let root = scratch("missing-safety");
    write(
        &root,
        "crates/core/src/lib.rs",
        "fn f() -> u8 { let p = 1u8; unsafe { std::ptr::read(&p) } }\n",
    );
    let rules = rules_hit(&root);
    assert!(rules.contains(&"unsafe-safety"), "missing SAFETY must fire: {rules:?}");
}

#[test]
fn unledgered_unsafe_fails_until_consciously_updated() {
    let root = scratch("ledger-flow");
    write(
        &root,
        "crates/core/src/lib.rs",
        "fn f() -> u8 {\n\
             let p = 1u8;\n\
             // SAFETY: p lives on this frame for the whole read.\n\
             unsafe { std::ptr::read(&p) }\n\
         }\n",
    );
    // No committed ledger: the site is justified but unledgered.
    assert_eq!(rules_hit(&root), vec!["unsafe-ledger"]);
    // A conscious regeneration writes the ledger and the tree is clean.
    assert!(analyze_workspace(&root, true).expect("update runs").is_empty());
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
    // Byte stability: regenerating an unchanged tree is a no-op.
    let first = fs::read(root.join("UNSAFE_LEDGER.json")).expect("ledger written");
    analyze_workspace(&root, true).expect("update runs");
    let second = fs::read(root.join("UNSAFE_LEDGER.json")).expect("ledger rewritten");
    assert_eq!(first, second, "ledger rendering must be byte-stable");
}

#[test]
fn ledger_detects_justification_drift_and_stale_entries() {
    let root = scratch("ledger-drift");
    let file = "crates/core/src/lib.rs";
    write(
        &root,
        file,
        "fn f() -> u8 {\n\
             let p = 1u8;\n\
             // SAFETY: p lives on this frame for the whole read.\n\
             unsafe { std::ptr::read(&p) }\n\
         }\n",
    );
    assert!(analyze_workspace(&root, true).expect("update runs").is_empty());
    // Re-justifying the site (digest change) must fail until re-audited.
    write(
        &root,
        file,
        "fn f() -> u8 {\n\
             let p = 1u8;\n\
             // SAFETY: entirely different claim.\n\
             unsafe { std::ptr::read(&p) }\n\
         }\n",
    );
    let findings = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["unsafe-ledger"]);
    assert!(findings[0].message.contains("drifted"), "{findings:?}");
    // Removing the unsafe entirely leaves a stale ledger entry behind.
    write(&root, file, "fn f() -> u8 { 1 }\n");
    let findings = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["unsafe-ledger"]);
    assert!(findings[0].message.contains("stale"), "{findings:?}");
}

// ---- pass 4: Send/Sync surface audit ------------------------------------

#[test]
fn seeded_unledgered_unsafe_impl_send_is_rejected() {
    let root = scratch("send-audit");
    write(
        &root,
        "crates/core/src/lib.rs",
        "struct B(*mut u8);\n\
         // SAFETY: the owner hands the pointer across threads exactly once.\n\
         unsafe impl Send for B {}\n",
    );
    let rules = rules_hit(&root);
    assert!(rules.contains(&"send-sync-ledger"), "unledgered impl Send must fire: {rules:?}");
    // Ledgered (invariant + entry): the audit is satisfied.
    assert!(analyze_workspace(&root, true).expect("update runs").is_empty());
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
}

#[test]
fn unsafe_impl_send_without_invariant_stays_rejected_even_if_ledgered() {
    let root = scratch("send-no-invariant");
    write(&root, "crates/core/src/lib.rs", "struct B(*mut u8);\nunsafe impl Send for B {}\n");
    // `--update-ledger` writes the entry, but the missing SAFETY invariant
    // still fails both the ledger pass and the Send/Sync audit.
    let findings = analyze_workspace(&root, true).expect("update runs");
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(rules, vec!["send-sync-ledger", "unsafe-safety"]);
}

// ---- pass 3: blocking reachability --------------------------------------

#[test]
fn seeded_blocking_call_reachable_from_entry_is_rejected() {
    let root = scratch("blocking-reach");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "pub fn ingest() { step(); }\n\
         fn step() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
    );
    let findings = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
    assert!(
        findings[0].message.contains("ingest → step → sleep"),
        "finding carries the call chain: {findings:?}"
    );
}

#[test]
fn blocking_call_behind_a_helper_in_another_crate_is_rejected() {
    let root = scratch("blocking-cross-crate");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(&root, "crates/core/src/lf.rs", "pub fn ingest() { forward(); }\n");
    write(
        &root,
        "crates/broker/src/lib.rs",
        "pub fn forward() { wait_for_space(); }\n\
         fn wait_for_space() { let (_, cv) = &pair(); cv.wait_timeout(); }\n\
         fn pair() -> ((), u8) { ((), 0) }\n",
    );
    let findings = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
    assert!(
        findings[0].message.contains("ingest → forward → wait_for_space → wait_timeout"),
        "chain crosses the crate boundary: {findings:?}"
    );
}

#[test]
fn park_is_allowed_only_in_the_parkok_backoff_helper() {
    let src = "pub fn spin() { idle(); }\n\
               fn idle() { std::thread::park_timeout(std::time::Duration::from_micros(100)); }\n";
    let root = scratch("parkok");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(&root, "crates/core/src/lf.rs", src);
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
    // The same park, allowlisted as the audited backoff helper: clean.
    write(
        &root,
        "xtask.allow",
        "lockfree crates/core/src/lf.rs\nparkok crates/core/src/lf.rs idle\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
    // The allowlist names the helper, not the file: a park elsewhere in
    // the same file still fires.
    write(
        &root,
        "crates/core/src/lf.rs",
        "pub fn spin() { std::thread::park(); }\n\
         fn idle() { std::thread::park_timeout(std::time::Duration::from_micros(100)); }\n",
    );
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
}

#[test]
fn blocking_name_binding_to_a_lockfree_impl_is_traversed_not_flagged() {
    // `push_blocking` is a blacklisted *name*, but when every definition
    // it can resolve to lives in a lockfree-tagged file (the ring's own
    // spin-and-park implementation), the pass walks into it instead of
    // flagging the call site.
    let root = scratch("lockfree-binding");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "pub fn ingest(r: &Ring) { r.push_blocking(); }\n\
         pub struct Ring;\n\
         impl Ring { pub fn push_blocking(&self) {} }\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
    // The same call with the definition in an *untagged* broker file is a
    // finding: that one is the condvar implementation.
    let root = scratch("broker-binding");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(&root, "crates/core/src/lf.rs", "pub fn ingest() { push_blocking(); }\n");
    write(&root, "crates/broker/src/lib.rs", "pub fn push_blocking() {}\n");
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
}

#[test]
fn protocol_checks_bind_through_tuple_index_hops() {
    // A cache-padded field is accessed as `head.0.load(…)`; the protocol
    // check must still bind the call site to `head`.
    let root = scratch("tuple-hop");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "// protocol: field head relaxed-load / release-store\n\
         pub struct Pad<T>(pub T);\n\
         struct R { head: Pad<std::sync::atomic::AtomicUsize> }\n\
         impl R {\n\
             fn f(&self) -> usize { self.head.0.load(std::sync::atomic::Ordering::Acquire) }\n\
         }\n",
    );
    let found = analyze(&root);
    assert_eq!(rules_hit(&root), vec!["atomics-protocol"]);
    assert!(found.iter().any(|f| f.message.contains("allows only {Relaxed}")), "{found:?}");
}

#[test]
fn method_calls_resolve_through_the_receivers_declared_type() {
    // `self.joiner.flush()` must bind to the declared field type's impl,
    // not fan out to every workspace `fn flush` by bare-name collision.
    let root = scratch("receiver-typed");
    tag_lockfree(&root, "crates/core/src/lf.rs");
    write(
        &root,
        "crates/core/src/lf.rs",
        "pub struct W { joiner: Quiet }\n\
         impl W { pub fn run(&self) { self.joiner.flush(); } }\n\
         pub struct Quiet;\n\
         impl Quiet { pub fn flush(&self) {} }\n",
    );
    write(
        &root,
        "crates/core/src/cascade.rs",
        "pub struct Chatty;\n\
         impl Chatty { pub fn flush(&self) { std::thread::sleep(core::time::Duration::ZERO); } }\n",
    );
    assert_eq!(rules_hit(&root), Vec::<&str>::new());
    // Re-typing the field to the blocking implementation flips the verdict.
    write(
        &root,
        "crates/core/src/lf.rs",
        "pub struct W { joiner: Chatty }\n\
         impl W { pub fn run(&self) { self.joiner.flush(); } }\n",
    );
    assert_eq!(rules_hit(&root), vec!["blocking-reachability"]);
}

// ---- the shipped tree ----------------------------------------------------

/// The shipped tree must analyze clean against its committed ledger — the
/// same assertion `cargo xtask analyze` makes in CI, checked here so plain
/// `cargo test` covers it too.
#[test]
fn shipped_tree_is_clean_under_analyze() {
    let findings = analyze_workspace(&repo_root(), false).expect("analyze runs");
    assert!(
        findings.is_empty(),
        "shipped tree has analyze findings:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
