//! `cargo xtask <command>` — repo automation entry point.
//!
//! Commands:
//! * `lint [--root <path>]` — run the repo-specific static pass (see the
//!   library docs); exits non-zero when any rule fires.
//! * `analyze [--root <path>] [--update-ledger]` — run the four deeper
//!   static passes over the lock-free runtime (atomics discipline, unsafe
//!   ledger, blocking reachability, Send/Sync audit); `--update-ledger`
//!   regenerates `UNSAFE_LEDGER.json` after an audit instead of diffing
//!   against it. Exits non-zero when any pass fires.
//! * `chaos [args…]` — build and run the chaos exploration runner
//!   (`bistream-bench --bin chaos`), forwarding all arguments; exits with
//!   the runner's status.
//! * `bench [args…]` — build and run the pipeline throughput harness
//!   (`bistream-bench --bin perf`), forwarding all arguments; exits
//!   non-zero when a case regresses past the baseline threshold.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    match command.as_deref() {
        Some("lint") => {
            let mut root: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("xtask lint: unknown argument {other:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            match xtask::lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("xtask lint: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{f}");
                    }
                    eprintln!("xtask lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("analyze") => {
            let mut root: Option<PathBuf> = None;
            let mut update_ledger = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    "--update-ledger" => update_ledger = true,
                    other => {
                        eprintln!("xtask analyze: unknown argument {other:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            match xtask::analyze::analyze_workspace(&root, update_ledger) {
                Ok(findings) if findings.is_empty() => {
                    let suffix = if update_ledger { ", ledger updated" } else { "" };
                    println!("xtask analyze: clean ({}{suffix})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{f}");
                    }
                    eprintln!("xtask analyze: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask analyze: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("chaos") => forward_to_bin("chaos", args.collect()),
        Some("bench") => forward_to_bin("perf", args.collect()),
        Some(other) => {
            eprintln!("xtask: unknown command {other:?} (try: lint, analyze, chaos, bench)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask lint [--root <path>] | cargo xtask analyze [--root <path>] \
                 [--update-ledger] | cargo xtask chaos [args…] | cargo xtask bench [args…]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Build and run a `bistream-bench` binary from the workspace root,
/// forwarding `args` and the exit status.
fn forward_to_bin(bin: &str, forwarded: Vec<String>) -> ExitCode {
    let status = std::process::Command::new("cargo")
        .args(["run", "--release", "-p", "bistream-bench", "--bin", bin, "--"])
        .args(&forwarded)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask {bin}: could not launch cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir, unless
/// invoked from elsewhere (then the current directory).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or_else(|| ".".into())
}
