//! The `cargo xtask` static passes: repo-specific rules the generic
//! toolchain cannot express, enforced on every PR.
//!
//! Two commands share the [`scanner`] front end:
//!
//! * `cargo xtask lint` — the seven token rules below.
//! * `cargo xtask analyze` — the four deeper passes in [`analyze`]:
//!   atomics discipline, the unsafe ledger, blocking reachability and the
//!   `Send`/`Sync` surface audit over the lock-free runtime.
//!
//! Both are deliberately dependency-free: a hand-rolled token scanner
//! (comments, strings, raw strings and char literals handled) feeds the
//! lint's seven rules:
//!
//! 1. **wallclock** — no `Instant::now()` / `SystemTime` outside
//!    `types::time` and the live-executor allowlist. Everything else must
//!    go through the [`Clock`] abstraction so the simulator stays
//!    deterministic.
//! 2. **panic-site** — no `.unwrap()` / `.expect(…)` in non-test code of
//!    the `core`, `broker` and `index` hot paths. Audited survivors
//!    (provably-unreachable pops guarded by a peek, etc.) carry a per-file
//!    budget in the allowlist; adding a new site fails the build until it
//!    is reviewed.
//! 3. **metric-name** — `"bistream_…"` series-name string literals may
//!    only appear in `types::metric_names`, the single source of truth,
//!    preventing registry/series drift.
//! 4. **doc-comment** — `pub` items in `crates/types` must carry doc
//!    comments (`#![warn(missing_docs)]` is advisory; this is not).
//! 5. **exposition-format** — Prometheus exposition-format literals
//!    (`# TYPE `/`# HELP `) may only appear in `types::telemetry`, the
//!    single exporter, so scrape output never drifts between emitters.
//! 6. **slo-name** — `"slo_…"` / `"alert_…"` identifier literals may only
//!    appear in `types::metric_names`, so SLO objectives and alert names
//!    stay one vocabulary across the engine, the watchdog, the recorder
//!    bundles and the dashboards that consume them.
//! 7. **lock-free** — no `Mutex` / `RwLock` in files tagged
//!    `lockfree <path>` in the allowlist (the sharded-runtime hot paths,
//!    which promise wait-free hand-off): a lock on a worker's frame path
//!    reintroduces exactly the broker contention the backend exists to
//!    remove, so it must happen in the facade or not at all.
//!
//! Test code is exempt everywhere: `tests/`, `benches/`, `examples/`
//! directories and anything at or below a file's first `#[cfg(test)]`.
//!
//! [`Clock`]: https://docs.rs/bistream-types/latest/bistream_types/time/trait.Clock.html

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod analyze;
pub mod scanner;

use scanner::{scan, test_boundary, Token};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short rule identifier (`wallclock`, `panic-site`, `metric-name`,
    /// `doc-comment`, `exposition-format`, `slo-name`, `lock-free`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found and why it is rejected.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Parsed `xtask.allow`: audited exemptions from the lint rules.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Files allowed to call `Instant::now()` / `SystemTime` (the live
    /// executors, which genuinely run on wall time).
    pub wallclock: Vec<String>,
    /// Per-file budget of audited `.expect()` / `.unwrap()` sites in the
    /// hot-path crates.
    pub panic_budget: BTreeMap<String, usize>,
    /// Files *tagged* as lock-free hot paths (the sharded runtime): the
    /// lint forbids `Mutex`/`RwLock` in them and `analyze` runs its
    /// atomics-discipline and blocking-reachability passes over them.
    /// Unlike the other entries this tag opts a file *into* rules rather
    /// than out of them.
    pub lockfree: Vec<String>,
    /// Lock-free files allowed to use `Ordering::SeqCst`. Empty in the
    /// shipped tree; the entry kind exists so an audited exception is a
    /// one-line review rather than a rule change.
    pub seqcst: Vec<String>,
    /// `(file, fn)` pairs allowed to call `thread::park` /
    /// `park_timeout`: the adaptive backoff helpers of the lock-free
    /// rings, and nothing else.
    pub parkok: Vec<(String, String)>,
}

impl Allowlist {
    /// Parse the allowlist format: one entry per line,
    /// `wallclock <path>`, `panic <path> <count>`, `lockfree <path>`,
    /// `seqcst <path>` or `parkok <path> <fn>`; `#` comments.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut out = Allowlist::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let (rule, path) = (words.next(), words.next());
            match (rule, path) {
                (Some("wallclock"), Some(p)) => out.wallclock.push(p.to_string()),
                (Some("lockfree"), Some(p)) => out.lockfree.push(p.to_string()),
                (Some("seqcst"), Some(p)) => out.seqcst.push(p.to_string()),
                (Some("parkok"), Some(p)) => {
                    let func = words
                        .next()
                        .ok_or_else(|| format!("line {}: parkok entry needs a fn name", i + 1))?;
                    out.parkok.push((p.to_string(), func.to_string()));
                }
                (Some("panic"), Some(p)) => {
                    let budget: usize = words
                        .next()
                        .ok_or_else(|| format!("line {}: panic entry needs a count", i + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
                    out.panic_budget.insert(p.to_string(), budget);
                }
                _ => return Err(format!("line {}: unrecognised allowlist entry: {raw}", i + 1)),
            }
        }
        Ok(out)
    }
}

/// Scope in which a file's findings should be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleScope {
    /// File is inside `crates/types/src`.
    pub in_types: bool,
    /// File is inside a hot-path crate (`core`, `broker`, `index`).
    pub in_hot_path: bool,
    /// File is `crates/types/src/time.rs` (the sanctioned clock home).
    pub is_time_module: bool,
    /// File is `crates/types/src/metric_names.rs` (the constants module).
    pub is_metric_names_module: bool,
    /// File is `crates/types/src/telemetry.rs` (the one exposition-format
    /// emitter).
    pub is_telemetry_module: bool,
}

impl RuleScope {
    /// Derive the scope from a workspace-relative path.
    pub fn of(rel_path: &str) -> RuleScope {
        let p = rel_path.replace('\\', "/");
        RuleScope {
            in_types: p.starts_with("crates/types/src/"),
            in_hot_path: p.starts_with("crates/core/src/")
                || p.starts_with("crates/broker/src/")
                || p.starts_with("crates/index/src/"),
            is_time_module: p == "crates/types/src/time.rs",
            is_metric_names_module: p == "crates/types/src/metric_names.rs",
            is_telemetry_module: p == "crates/types/src/telemetry.rs",
        }
    }
}

/// Run every token-based rule over one file's source.
pub fn lint_source(rel_path: &str, src: &str, allow: &Allowlist) -> Vec<Finding> {
    let scope = RuleScope::of(rel_path);
    let tokens = scan(src).tokens;
    let boundary = test_boundary(&tokens).unwrap_or(usize::MAX);
    let prod = |line: usize| line < boundary;
    let mut findings = Vec::new();

    // Rule 1: wallclock.
    if !scope.is_time_module && !allow.wallclock.iter().any(|p| p == rel_path) {
        for (idx, s) in tokens.iter().enumerate() {
            if !prod(s.line) {
                continue;
            }
            let Token::Ident(name) = &s.tok else { continue };
            if name == "SystemTime" {
                findings.push(Finding {
                    rule: "wallclock",
                    file: rel_path.to_string(),
                    line: s.line,
                    message: "SystemTime is forbidden outside types::time; take a Clock"
                        .to_string(),
                });
            }
            if name == "Instant" {
                // Instant :: now
                let next: Vec<&Token> = tokens[idx + 1..].iter().take(3).map(|s| &s.tok).collect();
                if matches!(
                    next.as_slice(),
                    [Token::Ch(':'), Token::Ch(':'), Token::Ident(m)] if m == "now"
                ) {
                    findings.push(Finding {
                        rule: "wallclock",
                        file: rel_path.to_string(),
                        line: s.line,
                        message: "Instant::now() is forbidden outside types::time and the \
                                  live-exec allowlist; take a Clock"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Rule 2: panic sites in hot-path crates.
    if scope.in_hot_path {
        let mut sites = Vec::new();
        for (idx, s) in tokens.iter().enumerate() {
            if !prod(s.line) {
                continue;
            }
            let Token::Ident(name) = &s.tok else { continue };
            if name != "unwrap" && name != "expect" {
                continue;
            }
            let preceded_by_dot = idx > 0 && matches!(tokens[idx - 1].tok, Token::Ch('.'));
            let followed_by_call =
                matches!(tokens.get(idx + 1).map(|s| &s.tok), Some(Token::Ch('(')));
            if preceded_by_dot && followed_by_call {
                sites.push((s.line, name.clone()));
            }
        }
        let budget = allow.panic_budget.get(rel_path).copied().unwrap_or(0);
        let count = sites.len();
        if count > budget {
            for (line, name) in sites {
                findings.push(Finding {
                    rule: "panic-site",
                    file: rel_path.to_string(),
                    line,
                    message: format!(
                        ".{name}() in hot-path code ({count} sites, allowlist budget {budget}); \
                         return a typed error or audit the site into xtask.allow"
                    ),
                });
            }
        }
    }

    // Rule 3: metric-name literals.
    if !scope.is_metric_names_module {
        for s in &tokens {
            if !prod(s.line) {
                continue;
            }
            if let Token::Str(lit) = &s.tok {
                if lit.starts_with("bistream_") {
                    findings.push(Finding {
                        rule: "metric-name",
                        file: rel_path.to_string(),
                        line: s.line,
                        message: format!(
                            "metric name literal {lit:?}; use the constant from \
                             types::metric_names"
                        ),
                    });
                }
            }
        }
    }

    // Rule 4: doc comments on pub items in types.
    if scope.in_types {
        findings.extend(lint_pub_docs(rel_path, src, boundary));
    }

    // Rule 5: exposition-format literals outside the exporter.
    if !scope.is_telemetry_module {
        for s in &tokens {
            if !prod(s.line) {
                continue;
            }
            if let Token::Str(lit) = &s.tok {
                if lit.contains("# TYPE ") || lit.contains("# HELP ") {
                    findings.push(Finding {
                        rule: "exposition-format",
                        file: rel_path.to_string(),
                        line: s.line,
                        message: "Prometheus exposition-format literal; render through \
                                  types::telemetry, the single exporter"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Rule 6: SLO objective / alert name literals outside the vocabulary
    // module.
    if !scope.is_metric_names_module {
        for s in &tokens {
            if !prod(s.line) {
                continue;
            }
            if let Token::Str(lit) = &s.tok {
                if lit.starts_with("slo_") || lit.starts_with("alert_") {
                    findings.push(Finding {
                        rule: "slo-name",
                        file: rel_path.to_string(),
                        line: s.line,
                        message: format!(
                            "SLO/alert name literal {lit:?}; use the constant from \
                             types::metric_names"
                        ),
                    });
                }
            }
        }
    }

    // Rule 7: no blocking locks in files tagged as lock-free hot paths.
    if allow.lockfree.iter().any(|p| p == rel_path) {
        for s in &tokens {
            if !prod(s.line) {
                continue;
            }
            let Token::Ident(name) = &s.tok else { continue };
            if name == "Mutex" || name == "RwLock" {
                findings.push(Finding {
                    rule: "lock-free",
                    file: rel_path.to_string(),
                    line: s.line,
                    message: format!(
                        "{name} in a lockfree-tagged file; the sharded-runtime hot paths \
                         must stay lock-free (atomics and rings only)"
                    ),
                });
            }
        }
    }

    findings
}

/// Item keywords that demand a doc comment when `pub`.
const PUB_ITEM_KEYWORDS: [&str; 9] =
    ["fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union"];

/// Line-based check: every `pub` item (and struct field) in a types file
/// must be preceded by a `///` doc comment, attributes permitting.
fn lint_pub_docs(rel_path: &str, src: &str, boundary: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut has_doc = false;
    let mut in_attr = false;
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        if lineno >= boundary {
            break;
        }
        let line = raw.trim();
        if in_attr {
            if line.ends_with(']') {
                in_attr = false;
            }
            continue;
        }
        if line.starts_with("///") {
            has_doc = true;
            continue;
        }
        if line.starts_with("#[") {
            if !line.ends_with(']') {
                in_attr = true;
            }
            continue; // attributes sit between doc and item
        }
        if line.starts_with("//") || line.is_empty() {
            continue; // plain comments / blanks don't break the doc link
        }
        let undocumented_pub = line.strip_prefix("pub ").and_then(|rest| {
            let first = rest.split(|c: char| !c.is_alphanumeric() && c != '_').next()?;
            if PUB_ITEM_KEYWORDS.contains(&first)
                || (first == "unsafe" || first == "async")
                || is_field_decl(rest)
            {
                Some(first.to_string())
            } else {
                None
            }
        });
        if let Some(item) = undocumented_pub {
            if !has_doc {
                findings.push(Finding {
                    rule: "doc-comment",
                    file: rel_path.to_string(),
                    line: lineno,
                    message: format!("undocumented pub {item} in types; add a /// doc comment"),
                });
            }
        }
        has_doc = false;
    }
    findings
}

/// `name: Type,`-shaped remainder ⇒ a pub struct field.
fn is_field_decl(rest: &str) -> bool {
    let Some(colon) = rest.find(':') else { return false };
    if rest[colon..].starts_with("::") {
        return false;
    }
    let name = rest[..colon].trim();
    !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Recursively collect the workspace's production `.rs` files: everything
/// under `crates/*/src` and the facade's `src/`, excluding `tests/`,
/// `benches/`, `examples/` and the xtask crate itself.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.file_name() == "xtask" {
                continue;
            }
            roots.push(entry.path().join("src"));
        }
    }
    for dir in roots {
        collect_rs(&dir, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "tests" && name != "benches" && name != "examples" {
                collect_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`, loading `xtask.allow` from
/// the root if present.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = match std::fs::read_to_string(root.join("xtask.allow")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let mut findings = Vec::new();
    for path in workspace_sources(root).map_err(|e| e.to_string())? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        findings.extend(lint_source(&rel, &src, &allow));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, &Allowlist::default())
    }

    #[test]
    fn scanner_skips_comments_and_strings() {
        let src = r#"
            // Instant::now() in a comment
            /* SystemTime in /* a nested */ block */
            fn f() { let s = "Instant::now()"; }
        "#;
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_rule_fires_on_instant_now() {
        let findings = lint("crates/core/src/x.rs", "fn f() { let t = Instant::now(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wallclock");
    }

    #[test]
    fn wallclock_rule_fires_on_system_time() {
        let findings = lint("crates/bench/src/x.rs", "use std::time::SystemTime;\nfn f() {}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn wallclock_rule_spares_time_module_and_allowlist() {
        let src = "fn f() { Instant::now(); }";
        assert!(lint("crates/types/src/time.rs", src).is_empty());
        let mut allow = Allowlist::default();
        allow.wallclock.push("crates/core/src/exec.rs".into());
        assert!(lint_source("crates/core/src/exec.rs", src, &allow).is_empty());
    }

    #[test]
    fn wallclock_rule_spares_instant_without_now() {
        assert!(
            lint("crates/core/src/x.rs", "fn f(epoch: Instant) { epoch.elapsed(); }").is_empty()
        );
    }

    #[test]
    fn panic_rule_fires_in_hot_paths_only() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/broker/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/index/src/x.rs", src).len(), 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_respects_budget() {
        let src = "fn f(x: Option<u32>) { x.expect(\"invariant\"); }";
        let mut allow = Allowlist::default();
        allow.panic_budget.insert("crates/core/src/x.rs".into(), 1);
        assert!(lint_source("crates/core/src/x.rs", src, &allow).is_empty());
        let two = "fn f(x: Option<u32>) { x.expect(\"a\"); x.expect(\"b\"); }";
        assert_eq!(lint_source("crates/core/src/x.rs", two, &allow).len(), 2);
    }

    #[test]
    fn panic_rule_ignores_non_method_idents() {
        // `unwrap` as a free function or path segment is not the lint's
        // target; only `.unwrap()` method calls are.
        assert!(lint("crates/core/src/x.rs", "fn unwrap() {} fn g() { unwrap(); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_every_rule() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g(x: Option<u32>) { x.unwrap(); \
                   Instant::now(); let n = \"bistream_foo\"; }\n}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn metric_rule_fires_outside_constants_module() {
        let src = "fn f() { reg.counter(\"bistream_router_tuples_total\", &[]); }";
        let findings = lint("crates/core/src/router.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "metric-name");
        assert!(lint("crates/types/src/metric_names.rs", src).is_empty());
    }

    #[test]
    fn exposition_rule_fires_outside_the_exporter() {
        let src = "fn f(out: &mut String) { out.push_str(\"# TYPE x counter\\n\"); }";
        let findings = lint("crates/core/src/stats.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "exposition-format");
        assert!(lint("crates/types/src/telemetry.rs", src).is_empty());
        // HELP headers are covered too; unrelated `#` strings are not.
        assert_eq!(lint("crates/bench/src/x.rs", "fn f() { let h = \"# HELP x y\"; }").len(), 1);
        assert!(lint("crates/bench/src/x.rs", "fn f() { let h = \"# heading\"; }").is_empty());
    }

    #[test]
    fn slo_name_rule_fires_outside_constants_module() {
        let src = "fn f() { let a = \"alert_slo_burn\"; let o = \"slo_p99_latency_ms\"; }";
        let findings = lint("crates/core/src/exec.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "slo-name"));
        assert!(lint("crates/types/src/metric_names.rs", src).is_empty());
        // Test code and unrelated literals stay exempt.
        let test_src = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { let a = \"alert_x\"; } }\n";
        assert!(lint("crates/core/src/exec.rs", test_src).is_empty());
        assert!(lint("crates/core/src/exec.rs", "fn f() { let s = \"slowly\"; }").is_empty());
    }

    #[test]
    fn doc_rule_fires_on_undocumented_pub_items() {
        let src = "pub fn f() {}\n";
        let findings = lint("crates/types/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "doc-comment");
        // Same item outside types: fine.
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_rule_accepts_docs_through_attributes() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct S {\n    /// Field doc.\n    \
                   pub ts: u64,\n}\n";
        assert!(lint("crates/types/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_rule_flags_undocumented_pub_field() {
        let src = "/// Documented.\npub struct S {\n    pub ts: u64,\n}\n";
        let findings = lint("crates/types/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn doc_rule_ignores_pub_use_and_pub_crate() {
        let src = "pub use foo::Bar;\npub(crate) fn f() {}\n";
        assert!(lint("crates/types/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_scanned_as_literals() {
        let src = "fn f() { let s = r#\"bistream_raw\"#; }";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_scanner() {
        let src = "fn f<'a>(c: char) -> bool { c == '\"' || c == '\\'' }\nfn g() { \
                   Instant::now(); }";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let allow = Allowlist::parse(
            "# comment\nwallclock crates/core/src/exec.rs\npanic crates/core/src/ordering.rs 1\n\
             lockfree crates/core/src/sharded/spsc.rs\n",
        )
        .expect("valid");
        assert_eq!(allow.wallclock, vec!["crates/core/src/exec.rs".to_string()]);
        assert_eq!(allow.panic_budget.get("crates/core/src/ordering.rs"), Some(&1));
        assert_eq!(allow.lockfree, vec!["crates/core/src/sharded/spsc.rs".to_string()]);
        assert!(Allowlist::parse("bogus entry here\n").is_err());
        assert!(Allowlist::parse("panic crates/core/src/x.rs\n").is_err(), "missing count");
    }

    #[test]
    fn allowlist_parses_analyze_entry_kinds() {
        let allow = Allowlist::parse(
            "seqcst crates/core/src/sharded/audited.rs\n\
             parkok crates/core/src/sharded/spsc.rs backoff\n",
        )
        .expect("valid");
        assert_eq!(allow.seqcst, vec!["crates/core/src/sharded/audited.rs".to_string()]);
        assert_eq!(
            allow.parkok,
            vec![("crates/core/src/sharded/spsc.rs".to_string(), "backoff".to_string())]
        );
        assert!(Allowlist::parse("parkok crates/core/src/x.rs\n").is_err(), "missing fn");
    }

    #[test]
    fn lockfree_rule_fires_only_in_tagged_files() {
        let src = "use parking_lot::Mutex;\nfn f(l: &RwLock<u32>) { let _m: Mutex<()>; }\n";
        let mut allow = Allowlist::default();
        allow.lockfree.push("crates/core/src/sharded/runtime.rs".into());
        let findings = lint_source("crates/core/src/sharded/runtime.rs", src, &allow);
        assert_eq!(findings.len(), 3, "every Mutex/RwLock mention: {findings:?}");
        assert!(findings.iter().all(|f| f.rule == "lock-free"));
        // The same source in an untagged file is out of the rule's scope.
        assert!(lint_source("crates/core/src/exec.rs", src, &allow).is_empty());
    }

    #[test]
    fn lockfree_rule_exempts_test_code_and_comments() {
        let src = "fn f() {} // a Mutex in a comment is fine\n#[cfg(test)]\nmod t {\n    \
                   use std::sync::Mutex;\n}\n";
        let mut allow = Allowlist::default();
        allow.lockfree.push("crates/core/src/sharded/spsc.rs".into());
        assert!(lint_source("crates/core/src/sharded/spsc.rs", src, &allow).is_empty());
    }

    #[test]
    fn lockfree_rule_matches_code_tokens_only() {
        // Regression guard for the rule-7 contract: `Mutex`/`RwLock` in
        // doc comments, block comments, string literals, or as a strict
        // substring of a longer identifier must never fire; the same
        // identifier as a code token must.
        let mut allow = Allowlist::default();
        allow.lockfree.push("crates/core/src/sharded/spsc.rs".into());
        let clean = "//! No RwLock here, the ring replaces it.\n\
                     /// A Mutex would serialize producers.\n\
                     /* Mutex in a block comment */\n\
                     fn f() { let s = \"Mutex\"; let r = r#\"RwLock\"#; }\n\
                     struct MutexGuardLike;\n\
                     fn g(_x: MutexGuardLike) {}\n";
        assert!(
            lint_source("crates/core/src/sharded/spsc.rs", clean, &allow).is_empty(),
            "comments / strings / superstring idents must not fire"
        );
        let dirty = "/// A Mutex in a doc comment.\nfn f(m: &Mutex<u32>) {}\n";
        let findings = lint_source("crates/core/src/sharded/spsc.rs", dirty, &allow);
        assert_eq!(findings.len(), 1, "the code token alone fires: {findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn scanner_counts_escaped_newlines_in_strings() {
        // A `\` line continuation inside a string literal spans a real
        // source line; the scanner must keep the line counter in step so
        // later findings land on the right line.
        let src = "fn f() { let s = \"a\\\nb\"; }\nfn g() { let t = Instant::now(); }\n";
        let findings = lint("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3, "finding must land on g's line: {findings:?}");
    }
}
