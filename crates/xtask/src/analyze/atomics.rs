//! Atomics discipline for `lockfree`-tagged files.
//!
//! Three checks, all token-level and scoped to production code of files
//! carrying a `lockfree` tag in `xtask.allow` (where the `load` / `store`
//! / `fetch_*` vocabulary is reserved for atomics by construction):
//!
//! * every atomic operation spells its ordering as a literal
//!   `Ordering::…` argument — no imported variants, no variables — so a
//!   reviewer sees the ordering at the call site (`atomics-ordering`);
//! * `SeqCst` never appears unless the file has a `seqcst` allowlist
//!   entry: on the hot paths it is either a missing-fence bug wearing a
//!   costume or an unjustified full fence (`atomics-seqcst`);
//! * every atomic field declares its pairing protocol in a header comment
//!   and every use of the field honors it (`atomics-protocol`):
//!
//!   ```text
//!   // protocol: field head relaxed-load / acquire-load / release-store
//!   ```
//!
//!   Specs are `<ordering>-<class>` with ordering one of `relaxed`,
//!   `acquire`, `release`, `acqrel`, `seqcst` and class one of `load`,
//!   `store`, `rmw`. An RMW may also use any ordering declared for loads
//!   (a compare-exchange failure ordering is a load).

use std::collections::{BTreeMap, BTreeSet};

use super::SourceFile;
use crate::scanner::Token;
use crate::{Allowlist, Finding};

/// Method names the pass treats as atomic loads.
const LOAD_METHODS: [&str; 1] = ["load"];
/// Method names the pass treats as atomic stores.
const STORE_METHODS: [&str; 1] = ["store"];
/// Method names the pass treats as atomic read-modify-writes.
const RMW_METHODS: [&str; 12] = [
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Operation class of one atomic method call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Load,
    Store,
    Rmw,
}

impl OpClass {
    fn of(method: &str) -> Option<OpClass> {
        if LOAD_METHODS.contains(&method) {
            Some(OpClass::Load)
        } else if STORE_METHODS.contains(&method) {
            Some(OpClass::Store)
        } else if RMW_METHODS.contains(&method) {
            Some(OpClass::Rmw)
        } else {
            None
        }
    }
}

/// Declared pairing protocol for one atomic field.
#[derive(Debug, Default)]
struct Protocol {
    line: usize,
    loads: BTreeSet<String>,
    stores: BTreeSet<String>,
    rmws: BTreeSet<String>,
}

impl Protocol {
    fn allowed(&self, class: OpClass) -> BTreeSet<String> {
        match class {
            OpClass::Load => self.loads.clone(),
            OpClass::Store => self.stores.clone(),
            // RMW failure orderings are loads, so both sets apply.
            OpClass::Rmw => self.rmws.union(&self.loads).cloned().collect(),
        }
    }
}

/// Map a protocol spec's ordering word to the `Ordering::` variant name.
fn ordering_variant(word: &str) -> Option<&'static str> {
    match word {
        "relaxed" => Some("Relaxed"),
        "acquire" => Some("Acquire"),
        "release" => Some("Release"),
        "acqrel" => Some("AcqRel"),
        "seqcst" => Some("SeqCst"),
        _ => None,
    }
}

/// Parse `// protocol: field <name> <spec> [/ <spec> …]` headers out of a
/// file's comments; malformed headers become findings rather than being
/// silently ignored.
fn parse_protocols(f: &SourceFile, findings: &mut Vec<Finding>) -> BTreeMap<String, Protocol> {
    let mut out = BTreeMap::new();
    for c in &f.scanned.comments {
        let Some(rest) = c.text.strip_prefix("protocol:") else { continue };
        let mut bad = |msg: String| {
            findings.push(Finding {
                rule: "atomics-protocol",
                file: f.rel.clone(),
                line: c.line,
                message: msg,
            });
        };
        let words: Vec<&str> = rest
            .split(|ch: char| ch.is_whitespace() || ch == '/')
            .filter(|w| !w.is_empty())
            .collect();
        if words.first() != Some(&"field") || words.len() < 3 {
            bad(format!(
                "malformed protocol header {:?}; expected `protocol: field <name> <spec> \
                 [/ <spec>]`",
                c.text
            ));
            continue;
        }
        let name = words[1].to_string();
        let mut proto = Protocol { line: c.line, ..Protocol::default() };
        let mut ok = true;
        for spec in &words[2..] {
            let parts: Vec<&str> = spec.split('-').collect();
            let variant = parts.first().and_then(|w| ordering_variant(w));
            match (variant, parts.get(1)) {
                (Some(v), Some(&"load")) => {
                    proto.loads.insert(v.to_string());
                }
                (Some(v), Some(&"store")) => {
                    proto.stores.insert(v.to_string());
                }
                (Some(v), Some(&"rmw")) => {
                    proto.rmws.insert(v.to_string());
                }
                _ => {
                    bad(format!(
                        "bad protocol spec `{spec}` for field `{name}`; expected \
                         `<relaxed|acquire|release|acqrel|seqcst>-<load|store|rmw>`"
                    ));
                    ok = false;
                }
            }
        }
        if ok && out.insert(name.clone(), proto).is_some() {
            bad(format!("duplicate protocol header for field `{name}`"));
        }
    }
    out
}

/// Find declared atomic fields: `name: …Atomic…` (struct fields and
/// struct-literal inits both match; duplicates collapse to the first
/// line). Returns name → declaration line.
fn declared_atomic_fields(f: &SourceFile) -> BTreeMap<String, usize> {
    let toks = &f.scanned.tokens;
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for i in 0..toks.len() {
        if !f.prod(toks[i].line) {
            continue;
        }
        let Token::Ident(name) = &toks[i].tok else { continue };
        if !matches!(toks.get(i + 1).map(|s| &s.tok), Some(Token::Ch(':'))) {
            continue;
        }
        // `name::path` is a path, not a field declaration.
        if matches!(toks.get(i + 2).map(|s| &s.tok), Some(Token::Ch(':'))) {
            continue;
        }
        // Scan the type / initializer window up to the next field or item
        // boundary for an `Atomic*` identifier.
        for s in toks.iter().skip(i + 2).take(16) {
            match &s.tok {
                Token::Ch(',') | Token::Ch(';') | Token::Ch('{') | Token::Ch('}') => break,
                Token::Ident(t) if t.starts_with("Atomic") => {
                    out.entry(name.clone()).or_insert(toks[i].line);
                    break;
                }
                _ => {}
            }
        }
    }
    out
}

/// Collect `Ordering::X` variant names between `open` (an opening paren
/// index) and its matching close paren. Returns the variants in argument
/// order.
fn ordering_args(toks: &[crate::scanner::Spanned], open: usize) -> Vec<String> {
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut k = open;
    while k < toks.len() {
        match &toks[k].tok {
            Token::Ch('(') => depth += 1,
            Token::Ch(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Token::Ident(id) if id == "Ordering" => {
                if let (Some(Token::Ch(':')), Some(Token::Ch(':')), Some(Token::Ident(v))) = (
                    toks.get(k + 1).map(|s| &s.tok),
                    toks.get(k + 2).map(|s| &s.tok),
                    toks.get(k + 3).map(|s| &s.tok),
                ) {
                    out.push(v.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Run the atomics-discipline pass over one lockfree-tagged file.
pub fn check(f: &SourceFile, allow: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    let protocols = parse_protocols(f, &mut findings);
    let fields = declared_atomic_fields(f);
    let toks = &f.scanned.tokens;
    let seqcst_ok = allow.seqcst.iter().any(|p| p == &f.rel);

    // SeqCst anywhere in production code (arguments, fences, consts).
    if !seqcst_ok {
        for s in toks {
            if f.prod(s.line) && matches!(&s.tok, Token::Ident(id) if id == "SeqCst") {
                findings.push(Finding {
                    rule: "atomics-seqcst",
                    file: f.rel.clone(),
                    line: s.line,
                    message: "SeqCst in a lockfree-tagged file; use the weakest ordering the \
                              protocol needs, or add a `seqcst` allowlist entry with the audit \
                              trail"
                        .to_string(),
                });
            }
        }
    }

    // Per-call checks: explicit ordering + protocol conformance.
    for i in 0..toks.len() {
        if !f.prod(toks[i].line) {
            continue;
        }
        let Token::Ident(method) = &toks[i].tok else { continue };
        let Some(class) = OpClass::of(method) else { continue };
        let preceded_by_dot = i > 0 && matches!(toks[i - 1].tok, Token::Ch('.'));
        let open = i + 1;
        let followed_by_call = matches!(toks.get(open).map(|s| &s.tok), Some(Token::Ch('(')));
        if !preceded_by_dot || !followed_by_call {
            continue;
        }
        let orderings = ordering_args(toks, open);
        if orderings.is_empty() {
            findings.push(Finding {
                rule: "atomics-ordering",
                file: f.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "atomic `{method}` without a literal `Ordering::…` argument; spell the \
                     ordering at the call site"
                ),
            });
            continue;
        }
        // Receiver field: `<field> . <method> (`, stepping back over
        // tuple-index hops so `head.0.load(…)` — a cache-padded field —
        // still binds to `head`.
        let mut j = i - 1; // the `.` before the method
        loop {
            let mut k = j;
            while k >= 1 && matches!(&toks[k - 1].tok, Token::Ch(c) if c.is_ascii_digit()) {
                k -= 1;
            }
            if k < j && k >= 1 && matches!(toks[k - 1].tok, Token::Ch('.')) {
                j = k - 1;
            } else {
                break;
            }
        }
        let field = match (j >= 1).then(|| &toks[j - 1].tok) {
            Some(Token::Ident(name)) => Some(name.clone()),
            _ => None,
        };
        let Some(field) = field.filter(|name| fields.contains_key(name)) else { continue };
        match protocols.get(&field) {
            None => {
                // Reported once per field below (missing header).
            }
            Some(proto) => {
                let allowed = proto.allowed(class);
                for ord in &orderings {
                    if !allowed.contains(ord) {
                        findings.push(Finding {
                            rule: "atomics-protocol",
                            file: f.rel.clone(),
                            line: toks[i].line,
                            message: format!(
                                "field `{field}` {method} with Ordering::{ord}, but its protocol \
                                 header (line {}) allows only {{{}}} for this class",
                                proto.line,
                                allowed.iter().cloned().collect::<Vec<_>>().join(", ")
                            ),
                        });
                    }
                }
            }
        }
    }

    // Every declared atomic field needs a header; every header must name a
    // real field.
    for (name, line) in &fields {
        if !protocols.contains_key(name) {
            findings.push(Finding {
                rule: "atomics-protocol",
                file: f.rel.clone(),
                line: *line,
                message: format!(
                    "atomic field `{name}` has no `// protocol: field {name} …` header declaring \
                     its acquire/release pairing"
                ),
            });
        }
    }
    for (name, proto) in &protocols {
        if !fields.contains_key(name) {
            findings.push(Finding {
                rule: "atomics-protocol",
                file: f.rel.clone(),
                line: proto.line,
                message: format!("protocol header names `{name}`, which is not an atomic field"),
            });
        }
    }

    findings
}
