//! Blocking reachability over a token-level intra-workspace call graph.
//!
//! The pass extracts every production `fn` definition (name + body token
//! range) and every `name(…)` call inside a body, then walks the graph
//! from the lock-free entry points — all functions defined in
//! `lockfree`-tagged files — proving no path reaches a blocking
//! primitive: condvar waits, `mpsc` receives, `thread::sleep`, the broker
//! queue's `push_blocking`, or thread parking.
//!
//! Call names resolve in tiers — same file, then same crate, then the
//! whole workspace, first non-empty tier wins — which mirrors how method
//! calls actually bind here: `push_blocking` inside the sharded runtime
//! binds to the ring's lock-free implementation, not the broker queue's
//! condvar one. Qualified calls (`Ring::new(…)`) additionally filter by
//! the receiver type of the `impl` block a candidate is defined in, so
//! `Vec::new` or `Arc::clone` never resolve to an unrelated workspace
//! `fn new`. Method calls on a typed binding (`self.joiner.flush(…)`
//! where the file declares `joiner: JoinerCore`) qualify the same way
//! through the receiver's declared type, and `self.method(…)` binds
//! within the caller's own `impl` block; a name whose declarations
//! conflict falls back to bare-name resolution, so imprecision always
//! errs toward more paths, never fewer. A blacklisted name is only traversed (instead of flagged)
//! when *every* definition it can resolve to lives in a lockfree-tagged
//! file; otherwise the pass flags it with the full call chain from the
//! entry point, so a finding reads as an event chain, not a coordinate.
//! `park`/`park_timeout` are permitted only in functions carrying a
//! `parkok <file> <fn>` allowlist entry (the audited backoff helpers —
//! bounded parking is the one sanctioned idle strategy).

use std::collections::{BTreeMap, HashMap, HashSet};

use super::SourceFile;
use crate::scanner::Token;
use crate::{Allowlist, Finding};

/// Names that block the calling thread when they bind to std / broker
/// primitives.
const BLOCKING: [&str; 13] = [
    "sleep",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "wait_until",
    "wait_timeout_while",
    "park",
    "park_timeout",
    "push_blocking",
];

/// Keywords that look like calls at the token level but are not.
const NOT_CALLS: [&str; 12] = [
    "if", "while", "match", "for", "loop", "return", "in", "as", "else", "move", "unsafe", "fn",
];

/// Method names that are std atomic operations when called with an
/// `Ordering::…` argument. Those call sites belong to the atomics pass,
/// not the call graph — without this, `x.load(Ordering::Relaxed)` would
/// resolve to any workspace `fn load` by bare-name collision.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// One call site: callee name, optional `Type::` qualifier, source line.
#[derive(Clone)]
struct Call {
    name: String,
    qual: Option<String>,
    line: usize,
}

/// One production `fn` definition and the calls inside its body.
struct Def {
    name: String,
    file: usize,
    /// Receiver type of the enclosing `impl` block, if any.
    self_ty: Option<String>,
    calls: Vec<Call>,
}

/// Receiver types of `impl` blocks, by token range.
fn impl_ranges(f: &SourceFile) -> Vec<(std::ops::Range<usize>, String)> {
    let toks = &f.scanned.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !matches!(&toks[i].tok, Token::Ident(kw) if kw == "impl") {
            continue;
        }
        // Skip a generic parameter list directly after `impl`.
        let mut j = i + 1;
        if matches!(toks.get(j).map(|s| &s.tok), Some(Token::Ch('<'))) {
            let mut depth = 0usize;
            while j < toks.len() {
                match &toks[j].tok {
                    Token::Ch('<') => depth += 1,
                    Token::Ch('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `impl Trait for Type` → Type; `impl Type` → the first ident.
        let mut first = None;
        let mut after_for = None;
        let mut body = None;
        while j < toks.len() {
            match &toks[j].tok {
                Token::Ch('{') => {
                    body = Some(j);
                    break;
                }
                Token::Ch(';') => break,
                Token::Ident(id) if id == "for" => after_for = Some(j),
                Token::Ident(id) if first.is_none() => first = Some(id.clone()),
                _ => {}
            }
            j += 1;
        }
        let (Some(open), Some(ty)) = (
            body,
            after_for
                .and_then(|k| {
                    toks[k + 1..].iter().find_map(|s| match &s.tok {
                        Token::Ident(id) => Some(id.clone()),
                        _ => None,
                    })
                })
                .or(first),
        ) else {
            continue;
        };
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Token::Ch('{') => depth += 1,
                Token::Ch('}') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        out.push((open..k, ty));
    }
    out
}

/// True when the argument list opening at token `open` mentions an
/// `Ordering` path — the signature of a std atomic operation.
fn has_ordering_arg(toks: &[crate::scanner::Spanned], open: usize) -> bool {
    let mut depth = 0usize;
    for s in toks.iter().skip(open) {
        match &s.tok {
            Token::Ch('(') => depth += 1,
            Token::Ch(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Token::Ident(id) if id == "Ordering" => return true,
            _ => {}
        }
    }
    false
}

/// Declared types of fields and typed bindings in one file: every
/// `name: Type` token pattern whose first type ident is capitalized
/// (struct fields, fn params, typed `let`s; smart pointers resolve to
/// the wrapper — atomics behind an `Arc` are already excluded from the
/// graph). A name declared with two different types maps to `None`, so
/// resolution falls back to bare-name tiers rather than guessing.
fn binding_types(f: &SourceFile) -> HashMap<String, Option<String>> {
    let toks = &f.scanned.tokens;
    let mut out: HashMap<String, Option<String>> = HashMap::new();
    for i in 0..toks.len().saturating_sub(2) {
        let Token::Ident(name) = &toks[i].tok else { continue };
        if !matches!(toks[i + 1].tok, Token::Ch(':')) || matches!(toks[i + 2].tok, Token::Ch(':')) {
            continue; // not `name: …`, or the head of a `name::path`
        }
        if i > 0 && matches!(toks[i - 1].tok, Token::Ch(':')) {
            continue; // the tail of a `path::name` sequence
        }
        let mut ty = None;
        for s in toks[i + 2..].iter().take(10) {
            match &s.tok {
                Token::Ident(id) if matches!(id.as_str(), "mut" | "dyn" | "const") => {}
                Token::Ident(id) => {
                    ty = Some(id.clone());
                    break;
                }
                Token::Ch(',' | ';' | '{' | '}' | '=' | '(' | ')') => break,
                _ => {}
            }
        }
        let Some(ty) = ty else { continue };
        if !ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue; // lowercase ⇒ a pattern binding or keyword, not a type
        }
        match out.entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().as_deref() != Some(ty.as_str()) {
                    e.insert(None);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Some(ty));
            }
        }
    }
    out
}

/// Crate key of a workspace-relative path (`crates/<k>/…` → `k`).
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("root")
}

/// Extract the production fn definitions of one file.
fn defs_of(file_idx: usize, f: &SourceFile) -> Vec<Def> {
    let toks = &f.scanned.tokens;
    let impls = impl_ranges(f);
    let bindings = binding_types(f);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !f.prod(toks[i].line) {
            continue;
        }
        if !matches!(&toks[i].tok, Token::Ident(kw) if kw == "fn") {
            continue;
        }
        let Some(Token::Ident(name)) = toks.get(i + 1).map(|s| &s.tok) else { continue };
        // Find the body: the first `{` after the signature; a `;` first
        // means a bodyless trait-method declaration.
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            match &toks[j].tok {
                Token::Ch('{') => {
                    body_start = Some(j + 1);
                    break;
                }
                Token::Ch(';') => break,
                _ => j += 1,
            }
        }
        let Some(start) = body_start else { continue };
        let mut depth = 1usize;
        let mut k = start;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Token::Ch('{') => depth += 1,
                Token::Ch('}') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let mut calls = Vec::new();
        for c in start..k.saturating_sub(1) {
            let Token::Ident(callee) = &toks[c].tok else { continue };
            if NOT_CALLS.contains(&callee.as_str()) {
                continue;
            }
            if !matches!(toks.get(c + 1).map(|s| &s.tok), Some(Token::Ch('('))) {
                continue;
            }
            if c > 0 && matches!(&toks[c - 1].tok, Token::Ident(kw) if kw == "fn") {
                continue; // a nested definition, not a call
            }
            if ATOMIC_METHODS.contains(&callee.as_str()) && has_ordering_arg(toks, c + 1) {
                continue; // a std atomic op, owned by the atomics pass
            }
            // `Qual :: callee (` — remember the path qualifier.
            // `recv . callee (` — qualify by the receiver's declared
            // type; `self . callee (` binds within the caller's impl.
            let qual = if c >= 3
                && matches!(toks[c - 1].tok, Token::Ch(':'))
                && matches!(toks[c - 2].tok, Token::Ch(':'))
            {
                match &toks[c - 3].tok {
                    Token::Ident(q) => Some(q.clone()),
                    _ => None,
                }
            } else if c >= 2 && matches!(toks[c - 1].tok, Token::Ch('.')) {
                match &toks[c - 2].tok {
                    Token::Ident(recv) if recv == "self" => Some("Self".to_string()),
                    Token::Ident(recv) => bindings.get(recv.as_str()).cloned().flatten(),
                    _ => None,
                }
            } else {
                None
            };
            calls.push(Call { name: callee.clone(), qual, line: toks[c].line });
        }
        let self_ty = impls
            .iter()
            .filter(|(r, _)| r.contains(&i))
            .min_by_key(|(r, _)| r.end - r.start)
            .map(|(_, ty)| ty.clone());
        out.push(Def { name: name.clone(), file: file_idx, self_ty, calls });
    }
    out
}

/// Walk state shared by the DFS.
struct Walk<'a> {
    files: &'a [SourceFile],
    defs: &'a [Def],
    by_name: HashMap<&'a str, Vec<usize>>,
    lockfree: Vec<bool>,
    parkok: &'a [(String, String)],
    visited: HashSet<usize>,
    findings: BTreeMap<(String, usize, String), Finding>,
}

impl Walk<'_> {
    /// Tiered resolution: same file, then same crate, then workspace. A
    /// `Qual::name` call only binds to defs whose `impl` receiver is
    /// `Qual` (with `Self::` resolved against the caller's impl block);
    /// a qualifier matching no workspace impl is an external path.
    fn resolve(&self, call: &Call, caller: usize) -> Vec<usize> {
        let Some(all) = self.by_name.get(call.name.as_str()) else { return Vec::new() };
        let from_file = self.defs[caller].file;
        let qual = match call.qual.as_deref() {
            Some("Self") => self.defs[caller].self_ty.as_deref(),
            other => other,
        };
        let candidates: Vec<usize> = match qual {
            Some(q) => all
                .iter()
                .copied()
                .filter(|&d| self.defs[d].self_ty.as_deref() == Some(q))
                .collect(),
            None => all.clone(),
        };
        let same_file: Vec<usize> =
            candidates.iter().copied().filter(|&d| self.defs[d].file == from_file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let from_crate = crate_of(&self.files[from_file].rel);
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| crate_of(&self.files[self.defs[d].file].rel) == from_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        candidates
    }

    fn dfs(&mut self, d: usize, path: &mut Vec<usize>) {
        if !self.visited.insert(d) {
            return;
        }
        path.push(d);
        let calls = self.defs[d].calls.clone();
        for call in &calls {
            let (name, line) = (call.name.clone(), call.line);
            let resolved = self.resolve(call, d);
            if BLOCKING.contains(&name.as_str()) {
                let all_lockfree = !resolved.is_empty()
                    && resolved.iter().all(|&r| self.lockfree[self.defs[r].file]);
                if all_lockfree {
                    // Binds to a lock-free implementation (e.g. the ring's
                    // own `push_blocking`): keep walking into it instead.
                    for r in resolved {
                        self.dfs(r, path);
                    }
                    continue;
                }
                let caller_file = self.files[self.defs[d].file].rel.clone();
                let caller_name = self.defs[d].name.clone();
                let park = name == "park" || name == "park_timeout";
                let allowed = park
                    && self
                        .parkok
                        .iter()
                        .any(|(file, func)| *file == caller_file && *func == caller_name);
                if allowed {
                    continue;
                }
                let chain: Vec<String> =
                    path.iter().map(|&p| self.defs[p].name.clone()).collect();
                let entry = chain.first().cloned().unwrap_or_else(|| "?".to_string());
                let message = format!(
                    "blocking primitive `{name}` reachable from lock-free entry `{entry}`: \
                     {} → {name}; hot paths must stay non-blocking (park only via audited \
                     `parkok` backoff helpers)",
                    chain.join(" → ")
                );
                self.findings.entry((caller_file.clone(), line, name.clone())).or_insert_with(
                    || Finding {
                        rule: "blocking-reachability",
                        file: caller_file,
                        line,
                        message,
                    },
                );
                continue;
            }
            for r in resolved {
                self.dfs(r, path);
            }
        }
        path.pop();
    }
}

/// Run the blocking-reachability pass over the scanned workspace.
pub fn check(files: &[SourceFile], allow: &Allowlist) -> Vec<Finding> {
    let mut defs = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        defs.extend(defs_of(idx, f));
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    let lockfree: Vec<bool> =
        files.iter().map(|f| allow.lockfree.iter().any(|p| p == &f.rel)).collect();
    let entries: Vec<usize> =
        (0..defs.len()).filter(|&i| lockfree[defs[i].file]).collect();
    let mut walk = Walk {
        files,
        defs: &defs,
        by_name,
        lockfree,
        parkok: &allow.parkok,
        visited: HashSet::new(),
        findings: BTreeMap::new(),
    };
    let mut path = Vec::new();
    for e in entries {
        walk.dfs(e, &mut path);
    }
    walk.findings.into_values().collect()
}
