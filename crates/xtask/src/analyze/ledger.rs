//! The unsafe ledger and the `Send`/`Sync` surface audit.
//!
//! Every `unsafe` block, fn, impl or trait in production code needs an
//! adjacent `// SAFETY:` comment — on the same line, or directly above
//! with nothing but the comment's own continuation lines in between
//! (`unsafe-safety`). All sites are then aggregated per enclosing item
//! into a byte-stable `UNSAFE_LEDGER.json` (rendered with
//! [`bistream_types::jsonlite`], the same codec the replayable artifacts
//! use) recording file, item, site count and an FNV-1a digest of the
//! justifications. The analyze pass diffs the tree against the committed
//! ledger, so adding, removing or re-justifying unsafe fails CI until the
//! ledger is consciously regenerated with
//! `cargo xtask analyze --update-ledger` (`unsafe-ledger`).
//!
//! The `Send`/`Sync` audit rides on the same site extraction: every
//! `unsafe impl Send`/`Sync` must carry its invariant as a SAFETY comment
//! *and* appear in the committed ledger (`send-sync-ledger`).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use bistream_types::jsonlite::{json_str, Json};

use super::SourceFile;
use crate::scanner::Token;
use crate::Finding;

/// The committed ledger's filename at the workspace root.
pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.json";

/// What kind of construct an `unsafe` keyword introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Block,
    Fn,
    ImplSend,
    ImplSync,
    Other,
}

/// One `unsafe` site in production code.
#[derive(Debug, Clone)]
struct Site {
    line: usize,
    kind: SiteKind,
    /// Enclosing item label, e.g. `fn try_push` or `impl Send for Ring`.
    item: String,
    /// The adjacent SAFETY justification, if present.
    safety: Option<String>,
}

/// One ledger entry: unsafe-site count and justification digest for an
/// enclosing item. Keyed by `(file, item)` in the ledger map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Number of unsafe sites attributed to the item.
    pub count: u64,
    /// FNV-1a 64 digest over the sites' SAFETY justifications, in hex.
    pub digest: String,
}

/// Ledger map: `(file, item)` → entry, ordered for byte-stable rendering.
pub type Ledger = BTreeMap<(String, String), Entry>;

/// FNV-1a 64-bit digest, rendered by the caller as 16 hex digits.
fn fnv1a64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Extract every production `unsafe` site in one file, with its enclosing
/// item and adjacent SAFETY justification.
fn collect_sites(f: &SourceFile) -> Vec<Site> {
    let toks = &f.scanned.tokens;
    // Lines that carry any code token: a SAFETY walk-up stops at them.
    let token_lines: BTreeSet<usize> = toks.iter().map(|s| s.line).collect();
    // fn-def names by token index, to label `unsafe { … }` blocks with
    // their enclosing function.
    let mut fn_defs: Vec<(usize, String)> = Vec::new();
    for i in 0..toks.len() {
        if matches!(&toks[i].tok, Token::Ident(kw) if kw == "fn") {
            if let Some(Token::Ident(name)) = toks.get(i + 1).map(|s| &s.tok) {
                fn_defs.push((i, name.clone()));
            }
        }
    }
    let enclosing_fn = |idx: usize| -> Option<&str> {
        fn_defs.iter().rev().find(|(i, _)| *i < idx).map(|(_, n)| n.as_str())
    };

    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if !f.prod(toks[i].line) {
            continue;
        }
        if !matches!(&toks[i].tok, Token::Ident(kw) if kw == "unsafe") {
            continue;
        }
        let line = toks[i].line;
        let (kind, item) = match toks.get(i + 1).map(|s| &s.tok) {
            Some(Token::Ch('{')) => {
                let item = enclosing_fn(i).map_or("(module)".to_string(), |n| format!("fn {n}"));
                (SiteKind::Block, item)
            }
            Some(Token::Ident(kw)) if kw == "fn" => {
                let name = match toks.get(i + 2).map(|s| &s.tok) {
                    Some(Token::Ident(n)) => n.clone(),
                    _ => "?".to_string(),
                };
                (SiteKind::Fn, format!("fn {name}"))
            }
            Some(Token::Ident(kw)) if kw == "impl" => {
                // `unsafe impl<…> Trait for Type<…>`: the trait is the
                // ident right before `for`, the type right after.
                let mut trait_name = None;
                let mut type_name = None;
                let mut prev: Option<&str> = None;
                for s in toks.iter().skip(i + 2).take(24) {
                    match &s.tok {
                        Token::Ch('{') | Token::Ch(';') => break,
                        Token::Ident(id) if id == "for" => {
                            trait_name = prev;
                        }
                        Token::Ident(id) => {
                            if trait_name.is_some() && type_name.is_none() {
                                type_name = Some(id.as_str());
                            }
                            prev = Some(id.as_str());
                        }
                        _ => {}
                    }
                }
                let (t, ty) = (trait_name.unwrap_or("?"), type_name.unwrap_or("?"));
                let kind = match t {
                    "Send" => SiteKind::ImplSend,
                    "Sync" => SiteKind::ImplSync,
                    _ => SiteKind::Other,
                };
                (kind, format!("impl {t} for {ty}"))
            }
            Some(Token::Ident(kw)) if kw == "trait" => {
                let name = match toks.get(i + 2).map(|s| &s.tok) {
                    Some(Token::Ident(n)) => n.clone(),
                    _ => "?".to_string(),
                };
                (SiteKind::Other, format!("trait {name}"))
            }
            _ => (SiteKind::Other, "(unsafe)".to_string()),
        };
        let safety = safety_comment(f, line, &token_lines);
        sites.push(Site { line, kind, item, safety });
    }
    sites
}

/// The SAFETY justification adjacent to `line`: a `// SAFETY: …` comment
/// on the line itself, or directly above with only the comment's own
/// lines in between (any code token or blank line breaks adjacency).
fn safety_comment(f: &SourceFile, line: usize, token_lines: &BTreeSet<usize>) -> Option<String> {
    let comment_at = |l: usize| {
        f.scanned.comments.iter().find(|c| c.line <= l && l <= c.end_line)
    };
    if let Some(c) = comment_at(line) {
        if let Some(rest) = c.text.strip_prefix("SAFETY:") {
            return Some(rest.trim().to_string());
        }
    }
    // Walk up through the contiguous comment block, collecting
    // continuation lines until the opening SAFETY line.
    let mut below: Vec<String> = Vec::new();
    let mut l = line.checked_sub(1)?;
    loop {
        if token_lines.contains(&l) {
            return None; // a code line breaks adjacency
        }
        let c = comment_at(l)?;
        if let Some(rest) = c.text.strip_prefix("SAFETY:") {
            below.reverse();
            let mut text = rest.trim().to_string();
            for cont in below {
                text.push('\n');
                text.push_str(&cont);
            }
            return Some(text);
        }
        below.push(c.text.clone());
        l = c.line.checked_sub(1)?;
    }
}

/// Build the ledger for a set of scanned files.
fn compute(files: &[SourceFile]) -> (Ledger, Vec<(String, Site)>) {
    let mut groups: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    let mut flat = Vec::new();
    for f in files {
        for site in collect_sites(f) {
            groups.entry((f.rel.clone(), site.item.clone())).or_default().push(site.clone());
            flat.push((f.rel.clone(), site));
        }
    }
    let mut ledger = Ledger::new();
    for (key, mut sites) in groups {
        sites.sort_by_key(|s| s.line);
        let joined: Vec<String> =
            sites.iter().map(|s| s.safety.clone().unwrap_or_default()).collect();
        let digest = format!("{:016x}", fnv1a64(&joined.join("\n\n")));
        ledger.insert(key, Entry { count: sites.len() as u64, digest });
    }
    (ledger, flat)
}

/// Render a ledger in its one canonical byte form (sorted entries,
/// two-space indent, trailing newline).
pub fn render(ledger: &Ledger) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
    let total = ledger.len();
    for (idx, ((file, item), e)) in ledger.iter().enumerate() {
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"file\": {},\n", json_str(file)));
        out.push_str(&format!("      \"item\": {},\n", json_str(item)));
        out.push_str(&format!("      \"count\": {},\n", e.count));
        out.push_str(&format!("      \"digest\": {}\n    }}", json_str(&e.digest)));
        if idx + 1 < total {
            out.push(',');
        }
    }
    if total > 0 {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a committed ledger file.
pub fn parse(text: &str) -> Result<Ledger, String> {
    let v = Json::parse(text).map_err(|e| format!("{e:?}"))?;
    let mut out = Ledger::new();
    for entry in v.field("entries").and_then(Json::as_array).map_err(|e| format!("{e:?}"))? {
        let file = entry.field_str("file").map_err(|e| format!("{e:?}"))?.to_string();
        let item = entry.field_str("item").map_err(|e| format!("{e:?}"))?.to_string();
        let count = entry.field_u64("count").map_err(|e| format!("{e:?}"))?;
        let digest = entry.field_str("digest").map_err(|e| format!("{e:?}"))?.to_string();
        out.insert((file, item), Entry { count, digest });
    }
    Ok(out)
}

/// Run the unsafe-ledger and Send/Sync-audit passes.
///
/// With `update` the computed ledger is written to `UNSAFE_LEDGER.json`
/// and becomes the committed one; SAFETY findings still fail the run.
pub fn check(root: &Path, files: &[SourceFile], update: bool) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let (computed, sites) = compute(files);

    for (file, site) in &sites {
        if site.safety.is_none() {
            findings.push(Finding {
                rule: "unsafe-safety",
                file: file.clone(),
                line: site.line,
                message: format!(
                    "unsafe site in `{}` without an adjacent `// SAFETY:` comment stating the \
                     invariant that makes it sound",
                    site.item
                ),
            });
        }
    }

    let ledger_path = root.join(LEDGER_FILE);
    let committed = if update {
        std::fs::write(&ledger_path, render(&computed))
            .map_err(|e| format!("{LEDGER_FILE}: {e}"))?;
        computed.clone()
    } else {
        match std::fs::read_to_string(&ledger_path) {
            Ok(text) => match parse(&text) {
                Ok(l) => l,
                Err(e) => {
                    findings.push(Finding {
                        rule: "unsafe-ledger",
                        file: LEDGER_FILE.to_string(),
                        line: 1,
                        message: format!("unparseable ledger: {e}"),
                    });
                    Ledger::new()
                }
            },
            // No ledger committed: clean only if the tree has no unsafe.
            Err(_) => Ledger::new(),
        }
    };

    if !update {
        for ((file, item), entry) in &computed {
            let site_line = sites
                .iter()
                .filter(|(f, s)| f == file && s.item == *item)
                .map(|(_, s)| s.line)
                .min()
                .unwrap_or(1);
            match committed.get(&(file.clone(), item.clone())) {
                None => findings.push(Finding {
                    rule: "unsafe-ledger",
                    file: file.clone(),
                    line: site_line,
                    message: format!(
                        "{} unsafe site(s) in `{item}` are not in {LEDGER_FILE}; audit them, \
                         then run `cargo xtask analyze --update-ledger`",
                        entry.count
                    ),
                }),
                Some(c) if c != entry => findings.push(Finding {
                    rule: "unsafe-ledger",
                    file: file.clone(),
                    line: site_line,
                    message: format!(
                        "`{item}` drifted from {LEDGER_FILE} (count {} → {}, digest {} → {}); \
                         re-audit, then run `cargo xtask analyze --update-ledger`",
                        c.count, entry.count, c.digest, entry.digest
                    ),
                }),
                Some(_) => {}
            }
        }
        for (file, item) in committed.keys() {
            if !computed.contains_key(&(file.clone(), item.clone())) {
                findings.push(Finding {
                    rule: "unsafe-ledger",
                    file: LEDGER_FILE.to_string(),
                    line: 1,
                    message: format!(
                        "stale ledger entry `{file}` / `{item}` no longer exists in the tree; \
                         run `cargo xtask analyze --update-ledger`"
                    ),
                });
            }
        }
    }

    // Send/Sync surface audit: every unsafe impl Send/Sync must be
    // ledgered with its invariant.
    for (file, site) in &sites {
        if !matches!(site.kind, SiteKind::ImplSend | SiteKind::ImplSync) {
            continue;
        }
        let ledgered = committed.contains_key(&(file.clone(), site.item.clone()));
        if !ledgered || site.safety.is_none() {
            findings.push(Finding {
                rule: "send-sync-ledger",
                file: file.clone(),
                line: site.line,
                message: format!(
                    "`{}` widens the thread-safety surface and must be ledgered with its \
                     invariant: a `// SAFETY:` comment plus an {LEDGER_FILE} entry",
                    site.item
                ),
            });
        }
    }

    Ok(findings)
}
