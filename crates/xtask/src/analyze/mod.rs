//! `cargo xtask analyze` — the deeper static passes over the lock-free
//! runtime, run as a blocking CI gate next to `lint`.
//!
//! Four passes share one scan of the workspace sources:
//!
//! 1. **atomics discipline** ([`atomics`]) — in `lockfree`-tagged files
//!    every atomic operation must spell its `Ordering::` out at the call
//!    site, `SeqCst` is forbidden unless the file carries a `seqcst`
//!    allowlist entry, and each synchronization field's declared
//!    `// protocol:` header is cross-checked against every load, store
//!    and RMW of that field.
//! 2. **unsafe ledger** ([`ledger`]) — every `unsafe` block / fn / impl
//!    needs an adjacent `// SAFETY:` comment, and the committed
//!    `UNSAFE_LEDGER.json` must match the tree byte-for-byte so new
//!    unsafe fails review until `cargo xtask analyze --update-ledger` is
//!    run consciously.
//! 3. **blocking reachability** ([`reach`]) — a token-level call graph
//!    over the workspace proves no function reachable from a
//!    lockfree-tagged entry point calls a blocking primitive
//!    (`Condvar::wait`, `push_blocking`, `mpsc` receives,
//!    `thread::sleep`; `park`/`park_timeout` only via `parkok` entries).
//! 4. **Send/Sync surface audit** (also in [`ledger`]) — every
//!    `unsafe impl Send`/`Sync` must be ledgered with its invariant.
//!
//! Findings reuse the lint's [`Finding`] shape so the two gates print and
//! fail identically.

pub mod atomics;
pub mod ledger;
pub mod reach;

use std::path::Path;

use crate::scanner::{self, Scanned};
use crate::{Allowlist, Finding};

/// One scanned workspace source file, shared by every pass so the tree is
/// read and tokenized exactly once.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Token + comment view of the source.
    pub scanned: Scanned,
    /// First `#[cfg(test)]` line; `usize::MAX` when the file has none.
    /// Tokens at or past it are test code and exempt from every pass.
    pub boundary: usize,
}

impl SourceFile {
    /// Build the per-file view from raw source text.
    pub fn new(rel: &str, src: &str) -> SourceFile {
        let scanned = scanner::scan(src);
        let boundary = scanner::test_boundary(&scanned.tokens).unwrap_or(usize::MAX);
        SourceFile { rel: rel.to_string(), scanned, boundary }
    }

    /// True when `line` is production (pre-`#[cfg(test)]`) code.
    pub fn prod(&self, line: usize) -> bool {
        line < self.boundary
    }
}

/// Read and scan every workspace production source under `root`.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    for path in crate::workspace_sources(root).map_err(|e| e.to_string())? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        out.push(SourceFile::new(&rel, &src));
    }
    Ok(out)
}

/// Run all four analyze passes over the workspace rooted at `root`.
///
/// With `update_ledger` the computed unsafe ledger is written to
/// `UNSAFE_LEDGER.json` instead of being diffed against it; every other
/// finding still fails the run, so `--update-ledger` cannot launder a
/// missing SAFETY comment.
pub fn analyze_workspace(root: &Path, update_ledger: bool) -> Result<Vec<Finding>, String> {
    let allow = match std::fs::read_to_string(root.join("xtask.allow")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let files = load_sources(root)?;
    let mut findings = Vec::new();
    for f in &files {
        if allow.lockfree.iter().any(|p| p == &f.rel) {
            findings.extend(atomics::check(f, &allow));
        }
    }
    findings.extend(ledger::check(root, &files, update_ledger)?);
    findings.extend(reach::check(&files, &allow));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}
