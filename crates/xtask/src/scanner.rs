//! Shared token scanner behind the `lint` and `analyze` passes.
//!
//! Tokenizes Rust source just well enough for house-rule analysis: line and
//! (nested) block comments are captured separately from the significant
//! token stream, normal and raw string literals are kept whole as
//! [`Token::Str`], char literals and lifetimes are skipped, identifiers are
//! kept whole. Every rule that matches identifiers therefore matches *code
//! tokens only* — a `Mutex` in a doc comment or a `"push_blocking"` in a
//! string literal can never trip a pass.

/// A significant token produced by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword, kept whole.
    Ident(String),
    /// The unescaped body of a normal, raw or byte string literal.
    Str(String),
    /// Any other single significant character (`.`, `:`, `(` …).
    Ch(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The token itself.
    pub tok: Token,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// One comment with the 1-based line span it covers and its inner text
/// (`//`/`///`/`//!`/`/* … */` markers stripped, surrounding space
/// trimmed).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: usize,
    /// Marker-stripped, trimmed comment text.
    pub text: String,
}

/// Token + comment view of one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Significant tokens, in source order.
    pub tokens: Vec<Spanned>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Scan one file. See the module docs for what is and is not tokenized.
pub fn scan(src: &str) -> Scanned {
    let bytes = src.as_bytes();
    let mut out = Scanned::default();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text =
                    src[start..i].trim_start_matches('/').trim_start_matches('!').trim().to_string();
                out.comments.push(Comment { line, end_line: line, text });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text = src[start..end.min(src.len())]
                    .trim_start_matches(['*', '!'])
                    .trim()
                    .to_string();
                out.comments.push(Comment { line: start_line, end_line: line, text });
            }
            '"' => {
                let start_line = line;
                let mut lit = String::new();
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            // An escaped newline (line continuation) still
                            // advances the line counter; losing it would
                            // misattribute every later finding.
                            if bytes.get(i + 1) == Some(&b'\n') {
                                line += 1;
                            }
                            i += 2;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b => {
                            if b == b'\n' {
                                line += 1;
                            }
                            lit.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.tokens.push(Spanned { tok: Token::Str(lit), line: start_line });
            }
            'r' | 'b'
                if {
                    // Raw string heads: r", r#", br", b" …
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    while bytes.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    (c != 'b' || j > i + 1 || bytes.get(j) == Some(&b'"'))
                        && bytes.get(j) == Some(&b'"')
                        && (c == 'b' || j > i + 1)
                } =>
            {
                // Raw (or byte) string: skip to the matching quote+hashes.
                let start_line = line;
                let mut j = i + 1;
                if c == 'b' && bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                let mut lit = String::new();
                'raw: while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while seen < hashes && bytes.get(k) == Some(&b'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    lit.push(bytes[j] as char);
                    j += 1;
                }
                out.tokens.push(Spanned { tok: Token::Str(lit), line: start_line });
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. `'a'` / `'\n'` are literals;
                // `'a` (no closing quote right after) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1; // lifetime tick; identifier follows as a token
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.tokens.push(Spanned { tok: Token::Ident(src[start..i].to_string()), line });
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            other => {
                out.tokens.push(Spanned { tok: Token::Ch(other), line });
                i += 1;
            }
        }
    }
    out
}

/// Line (1-based) of the first `#[cfg(test)]` attribute, if any; tokens at
/// or after it are test code.
pub fn test_boundary(tokens: &[Spanned]) -> Option<usize> {
    // #[cfg(test)] tokenizes as `#` `[` cfg `(` test `)` `]`.
    for w in tokens.windows(7) {
        let shape: Vec<&Token> = w.iter().map(|s| &s.tok).collect();
        if matches!(
            shape.as_slice(),
            [Token::Ch('#'), Token::Ch('['), Token::Ident(a), Token::Ch('('), Token::Ident(b), Token::Ch(')'), Token::Ch(']')]
                if a == "cfg" && b == "test"
        ) {
            return Some(w[0].line);
        }
    }
    None
}
