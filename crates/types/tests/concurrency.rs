//! Concurrency tests for the observability primitives: writers bumping
//! registered handles (and racing get-or-create registrations) while a
//! scraper reads, plus journal record/drain accounting under contention.
//! These pin down the claims the registry makes — hot-path bumps never
//! block on the registry lock, scrapes are consistent point-in-time reads,
//! and every journal event is either drained or counted as dropped.

use bistream_types::journal::{EventJournal, EventKind};
use bistream_types::registry::{MetricValue, MetricsRegistry};
use bistream_types::rel::Rel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const BUMPS: u64 = 50_000;

#[test]
fn scrapes_see_monotone_counters_while_writers_bump() {
    let reg = MetricsRegistry::new();
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let unit = format!("R{w}");
        let counter = reg.counter("bistream_test_bumps_total", &[("joiner", &unit)]);
        let hist = reg.histogram("bistream_test_latency_ms", &[("joiner", &unit)]);
        handles.push(thread::spawn(move || {
            for i in 0..BUMPS {
                counter.inc();
                hist.record(i % 1024);
            }
        }));
    }

    // Scrape continuously while the writers run; every per-key counter
    // reading must be monotone non-decreasing across scrapes.
    let scraper = {
        let reg = reg.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut floor = vec![0u64; WRITERS];
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.scrape(scrapes);
                for (w, lo) in floor.iter_mut().enumerate() {
                    let unit = format!("R{w}");
                    let v = snap
                        .counter("bistream_test_bumps_total", &[("joiner", &unit)])
                        .expect("registered series never vanishes mid-run");
                    assert!(v >= *lo, "counter went backwards: {v} < {lo}");
                    *lo = v;
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0);

    let terminal = reg.scrape(0);
    for w in 0..WRITERS {
        let unit = format!("R{w}");
        assert_eq!(
            terminal.counter("bistream_test_bumps_total", &[("joiner", &unit)]),
            Some(BUMPS)
        );
        match terminal.get("bistream_test_latency_ms", &[("joiner", &unit)]) {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, BUMPS),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}

#[test]
fn racing_registrations_converge_on_one_shared_handle() {
    let reg = MetricsRegistry::new();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let reg = reg.clone();
            thread::spawn(move || {
                // Every thread get-or-creates the same key and bumps it;
                // all of them must land on the same underlying counter.
                let c = reg.counter("bistream_test_shared_total", &[("queue", "ingest")]);
                for _ in 0..10_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(reg.len(), 1, "races must not mint duplicate series");
    assert_eq!(
        reg.scrape(0).counter("bistream_test_shared_total", &[("queue", "ingest")]),
        Some(80_000)
    );
}

#[test]
fn journal_accounts_for_every_event_under_concurrent_drain() {
    // A small ring forces evictions while a drainer races the writers:
    // at the end, drained + dropped must equal exactly what was recorded.
    let journal = EventJournal::with_capacity(64);
    let stop = Arc::new(AtomicBool::new(false));

    let recorded: u64 = (WRITERS as u64) * 20_000;
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let journal = journal.clone();
            thread::spawn(move || {
                for i in 0..20_000u64 {
                    journal
                        .record(i, EventKind::TupleStored { side: Rel::R, unit: w as u32, seq: i });
                }
            })
        })
        .collect();

    let drainer = {
        let journal = journal.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut drained = 0u64;
            while !stop.load(Ordering::Relaxed) {
                drained += journal.drain().len() as u64;
            }
            drained
        })
    };

    for t in writers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let drained = drainer.join().unwrap() + journal.drain().len() as u64;
    assert!(journal.is_empty());
    assert_eq!(drained + journal.dropped(), recorded, "no event lost or duplicated");
}
