//! Per-tuple causal tracing with latency attribution.
//!
//! Aggregate metrics (the registry) and the event journal answer "how much"
//! and "what happened", but the paper's latency claims — ordering-protocol
//! buffering cost, routing overhead under skew, archive stalls — are
//! *per-tuple* phenomena. This module follows individual tuples through the
//! biclique: a sampling [`Tracer`] allocates a [`TraceId`] when the router
//! assigns the tuple its global sequence number, and every hop of the
//! tuple's journey (route → enqueue → dequeue → store/probe → emit) records
//! a [`Span`] with its unit label and enter/exit stamps in virtual time.
//!
//! Sampling is deterministic — 1-in-N by sequence number, no RNG — so two
//! simulator runs with the same seed trace exactly the same tuples and
//! produce identical traces. A tuple's copies (its store copy, its join
//! copies, and any historical-layout or draining extras) are *branches* of
//! one trace: the router opens the trace with the branch count, the engine
//! adds branches for extras, and each joiner closes its branch after
//! processing its copy. When the last branch closes, the trace is complete
//! and moves to a bounded lock-free store with evict-oldest semantics and
//! drop accounting, feeding per-hop latency histograms into the attached
//! [`MetricsRegistry`](crate::registry::MetricsRegistry).
//!
//! Latency attribution falls out of the span chain: a hop's *queue wait* is
//! the gap between the previous hop's exit and this hop's enter, its
//! *service time* is enter → exit, and the two telescope exactly to the
//! trace's end-to-end latency (see [`Trace::hop_timings`]). Completed
//! traces export as Chrome `trace_event` JSON via [`chrome_trace_json`],
//! loadable in `chrome://tracing` or Perfetto.

use crate::hash::FxHashMap;
use crate::metrics::{Counter, Histogram};
use crate::registry::MetricsRegistry;
use crate::time::Ts;
use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// Identity of one traced tuple: the global sequence number the router
/// assigned at ingress (Definition 7's `Z` counter), shared by every copy
/// of the tuple so all branches land in the same trace.
pub type TraceId = u64;

/// Default capacity of the bounded completed-trace store.
pub const DEFAULT_TRACE_CAPACITY: usize = 4_096;

/// What kind of hop a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum HopKind {
    /// The router picked destinations and stamped the sequence number.
    Route,
    /// A copy entered a queue (the simulator's channel net or a broker
    /// queue).
    Enqueue,
    /// A copy left a queue and reached its unit.
    Dequeue,
    /// The unit inserted the copy into its side's chained index.
    Store,
    /// The unit probed the opposite side's index with the copy.
    Probe,
    /// The probe produced at least one match and results were emitted.
    Emit,
}

impl HopKind {
    /// Stable lowercase label, used for histogram `hop` labels and Chrome
    /// event names.
    pub fn label(self) -> &'static str {
        match self {
            HopKind::Route => "route",
            HopKind::Enqueue => "enqueue",
            HopKind::Dequeue => "dequeue",
            HopKind::Store => "store",
            HopKind::Probe => "probe",
            HopKind::Emit => "emit",
        }
    }

    /// All hop kinds in journey order.
    pub const ALL: [HopKind; 6] = [
        HopKind::Route,
        HopKind::Enqueue,
        HopKind::Dequeue,
        HopKind::Store,
        HopKind::Probe,
        HopKind::Emit,
    ];
}

/// One hop of a traced tuple's journey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Span {
    /// The hop kind.
    pub kind: HopKind,
    /// The unit that performed the hop (router id, joiner label, queue
    /// name, matrix cell …).
    pub unit: String,
    /// Virtual time the hop began.
    pub enter: Ts,
    /// Virtual time the hop finished; always ≥ `enter`.
    pub exit: Ts,
}

impl Span {
    /// Service time of this hop (exit − enter).
    pub fn service(&self) -> Ts {
        self.exit - self.enter
    }
}

/// Wait/service attribution for one hop, derived from the span chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HopTiming {
    /// The hop kind.
    pub kind: HopKind,
    /// The unit that performed the hop.
    pub unit: String,
    /// Time spent waiting between the previous hop's exit and this hop's
    /// enter (zero for the first hop).
    pub wait: Ts,
    /// Time spent inside the hop.
    pub service: Ts,
}

/// The recorded journey of one sampled tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// The tuple's global sequence number.
    pub id: TraceId,
    /// Spans in causal (record) order.
    pub spans: Vec<Span>,
    /// True when every branch of the tuple's fan-out closed; false when the
    /// tracer was flushed with branches still open (e.g. copies addressed
    /// to units retired mid-flight).
    pub complete: bool,
}

impl Trace {
    /// End-to-end latency: last exit minus first enter (0 if empty).
    pub fn end_to_end(&self) -> Ts {
        match (self.spans.first(), self.spans.last()) {
            (Some(first), Some(last)) => last.exit - first.enter,
            _ => 0,
        }
    }

    /// Per-hop queue-wait and service-time attribution.
    ///
    /// Spans are causally ordered at record time (each span's enter is
    /// clamped to the previous span's exit), so every wait and service is
    /// non-negative and the telescoping identity holds exactly:
    /// `Σ wait + Σ service == end_to_end()`.
    pub fn hop_timings(&self) -> Vec<HopTiming> {
        let mut out = Vec::with_capacity(self.spans.len());
        let mut prev_exit: Option<Ts> = None;
        for span in &self.spans {
            let wait = match prev_exit {
                Some(pe) => span.enter - pe,
                None => 0,
            };
            out.push(HopTiming {
                kind: span.kind,
                unit: span.unit.clone(),
                wait,
                service: span.service(),
            });
            prev_exit = Some(span.exit);
        }
        out
    }

    /// Whether the trace visited the given hop kind.
    pub fn has_hop(&self, kind: HopKind) -> bool {
        self.spans.iter().any(|s| s.kind == kind)
    }
}

/// A trace still in flight: its spans plus the number of branches (tuple
/// copies) that have not yet reached their terminal hop.
#[derive(Debug)]
struct PendingTrace {
    spans: Vec<Span>,
    open_branches: u32,
}

/// Per-hop histograms fed at trace completion, plus completion counters.
#[derive(Debug)]
struct TraceMetrics {
    /// Indexed by `HopKind` position in [`HopKind::ALL`]: (wait, service).
    hops: Vec<(Arc<Histogram>, Arc<Histogram>)>,
    e2e: Arc<Histogram>,
    completed: Arc<Counter>,
}

#[derive(Debug)]
struct TracerInner {
    /// Sample 1 in `one_in` sequence numbers.
    one_in: u64,
    pending: Mutex<FxHashMap<TraceId, PendingTrace>>,
    /// Bounded completed-trace store (evict-oldest on overflow).
    completed: ArrayQueue<Trace>,
    dropped: Arc<Counter>,
    metrics: Mutex<Option<TraceMetrics>>,
}

/// A sampling per-tuple tracer.
///
/// Cheap to clone (an `Arc` inside) and zero-cost when disabled: the
/// default tracer holds no allocation at all and every call is a no-op
/// after one branch check. Instrumentation sites gate their work on
/// [`Tracer::sampled`], which never takes a lock.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The disabled tracer: samples nothing, records nothing.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer sampling 1 in `one_in` tuples (by sequence
    /// number), with the default completed-trace capacity. `one_in` of 1
    /// traces everything; 0 is clamped to 1.
    pub fn new(one_in: u64) -> Tracer {
        Tracer::with_capacity(one_in, DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer with an explicit bound on the completed store.
    pub fn with_capacity(one_in: u64, capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                one_in: one_in.max(1),
                pending: Mutex::new(FxHashMap::default()),
                completed: ArrayQueue::new(capacity.max(1)),
                dropped: Counter::shared(),
                metrics: Mutex::new(None),
            })),
        }
    }

    /// True when this tracer can record anything at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling rate (`Some(one_in)`) or `None` when disabled.
    pub fn sample_rate(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.one_in)
    }

    /// Deterministic sampling decision for a sequence number. Sequence
    /// numbers start at 1; seq 1 is always in the sample so even tiny runs
    /// produce at least one trace. Never locks.
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        match &self.inner {
            Some(inner) => seq != 0 && seq % inner.one_in == 1 % inner.one_in,
            None => false,
        }
    }

    /// Open a trace for `seq` with `branches` tuple copies in flight.
    /// No-op unless `seq` is sampled; re-opening an existing trace only
    /// raises its branch count.
    pub fn begin(&self, seq: u64, branches: u32) {
        if !self.sampled(seq) {
            return;
        }
        let inner = self.inner.as_ref().expect("sampled implies enabled");
        let mut pending = inner.pending.lock();
        pending
            .entry(seq)
            .and_modify(|t| t.open_branches += branches)
            .or_insert_with(|| PendingTrace { spans: Vec::new(), open_branches: branches });
    }

    /// Add extra branches to an open trace (historical-layout and draining
    /// copies the engine fans out after routing).
    pub fn add_branches(&self, seq: u64, extra: u32) {
        if extra == 0 || !self.sampled(seq) {
            return;
        }
        let inner = self.inner.as_ref().expect("sampled implies enabled");
        if let Some(t) = inner.pending.lock().get_mut(&seq) {
            t.open_branches += extra;
        }
    }

    /// Record one hop. Timestamps are clamped into causal order: the
    /// span's enter is raised to the previous span's exit (branches of one
    /// tuple interleave on a single causal chain) and exit is raised to
    /// enter, so stored spans always satisfy the invariants
    /// [`Trace::hop_timings`] relies on.
    pub fn span(&self, seq: u64, kind: HopKind, unit: &str, enter: Ts, exit: Ts) {
        if !self.sampled(seq) {
            return;
        }
        let inner = self.inner.as_ref().expect("sampled implies enabled");
        let mut pending = inner.pending.lock();
        let Some(t) = pending.get_mut(&seq) else { return };
        let floor = t.spans.last().map(|s| s.exit).unwrap_or(0);
        let enter = enter.max(floor);
        let exit = exit.max(enter);
        t.spans.push(Span { kind, unit: unit.to_owned(), enter, exit });
    }

    /// Close one branch of a trace. When the last branch closes the trace
    /// is complete: it moves to the bounded store (evicting the oldest
    /// trace, with drop accounting, if full) and feeds the attached
    /// per-hop histograms.
    pub fn end_branch(&self, seq: u64) {
        if !self.sampled(seq) {
            return;
        }
        let inner = self.inner.as_ref().expect("sampled implies enabled");
        let finished = {
            let mut pending = inner.pending.lock();
            let Some(t) = pending.get_mut(&seq) else { return };
            t.open_branches = t.open_branches.saturating_sub(1);
            if t.open_branches > 0 {
                return;
            }
            let t = pending.remove(&seq).expect("entry just accessed");
            Trace { id: seq, spans: t.spans, complete: true }
        };
        self.finish_trace(inner, finished);
    }

    /// Attach a registry: creates per-hop wait/service histograms
    /// (`bistream_trace_hop_wait_ms` / `bistream_trace_hop_service_ms`,
    /// labeled `hop="route"` …), the end-to-end latency histogram and the
    /// completion/drop counters. No-op when disabled.
    pub fn attach_registry(&self, registry: &MetricsRegistry) {
        let Some(inner) = &self.inner else { return };
        let hops = HopKind::ALL
            .iter()
            .map(|k| {
                let labels: &[(&str, &str)] = &[("hop", k.label())];
                (
                    registry.histogram(crate::metric_names::TRACE_HOP_WAIT_MS, labels),
                    registry.histogram(crate::metric_names::TRACE_HOP_SERVICE_MS, labels),
                )
            })
            .collect();
        let metrics = TraceMetrics {
            hops,
            e2e: registry.histogram(crate::metric_names::TRACE_E2E_LATENCY_MS, &[]),
            completed: registry.counter(crate::metric_names::TRACE_COMPLETED_TOTAL, &[]),
        };
        registry.register_counter(crate::metric_names::TRACE_DROPPED_TOTAL, &[], &inner.dropped);
        *inner.metrics.lock() = Some(metrics);
    }

    fn finish_trace(&self, inner: &TracerInner, trace: Trace) {
        if let Some(m) = inner.metrics.lock().as_ref() {
            if trace.complete {
                m.completed.inc();
                m.e2e.record(trace.end_to_end());
                for hop in trace.hop_timings() {
                    let idx = HopKind::ALL.iter().position(|k| *k == hop.kind);
                    if let Some(idx) = idx {
                        m.hops[idx].0.record(hop.wait);
                        m.hops[idx].1.record(hop.service);
                    }
                }
            }
        }
        let mut evicted = trace;
        while let Err(back) = inner.completed.push(evicted) {
            let _ = inner.completed.pop();
            inner.dropped.inc();
            evicted = back;
        }
    }

    /// Move every still-open trace to the completed store marked
    /// `complete: false` (branches that will never close — e.g. copies to
    /// units retired mid-flight). Returns how many were flushed.
    pub fn flush_pending(&self) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        let drained: Vec<(TraceId, PendingTrace)> = {
            let mut pending = inner.pending.lock();
            let mut entries: Vec<_> = pending.drain().collect();
            entries.sort_by_key(|(id, _)| *id);
            entries
        };
        let n = drained.len();
        for (id, t) in drained {
            self.finish_trace(inner, Trace { id, spans: t.spans, complete: false });
        }
        n
    }

    /// Number of traces currently in the completed store.
    pub fn completed_len(&self) -> usize {
        self.inner.as_ref().map(|i| i.completed.len()).unwrap_or(0)
    }

    /// Number of traces still open (branches in flight).
    pub fn pending_len(&self) -> usize {
        self.inner.as_ref().map(|i| i.pending.lock().len()).unwrap_or(0)
    }

    /// Completed traces evicted because the bounded store overflowed.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.dropped.get()).unwrap_or(0)
    }

    /// Drain the completed store in completion order, oldest first.
    pub fn drain(&self) -> Vec<Trace> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut out = Vec::with_capacity(inner.completed.len());
        while let Some(t) = inner.completed.pop() {
            out.push(t);
        }
        out
    }
}

/// Render completed traces as Chrome `trace_event` JSON (the "JSON Array
/// Format" with complete `"X"` events), loadable in `chrome://tracing` or
/// Perfetto. Each trace gets its own thread lane (`tid` = trace id mod a
/// display range, named after the trace), and virtual milliseconds map to
/// the format's microseconds.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        let tid = trace.id;
        let suffix = if trace.complete { "" } else { " (incomplete)" };
        push_event(&mut out, &mut first, &format_args_meta(tid, suffix));
        for (i, hop) in trace.hop_timings().iter().enumerate() {
            let span = &trace.spans[i];
            let ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"unit\":\"{}\",\"seq\":{},\"wait_ms\":{}}}}}",
                hop.kind.label(),
                hop.kind.label(),
                tid,
                span.enter.saturating_mul(1_000),
                span.service().saturating_mul(1_000),
                escape_json(&hop.unit),
                trace.id,
                hop.wait,
            );
            push_event(&mut out, &mut first, &ev);
        }
    }
    out.push_str("]}");
    out
}

fn format_args_meta(tid: TraceId, suffix: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
         \"args\":{{\"name\":\"trace {tid}{suffix}\"}}}}"
    )
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(ev);
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.sampled(1));
        t.begin(1, 2);
        t.span(1, HopKind::Route, "r0", 0, 0);
        t.end_branch(1);
        assert_eq!(t.completed_len(), 0);
        assert_eq!(t.flush_pending(), 0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let t = Tracer::new(10);
        let sampled: Vec<u64> = (0..40).filter(|s| t.sampled(*s)).collect();
        assert_eq!(sampled, vec![1, 11, 21, 31], "seq 1 always in sample");
        assert!(!t.sampled(0), "seq 0 is the unrouted sentinel");
        let all = Tracer::new(1);
        assert!((1..20).all(|s| all.sampled(s)));
    }

    #[test]
    fn branch_refcount_completes_trace_once() {
        let t = Tracer::new(1);
        t.begin(5, 2);
        t.span(5, HopKind::Route, "r0", 10, 10);
        t.span(5, HopKind::Enqueue, "R0", 10, 10);
        t.span(5, HopKind::Enqueue, "S1", 10, 10);
        t.end_branch(5);
        assert_eq!(t.completed_len(), 0, "one branch still open");
        t.span(5, HopKind::Store, "R0", 12, 12);
        t.end_branch(5);
        let traces = t.drain();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].complete);
        assert_eq!(traces[0].spans.len(), 4);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn spans_are_clamped_into_causal_order() {
        let t = Tracer::new(1);
        t.begin(1, 1);
        t.span(1, HopKind::Route, "r0", 10, 8); // exit < enter
        t.span(1, HopKind::Enqueue, "R0", 3, 5); // enter < previous exit
        t.end_branch(1);
        let trace = &t.drain()[0];
        assert_eq!((trace.spans[0].enter, trace.spans[0].exit), (10, 10));
        assert_eq!((trace.spans[1].enter, trace.spans[1].exit), (10, 10));
        let timings = trace.hop_timings();
        let total: Ts = timings.iter().map(|h| h.wait + h.service).sum();
        assert_eq!(total, trace.end_to_end());
    }

    #[test]
    fn hop_timings_attribute_wait_and_service() {
        let trace = Trace {
            id: 1,
            complete: true,
            spans: vec![
                Span { kind: HopKind::Route, unit: "r0".into(), enter: 0, exit: 1 },
                Span { kind: HopKind::Enqueue, unit: "R0".into(), enter: 1, exit: 1 },
                Span { kind: HopKind::Dequeue, unit: "R0".into(), enter: 7, exit: 7 },
                Span { kind: HopKind::Store, unit: "R0".into(), enter: 12, exit: 14 },
            ],
        };
        let timings = trace.hop_timings();
        assert_eq!(timings[0].wait, 0);
        assert_eq!(timings[2].wait, 6, "queue wait = dequeue enter - enqueue exit");
        assert_eq!(timings[3].wait, 5, "reorder wait = store enter - dequeue exit");
        assert_eq!(timings[3].service, 2);
        let total: Ts = timings.iter().map(|h| h.wait + h.service).sum();
        assert_eq!(total, trace.end_to_end());
        assert_eq!(trace.end_to_end(), 14);
    }

    #[test]
    fn bounded_store_evicts_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(1, 2);
        for seq in 1..=4u64 {
            t.begin(seq, 1);
            t.span(seq, HopKind::Route, "r0", seq, seq);
            t.end_branch(seq);
        }
        assert_eq!(t.dropped(), 2);
        let ids: Vec<u64> = t.drain().iter().map(|tr| tr.id).collect();
        assert_eq!(ids, vec![3, 4], "oldest traces evicted first");
    }

    #[test]
    fn flush_pending_marks_incomplete() {
        let t = Tracer::new(1);
        t.begin(9, 3);
        t.span(9, HopKind::Route, "r0", 1, 1);
        t.end_branch(9);
        assert_eq!(t.flush_pending(), 1);
        let traces = t.drain();
        assert_eq!(traces.len(), 1);
        assert!(!traces[0].complete, "open branches never closed");
    }

    #[test]
    fn completion_feeds_registry_histograms() {
        let reg = MetricsRegistry::new();
        let t = Tracer::new(1);
        t.attach_registry(&reg);
        t.begin(1, 1);
        t.span(1, HopKind::Route, "r0", 0, 0);
        t.span(1, HopKind::Store, "R0", 5, 5);
        t.end_branch(1);
        let snap = reg.scrape(10);
        assert_eq!(snap.counter(crate::metric_names::TRACE_COMPLETED_TOTAL, &[]), Some(1));
        assert_eq!(snap.counter(crate::metric_names::TRACE_DROPPED_TOTAL, &[]), Some(0));
        assert!(
            snap.get(crate::metric_names::TRACE_HOP_SERVICE_MS, &[("hop", "store")]).is_some(),
            "per-hop histogram registered and fed"
        );
        assert!(snap.get(crate::metric_names::TRACE_E2E_LATENCY_MS, &[]).is_some());
    }

    #[test]
    fn chrome_export_is_valid_json_with_events() {
        let t = Tracer::new(1);
        t.begin(1, 1);
        t.span(1, HopKind::Route, "r0", 0, 1);
        t.span(1, HopKind::Store, "R\"0", 3, 4);
        t.end_branch(1);
        let json = chrome_trace_json(&t.drain());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"route\""));
        assert!(json.contains("\\\"0"), "unit labels are JSON-escaped");
        // ts/dur are microseconds: store enter 3 ms → 3000 µs, dur 1 ms.
        assert!(json.contains("\"ts\":3000,\"dur\":1000"));
    }
}
