//! Lock-free metric primitives used by every runtime component.
//!
//! These are intentionally minimal — counters, gauges and a fixed-layout
//! log-bucketed histogram for latency percentiles. Aggregation, naming and
//! scraping live in the [`crate::registry`] module; components just hold
//! `Arc`s to these primitives and bump them on the hot path.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero, wrapped for sharing.
    pub fn shared() -> Arc<Counter> {
        Arc::new(Counter::default())
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions (stored as `u64`, saturating
/// at zero on decrement — resident-bytes style semantics).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero, wrapped for sharing.
    pub fn shared() -> Arc<Gauge> {
        Arc::new(Gauge::default())
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: value `v` lands in bucket
/// `min(63, bit_length(v))`, i.e. bucket `i` covers `[2^(i−1), 2^i)`.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (latencies in ms or µs).
///
/// Recording is one atomic add; percentile queries interpolate within the
/// winning bucket, giving ≤ 2× relative error — plenty for the latency
/// plots the evaluation needs, at zero coordination cost.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh histogram, wrapped for sharing.
    pub fn shared() -> Arc<Histogram> {
        Arc::new(Histogram::default())
    }

    /// Bucket index for a sample.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the per-bucket counts. Bucket `i` holds the
    /// samples whose bit length is `i` — values in `[2^(i−1), 2^i)` — so
    /// bucket 0 holds only zeros and the last bucket is open-ended.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper bound of bucket `i` for `le="…"`-style rendering,
    /// or `None` for the open-ended last bucket (`+Inf`).
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        if i >= BUCKETS - 1 {
            None
        } else {
            Some((1u64 << i) - 1)
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the winning log bucket. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within [lo, hi) of this bucket, clamped to
                // the largest recorded sample: a bucket's upper edge must
                // never report a percentile above the true maximum.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << i };
                let frac = (target - seen) as f64 / c as f64;
                return (lo + ((hi - lo) as f64 * frac) as u64).min(self.max());
            }
            seen += c;
        }
        self.max()
    }

    /// Snapshot the common percentiles for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// A windowed event-rate meter over virtual or wall time: counts events
/// into fixed one-second buckets and reports the mean rate over the last
/// `window_secs` full buckets.
///
/// The thesis assigns routers the job of "maintaining statistics related
/// to input data, such as rate of events per second"; this is that
/// statistic, timebase-agnostic so the simulator and the live runtime
/// share it. Not thread-safe by design (each router owns one).
#[derive(Debug, Clone)]
pub struct RateMeter {
    /// Ring of per-second counts; index = second % len.
    buckets: Vec<u64>,
    /// The absolute second each bucket currently represents.
    seconds: Vec<u64>,
    window_secs: usize,
}

impl RateMeter {
    /// A meter averaging over the last `window_secs` seconds (≥ 1).
    pub fn new(window_secs: usize) -> RateMeter {
        let n = window_secs.max(1);
        RateMeter { buckets: vec![0; n + 1], seconds: vec![u64::MAX; n + 1], window_secs: n }
    }

    /// Record one event at time `now_ms`.
    pub fn record(&mut self, now_ms: u64) {
        let sec = now_ms / 1_000;
        let i = (sec % self.buckets.len() as u64) as usize;
        if self.seconds[i] != sec {
            self.seconds[i] = sec;
            self.buckets[i] = 0;
        }
        self.buckets[i] += 1;
    }

    /// Mean events/second over the window ending at `now_ms` (the bucket
    /// containing `now_ms` is excluded — it is still filling).
    pub fn rate_per_sec(&self, now_ms: u64) -> f64 {
        let current = now_ms / 1_000;
        let lo = current.saturating_sub(self.window_secs as u64);
        let mut total = 0u64;
        for (i, &sec) in self.seconds.iter().enumerate() {
            if sec >= lo && sec < current {
                total += self.buckets[i];
            }
        }
        let span = (current - lo).max(1);
        total as f64 / span as f64
    }
}

/// The final scrape-before-teardown both harnesses take: scrape
/// `registry` at `at` and append it to the run's sampled series. This is
/// the single entry point that hands the perf analyzer, the SLO engine
/// and the stall watchdog the same finalized series — the simulator calls
/// it in place of a trailing forced sample, the live pipeline in place of
/// its ad-hoc pre-teardown scrape (which must happen *before* queues are
/// deleted, or the terminal reading loses every per-queue series).
pub fn finalize_scrape_series(
    registry: &crate::registry::MetricsRegistry,
    at: crate::time::Ts,
    mut series: Vec<crate::registry::RegistrySnapshot>,
) -> Vec<crate::registry::RegistrySnapshot> {
    series.push(registry.scrape(at));
    series
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median (approximate).
    pub p50: u64,
    /// 95th percentile (approximate).
    pub p95: u64,
    /// 99th percentile (approximate).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let g = Gauge::default();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_mean_max_exact() {
        let h = Histogram::default();
        for v in [1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 22.0);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn histogram_quantiles_within_2x() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((495..=1024).contains(&p99), "p99={p99}");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // 1000 lands in bucket [512, 1024); uninterpolated upper-edge
        // arithmetic used to report p99 = 1024 > max.
        assert!(h.quantile(0.99) <= h.max(), "p99={} max={}", h.quantile(0.99), h.max());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn bucket_counts_partition_the_samples() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 100] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(counts[0], 1, "zero lands in bucket 0");
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[7], 1, "100 has bit length 7");
        assert_eq!(Histogram::bucket_upper_bound(0), Some(0));
        assert_eq!(Histogram::bucket_upper_bound(2), Some(3));
        assert_eq!(Histogram::bucket_upper_bound(63), None, "last bucket is +Inf");
    }

    #[test]
    fn rate_meter_reports_steady_rate() {
        let mut m = RateMeter::new(5);
        // 100 events/second for 6 seconds.
        for ms in 0..6_000u64 {
            if ms % 10 == 0 {
                m.record(ms);
            }
        }
        let r = m.rate_per_sec(6_000);
        assert!((r - 100.0).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn rate_meter_excludes_the_filling_bucket_and_ages_out() {
        let mut m = RateMeter::new(2);
        for _ in 0..50 {
            m.record(500); // 50 events in second 0
        }
        // Mid-second: second 0 is still filling, rate sees nothing.
        assert_eq!(m.rate_per_sec(900), 0.0);
        // One second later, second 0 is complete: 50/2 window mean.
        assert_eq!(m.rate_per_sec(2_000), 25.0);
        // Far in the future the events have aged out of the window.
        assert_eq!(m.rate_per_sec(60_000), 0.0);
    }

    #[test]
    fn rate_meter_handles_bursts_and_gaps() {
        let mut m = RateMeter::new(4);
        for _ in 0..400 {
            m.record(1_500);
        }
        // Burst second (1) complete; window [1..5): 400 events / 4 s.
        assert_eq!(m.rate_per_sec(5_000), 100.0);
        // Ring reuse: a new burst 10 s later fully replaces the old one.
        for _ in 0..80 {
            m.record(15_200);
        }
        assert_eq!(m.rate_per_sec(17_000), 20.0);
    }

    #[test]
    fn snapshot_carries_all_fields() {
        let h = Histogram::default();
        h.record(8);
        h.record(16);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 16);
        assert!(s.p50 >= 4 && s.p50 <= 16);
    }
}
