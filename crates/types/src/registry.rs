//! The labeled metrics registry — one scrape surface for every component.
//!
//! Components register [`Counter`]/[`Gauge`]/[`Histogram`] handles under a
//! `name{label="value",…}` key (e.g. `bistream_joiner_results_total{joiner="R3"}`)
//! and keep bumping the returned `Arc` on the hot path; the registry itself
//! is only touched at registration and scrape time, so instrumentation adds
//! no coordination to per-tuple work.
//!
//! A scrape is a point-in-time read of every registered metric, sorted by
//! `(name, labels)` so output is stable across runs; [`MetricsRegistry::prometheus_text`]
//! renders the scrape in the Prometheus text exposition format (with label
//! values properly escaped). [`Sampler`] turns periodic scrapes into a
//! time-series the experiment harness can dump, and [`Observability`]
//! bundles a registry with an event journal as the single handle the
//! engines thread through their components.

use crate::journal::EventJournal;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::time::Ts;
use crate::trace::Tracer;
use parking_lot::RwLock;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A metric's identity: its name plus a sorted list of `label=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct MetricKey {
    /// Metric family name, e.g. `bistream_router_copies_total`.
    pub name: String,
    /// Label pairs, kept sorted by label name for key stability.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and unordered label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// `true` if any label pair equals `(label, value)`.
    pub fn has_label(&self, label: &str, value: &str) -> bool {
        self.labels.iter().any(|(k, v)| k == label && v == value)
    }

    /// Render as `name` or `name{k="v",…}` with escaped label values.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::with_capacity(self.name.len() + 16 * self.labels.len());
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
        out
    }
}

/// Escape a label value for the Prometheus text format: backslash, double
/// quote and newline must be escaped (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One registered metric handle.
#[derive(Debug, Clone)]
pub(crate) enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A scraped value — the point-in-time reading of one handle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram summary (count/mean/quantiles/max).
    Histogram(HistogramSnapshot),
}

/// One `(key, value)` pair in a scrape.
///
/// The key is an `Arc` shared with the registry's own map, so scraping a
/// series costs no string allocation — only the value is read fresh.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricSample {
    /// The metric's identity (shared with the registry).
    pub key: Arc<MetricKey>,
    /// Its value at scrape time.
    pub value: MetricValue,
}

/// A full scrape stamped with the (virtual or wall) time it was taken.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RegistrySnapshot {
    /// Scrape time in ms.
    pub at: Ts,
    /// Every registered metric, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl RegistrySnapshot {
    /// Look up a sample by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let key = MetricKey::new(name, labels);
        self.samples.iter().find(|s| *s.key == key).map(|s| &s.value)
    }

    /// Counter value for `(name, labels)`, or `None` if absent or not a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value for `(name, labels)`, or `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

/// The shared registry. Cloning is cheap (an `Arc` bump) and all clones
/// view the same metric set, so one registry can be threaded through
/// routers, joiners, the broker and the cluster simulation.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<BTreeMap<Arc<MetricKey>, Handle>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create a counter under `name{labels}`. If the key exists with
    /// a different metric type the existing entry is replaced.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.write();
        if let Some(Handle::Counter(c)) = map.get(&key) {
            return Arc::clone(c);
        }
        let c = Counter::shared();
        map.insert(Arc::new(key), Handle::Counter(Arc::clone(&c)));
        c
    }

    /// Get-or-create a gauge under `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.write();
        if let Some(Handle::Gauge(g)) = map.get(&key) {
            return Arc::clone(g);
        }
        let g = Gauge::shared();
        map.insert(Arc::new(key), Handle::Gauge(Arc::clone(&g)));
        g
    }

    /// Get-or-create a histogram under `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.write();
        if let Some(Handle::Histogram(h)) = map.get(&key) {
            return Arc::clone(h);
        }
        let h = Histogram::shared();
        map.insert(Arc::new(key), Handle::Histogram(Arc::clone(&h)));
        h
    }

    /// Register an *existing* counter handle (components like the broker's
    /// queues or `ResourceMeter` already own their primitives).
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], c: &Arc<Counter>) {
        self.inner
            .write()
            .insert(Arc::new(MetricKey::new(name, labels)), Handle::Counter(Arc::clone(c)));
    }

    /// Register an existing gauge handle.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], g: &Arc<Gauge>) {
        self.inner
            .write()
            .insert(Arc::new(MetricKey::new(name, labels)), Handle::Gauge(Arc::clone(g)));
    }

    /// Register an existing histogram handle.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], h: &Arc<Histogram>) {
        self.inner
            .write()
            .insert(Arc::new(MetricKey::new(name, labels)), Handle::Histogram(Arc::clone(h)));
    }

    /// Drop every metric carrying `label="value"` — used when a unit is
    /// retired (drained joiner, removed router) so stale series don't
    /// linger in scrapes.
    pub fn unregister_labeled(&self, label: &str, value: &str) -> usize {
        let mut map = self.inner.write();
        let doomed: Vec<Arc<MetricKey>> =
            map.keys().filter(|k| k.has_label(label, value)).cloned().collect();
        for k in &doomed {
            map.remove(k);
        }
        doomed.len()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Point-in-time read of every registered metric, stamped `at`.
    /// Samples come out sorted by `(name, labels)` (the map order), so
    /// scrape output is stable run-to-run.
    pub fn scrape(&self, at: Ts) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        self.scrape_into(at, &mut snap);
        snap
    }

    /// Scrape into a caller-owned snapshot, reusing its `samples` buffer.
    ///
    /// Keys are `Arc`s shared with the registry's map, so a steady-state
    /// scrape loop allocates nothing per series once the buffer has grown
    /// to the registry's size — the fix for per-scrape allocation churn on
    /// large registries (see `metrics_bench`).
    pub fn scrape_into(&self, at: Ts, snap: &mut RegistrySnapshot) {
        snap.at = at;
        snap.samples.clear();
        let map = self.inner.read();
        snap.samples.reserve(map.len());
        for (key, handle) in map.iter() {
            snap.samples.push(MetricSample {
                key: Arc::clone(key),
                value: match handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            });
        }
    }

    /// Render every metric in the Prometheus text exposition format.
    ///
    /// Delegates to [`crate::telemetry`], the single exposition-format
    /// emitter: counters and gauges become single sample lines; histograms
    /// are rendered summary-style with `quantile` labels plus cumulative
    /// `_bucket` lines and `_count`/`_sum`/`_max` series.
    pub fn prometheus_text(&self, at: Ts) -> String {
        crate::telemetry::prometheus_text(self, at)
    }

    /// Visit every registered handle in `(name, labels)` order. Scrape-time
    /// only: holds the registry read lock for the duration of the walk.
    pub(crate) fn for_each_handle(&self, mut f: impl FnMut(&MetricKey, &Handle)) {
        let map = self.inner.read();
        for (key, handle) in map.iter() {
            f(key, handle);
        }
    }
}

/// Periodically snapshots a registry into a time-series.
///
/// Both harnesses drive it from their own clock: the simulator calls
/// [`Sampler::maybe_sample`] on its sample ticks (virtual ms), the live
/// pipeline from its wall clock. The resulting series is what
/// `experiments --metrics-out` dumps.
#[derive(Debug, Clone)]
pub struct Sampler {
    registry: MetricsRegistry,
    interval_ms: Ts,
    next_due: Ts,
    series: Vec<RegistrySnapshot>,
}

impl Sampler {
    /// A sampler scraping `registry` every `interval_ms` (≥ 1) ms.
    pub fn new(registry: MetricsRegistry, interval_ms: Ts) -> Sampler {
        Sampler { registry, interval_ms: interval_ms.max(1), next_due: 0, series: Vec::new() }
    }

    /// Scrape if `now` has reached the next due time; returns whether a
    /// sample was taken. Catch-up after a long gap takes one sample, not
    /// one per missed interval.
    pub fn maybe_sample(&mut self, now: Ts) -> bool {
        if now < self.next_due {
            return false;
        }
        self.force_sample(now);
        true
    }

    /// Scrape unconditionally at `now`.
    pub fn force_sample(&mut self, now: Ts) {
        self.series.push(self.registry.scrape(now));
        self.next_due = now + self.interval_ms;
    }

    /// The sampling interval in ms.
    pub fn interval_ms(&self) -> Ts {
        self.interval_ms
    }

    /// The series collected so far.
    pub fn series(&self) -> &[RegistrySnapshot] {
        &self.series
    }

    /// Consume the sampler, yielding its series.
    pub fn into_series(self) -> Vec<RegistrySnapshot> {
        self.series
    }
}

/// The bundle every engine threads through its components: one metrics
/// registry, one event journal and one per-tuple tracer. Cloning shares
/// all three.
///
/// Assembly wires the pieces together: the journal's eviction count is
/// registered as the `bistream_journal_dropped_total` gauge (so silent
/// drops under load are visible in scrapes) and an enabled tracer gets the
/// registry attached so completed traces feed the per-hop latency
/// histograms.
#[derive(Debug, Clone)]
pub struct Observability {
    /// The shared labeled-metrics registry.
    pub registry: MetricsRegistry,
    /// The shared bounded event journal.
    pub journal: EventJournal,
    /// The shared per-tuple tracer (disabled unless built through
    /// [`Observability::with_tracing`]).
    pub tracer: Tracer,
}

impl Default for Observability {
    fn default() -> Self {
        Observability::assemble(EventJournal::default(), Tracer::disabled())
    }
}

impl Observability {
    /// A fresh registry plus a journal with the default capacity; tracing
    /// disabled.
    pub fn new() -> Observability {
        Observability::default()
    }

    /// A fresh registry plus a journal holding at most `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Observability {
        Observability::assemble(EventJournal::with_capacity(capacity), Tracer::disabled())
    }

    /// A fresh bundle with per-tuple tracing enabled, sampling 1 in
    /// `one_in` tuples by sequence number.
    pub fn with_tracing(one_in: u64) -> Observability {
        Observability::assemble(EventJournal::default(), Tracer::new(one_in))
    }

    fn assemble(journal: EventJournal, tracer: Tracer) -> Observability {
        let registry = MetricsRegistry::new();
        registry.register_gauge(
            crate::metric_names::JOURNAL_DROPPED_TOTAL,
            &[],
            &journal.dropped_gauge(),
        );
        tracer.attach_registry(&registry);
        Observability { registry, journal, tracer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared_and_scraped() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tuples_total", &[("joiner", "R0")]);
        let b = reg.counter("tuples_total", &[("joiner", "R0")]);
        a.add(3);
        b.inc();
        assert_eq!(reg.len(), 1);
        let snap = reg.scrape(7);
        assert_eq!(snap.at, 7);
        assert_eq!(snap.counter("tuples_total", &[("joiner", "R0")]), Some(4));
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.scrape(0).counter("x", &[("a", "1"), ("b", "2")]), Some(2));
    }

    #[test]
    fn scrape_is_sorted_by_key() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta", &[]);
        reg.gauge("alpha", &[("k", "2")]);
        reg.gauge("alpha", &[("k", "1")]);
        let names: Vec<String> = reg.scrape(0).samples.iter().map(|s| s.key.render()).collect();
        assert_eq!(names, vec!["alpha{k=\"1\"}", "alpha{k=\"2\"}", "zeta"]);
    }

    #[test]
    fn unregister_by_label_drops_all_series_of_a_unit() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("joiner", "R0")]);
        reg.gauge("b", &[("joiner", "R0")]);
        reg.counter("a_total", &[("joiner", "R1")]);
        assert_eq!(reg.unregister_labeled("joiner", "R0"), 2);
        assert_eq!(reg.len(), 1);
        assert!(reg.scrape(0).counter("a_total", &[("joiner", "R1")]).is_some());
    }

    #[test]
    fn prometheus_text_escapes_label_values() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("engine", "we\"ird\\lab\nel")]).inc();
        let text = reg.prometheus_text(0);
        assert!(text.contains(r#"engine="we\"ird\\lab\nel""#), "got: {text}");
        // The literal newline must not survive inside the label block.
        assert!(!text.lines().any(|l| l.starts_with("el\"")), "got: {text}");
    }

    #[test]
    fn prometheus_text_renders_histograms_as_summaries() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ms", &[("joiner", "S1")]);
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let text = reg.prometheus_text(0);
        assert!(text.contains("# TYPE lat_ms summary"));
        assert!(text.contains("lat_ms{joiner=\"S1\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_ms_count{joiner=\"S1\"} 4"));
        assert!(text.contains("lat_ms_sum{joiner=\"S1\"} 10"));
        assert!(text.contains("lat_ms_max{joiner=\"S1\"} 4"));
    }

    #[test]
    fn sampler_respects_interval() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ticks_total", &[]);
        let mut sampler = Sampler::new(reg, 100);
        assert!(sampler.maybe_sample(0));
        c.inc();
        assert!(!sampler.maybe_sample(50));
        assert!(sampler.maybe_sample(100));
        assert!(!sampler.maybe_sample(150));
        let series = sampler.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].counter("ticks_total", &[]), Some(0));
        assert_eq!(series[1].counter("ticks_total", &[]), Some(1));
    }
}
