//! Dependency-free JSON codec shared by the artifact formats.
//!
//! `types` deliberately avoids `serde_json`, so the replayable artifacts it
//! emits — chaos plans ([`crate::fault`]) and flight-recorder breach
//! bundles ([`crate::recorder`]) — share this hand-rolled value type and
//! parser instead. It is not a general-purpose JSON implementation: it
//! covers objects, arrays, strings, non-negative integers and finite
//! floats, which is exactly what the codecs emit, and it rejects anything
//! else so a corrupt artifact is an `Err`, never a panic.
//!
//! Byte stability contract: [`fmt_f64`] renders every finite `f64` in the
//! one canonical form that `str::parse::<f64>` maps back to the same bits
//! (Rust's shortest-round-trip `Display`, with `.0` appended to integral
//! values so the token re-parses as a float). Emit → parse → emit is the
//! identity on all artifact output.

use crate::error::{Error, Result};

/// Escape and double-quote a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Canonical float rendering: shortest round-trip `Display`, forced to
/// carry a `.` or exponent so the token parses back as [`Json::Float`].
/// Non-finite values have no JSON representation and render as `0.0`
/// (callers sanitize before emitting; this is the safety net).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_owned();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Minimal JSON value for parsing our own artifact output. Not a
/// general-purpose parser: enough for objects, arrays, strings,
/// non-negative integers and finite floats, which is all the codecs emit.
pub enum Json {
    /// A non-negative integer token.
    Num(u64),
    /// A finite float token (or a negative number).
    Float(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array of values, in source order.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (duplicates kept, first wins).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing bytes are an error.
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::Fault(format!("trailing bytes at offset {pos}")));
        }
        Ok(v)
    }

    /// Look up `name` in an object; `Err` on missing field or non-object.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::Fault(format!("missing field `{name}`"))),
            _ => Err(Error::Fault(format!("field `{name}` of non-object"))),
        }
    }

    /// Object field as a `u64`; `Err` if missing or not an integer.
    pub fn field_u64(&self, name: &str) -> Result<u64> {
        match self.field(name)? {
            Json::Num(n) => Ok(*n),
            _ => Err(Error::Fault(format!("field `{name}` is not a number"))),
        }
    }

    /// Object field as an `f64` (integers widen); `Err` otherwise.
    pub fn field_f64(&self, name: &str) -> Result<f64> {
        match self.field(name)? {
            Json::Float(f) => Ok(*f),
            Json::Num(n) => Ok(*n as f64),
            _ => Err(Error::Fault(format!("field `{name}` is not a number"))),
        }
    }

    /// Object field as a string slice; `Err` otherwise.
    pub fn field_str<'a>(&'a self, name: &str) -> Result<&'a str> {
        match self.field(name)? {
            Json::Str(s) => Ok(s.as_str()),
            _ => Err(Error::Fault(format!("field `{name}` is not a string"))),
        }
    }

    /// This value as an array slice; `Err` for any other shape.
    pub fn as_array(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(xs) => Ok(xs),
            _ => Err(Error::Fault("expected array".to_owned())),
        }
    }

    /// This value as a string slice; `Err` for any other shape.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s.as_str()),
            _ => Err(Error::Fault("expected string".to_owned())),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::Fault(format!("expected `{}` at offset {pos}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(Error::Fault(format!("bad object at offset {pos}"))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(Error::Fault(format!("bad array at offset {pos}"))),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            let mut is_float = false;
            while *pos < b.len() {
                match b[*pos] {
                    c if c.is_ascii_digit() => *pos += 1,
                    b'.' | b'e' | b'E' => {
                        is_float = true;
                        *pos += 1;
                    }
                    // Exponent sign: only legal right after `e`/`E`, and by
                    // then `is_float` is set.
                    b'+' | b'-' if is_float && matches!(b[*pos - 1], b'e' | b'E') => *pos += 1,
                    _ => break,
                }
            }
            let text =
                std::str::from_utf8(&b[start..*pos]).map_err(|e| Error::Fault(e.to_string()))?;
            if !is_float && !text.starts_with('-') {
                return text
                    .parse::<u64>()
                    .map(Json::Num)
                    .map_err(|e| Error::Fault(format!("bad number `{text}`: {e}")));
            }
            let f = text
                .parse::<f64>()
                .map_err(|e| Error::Fault(format!("bad number `{text}`: {e}")))?;
            if !f.is_finite() {
                return Err(Error::Fault(format!("non-finite number `{text}`")));
            }
            Ok(Json::Float(f))
        }
        _ => Err(Error::Fault(format!("unexpected byte at offset {pos}"))),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::Fault("truncated \\u escape".to_owned()))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|e| Error::Fault(e.to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| Error::Fault(format!("bad \\u escape: {e}")))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::Fault("bad codepoint".to_owned()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::Fault(format!("bad escape at offset {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|e| Error::Fault(e.to_string()))?;
                let c = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(Error::Fault("unterminated string".to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_through_canonical_rendering() {
        for v in [0.0, 1.0, 0.5, 123.456, -7.25, 1e-9, 3.141592653589793, 1e300] {
            let text = fmt_f64(v);
            match Json::parse(&text).expect("parse") {
                Json::Float(back) => {
                    assert_eq!(back, v, "{text}");
                    assert_eq!(fmt_f64(back), text, "re-render must be stable");
                }
                _ => panic!("`{text}` did not parse as a float"),
            }
        }
        // Integral floats carry `.0` so the token stays a float.
        assert_eq!(fmt_f64(4.0), "4.0");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn integers_stay_integers() {
        match Json::parse("42").expect("parse") {
            Json::Num(n) => assert_eq!(n, 42),
            _ => panic!("42 must parse as an integer"),
        }
        let obj = Json::parse("{\"a\": 2, \"b\": 2.5}").expect("parse");
        assert_eq!(obj.field_u64("a").expect("a"), 2);
        assert!((obj.field_f64("b").expect("b") - 2.5).abs() < 1e-12);
        // `field_f64` widens integers, `field_u64` rejects floats.
        assert!((obj.field_f64("a").expect("a") - 2.0).abs() < 1e-12);
        assert!(obj.field_u64("b").is_err());
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        for bad in ["-", "1.2.3", "1e", "--4", "1e999"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
