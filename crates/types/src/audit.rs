//! Runtime invariant auditor: the paper's correctness guarantees, checked
//! mechanically while a harness runs.
//!
//! The ordering protocol is honoured by convention across routers, broker
//! queues, reorder buffers and the chained index; this module turns each
//! convention into a hook that detects the moment it is broken:
//!
//! * **Sequence density** — routers draw from one shared counter, so the
//!   multiset of emitted sequence numbers must be exactly `1..=max`, each
//!   assigned once, strictly increasing per router.
//! * **Punctuation monotonicity** — a router's punctuations never regress
//!   and never undercut a sequence number it already emitted.
//! * **Pairwise FIFO (Definition 8)** — on every router→joiner channel,
//!   data sequence numbers arrive strictly increasing and never at or
//!   below the channel's last punctuation barrier.
//! * **Order-consistent release (Definition 7)** — every key a reorder
//!   buffer releases is ≥ all keys it previously released and ≤ the
//!   watermark in force, and the watermark itself never regresses.
//! * **Safe discarding (Theorem 1)** — the chained index never discards a
//!   non-empty sub-index whose `max_ts` is still inside the window of a
//!   possible future arrival.
//! * **Queue conservation** — a broker queue never delivers more messages
//!   than were published to it.
//! * **Output oracle** (opt-in, O(n²)) — the final join output is a
//!   permutation-free multiset match of a naive nested-loop join over the
//!   observed inputs.
//!
//! A [`Violation`] carries the offending event chain: the recent history
//! of the stream that misbehaved, plus — when an
//! [`EventJournal`](crate::journal::EventJournal) is attached — a snapshot
//! of the journal tail, and the violation itself is recorded into the
//! journal as [`EventKind::InvariantViolation`].
//!
//! The auditor is cheap (a mutex and a few maps) but not free; harnesses
//! wire it behind `cfg(debug_assertions)` or an explicit opt-in so release
//! benchmarks pay nothing.

use crate::journal::{EventJournal, EventKind};
use crate::punct::{RouterId, SeqNo};
use crate::time::Ts;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which invariant a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Router sequence numbers: dense, unique, strictly increasing.
    SeqDensity,
    /// Router punctuations: monotone, never undercut emitted data.
    PunctMonotonic,
    /// Per-channel FIFO delivery (Definition 8).
    ChannelFifo,
    /// Reorder-buffer release order and watermark bound (Definition 7).
    ReleaseOrder,
    /// Sub-index discard safety (Theorem 1).
    TheoremOne,
    /// Broker queue conservation: deliveries never exceed publishes.
    QueueConservation,
    /// Output equals the naive nested-loop oracle.
    OutputOracle,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::SeqDensity => "seq-density",
            Rule::PunctMonotonic => "punct-monotonic",
            Rule::ChannelFifo => "channel-fifo",
            Rule::ReleaseOrder => "release-order",
            Rule::TheoremOne => "theorem-1",
            Rule::QueueConservation => "queue-conservation",
            Rule::OutputOracle => "output-oracle",
        };
        f.write_str(s)
    }
}

/// One detected invariant violation, with the event chain that led to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that was broken.
    pub rule: Rule,
    /// Human-readable description of the broken check.
    pub message: String,
    /// Recent events of the offending stream (router, channel, buffer or
    /// queue), oldest first, ending with the violating event.
    pub chain: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.rule, self.message)?;
        for ev in &self.chain {
            writeln!(f, "    ↳ {ev}")?;
        }
        Ok(())
    }
}

/// Bounded per-stream history ring used to build violation chains.
#[derive(Debug, Default, Clone)]
struct Chain {
    ring: VecDeque<String>,
}

const CHAIN_CAPACITY: usize = 24;

impl Chain {
    fn push(&mut self, event: String) {
        if self.ring.len() == CHAIN_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    fn snapshot(&self) -> Vec<String> {
        self.ring.iter().cloned().collect()
    }
}

#[derive(Debug, Default)]
struct RouterState {
    last_seq: Option<SeqNo>,
    last_punct: Option<SeqNo>,
    chain: Chain,
}

#[derive(Debug, Default)]
struct ChannelState {
    last_seq: Option<SeqNo>,
    last_punct: Option<SeqNo>,
    chain: Chain,
}

#[derive(Debug, Default)]
struct ReleaseState {
    last_key: Option<(SeqNo, RouterId)>,
    last_watermark: Option<SeqNo>,
    chain: Chain,
}

#[derive(Debug, Default)]
struct QueueState {
    enqueued: u64,
    dequeued: u64,
}

/// One observed input tuple for the oracle: `(ts, join-key rendering,
/// canonical identity rendering)`.
type OracleInput = (Ts, String, String);

#[derive(Debug)]
struct OracleState {
    /// Pairwise window, `None` for full-history.
    window: Option<Ts>,
    r_inputs: Vec<OracleInput>,
    s_inputs: Vec<OracleInput>,
    /// Each output as `"<r identity> ⋈ <s identity>"`.
    outputs: Vec<String>,
}

#[derive(Debug, Default)]
struct AuditorState {
    routers: BTreeMap<RouterId, RouterState>,
    seen_seqs: BTreeSet<SeqNo>,
    max_seq: SeqNo,
    channels: BTreeMap<(String, RouterId), ChannelState>,
    releases: BTreeMap<String, ReleaseState>,
    queues: BTreeMap<String, QueueState>,
    oracle: Option<OracleState>,
    violations: Vec<Violation>,
    /// Total violations detected, including ones dropped past the cap.
    total_violations: u64,
    journal: Option<EventJournal>,
    /// Latest harness time observed via [`Auditor::set_now`]; stamps
    /// journal records for violations.
    now: Ts,
}

/// Keep at most this many violations; the counter keeps counting past it.
const MAX_STORED_VIOLATIONS: usize = 64;

impl AuditorState {
    fn violate(&mut self, rule: Rule, message: String, mut chain: Vec<String>) {
        self.total_violations += 1;
        if let Some(journal) = &self.journal {
            // Attach the journal tail as extra context, then record the
            // violation itself so a drained journal shows it in sequence.
            for ev in journal.snapshot().iter().rev().take(8).rev() {
                chain.push(format!("journal: {}", ev.to_json()));
            }
            journal.record(
                self.now,
                EventKind::InvariantViolation { rule: rule.to_string(), detail: message.clone() },
            );
        }
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation { rule, message, chain });
        }
    }
}

/// Shared, thread-safe invariant auditor. Cloning shares the state.
///
/// All hooks are safe to call from any thread; detection is immediate,
/// except the density and oracle checks which require [`Auditor::finish`]
/// once the stream is complete.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    inner: Arc<Mutex<AuditorState>>,
}

impl Auditor {
    /// A fresh auditor with every check armed and no oracle.
    pub fn new() -> Auditor {
        Auditor::default()
    }

    /// An auditor only in debug builds — the standard way for harnesses to
    /// self-arm without slowing down release benchmarks.
    pub fn new_if_debug() -> Option<Auditor> {
        if cfg!(debug_assertions) {
            Some(Auditor::new())
        } else {
            None
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AuditorState> {
        // A panicking hook cannot leave the maps inconsistent in a way
        // that matters more than the panic itself; recover the guard.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attach the harness's event journal: violations are recorded into it
    /// and carry a snapshot of its tail as context.
    pub fn attach_journal(&self, journal: EventJournal) {
        self.lock().journal = Some(journal);
    }

    /// Advance the auditor's notion of harness time (stamps journal
    /// records for violations). Never regresses.
    pub fn set_now(&self, now: Ts) {
        let mut st = self.lock();
        if now > st.now {
            st.now = now;
        }
    }

    // ------------------------------------------------------------ routers

    /// A router assigned sequence number `seq` to a freshly routed tuple.
    pub fn router_emit(&self, router: RouterId, seq: SeqNo) {
        let mut st = self.lock();
        let state = st.routers.entry(router).or_default();
        state.chain.push(format!("router {router} emit seq {seq}"));
        let chain = state.chain.snapshot();
        let last_seq = state.last_seq;
        let last_punct = state.last_punct;
        state.last_seq = Some(last_seq.map_or(seq, |l| l.max(seq)));
        if seq == 0 {
            st.violate(Rule::SeqDensity, format!("router {router} emitted seq 0"), chain);
            return;
        }
        if let Some(last) = last_seq {
            if seq <= last {
                st.violate(
                    Rule::SeqDensity,
                    format!("router {router} emitted seq {seq} after {last} (not increasing)"),
                    chain,
                );
                return;
            }
        }
        if let Some(p) = last_punct {
            if seq <= p {
                st.violate(
                    Rule::PunctMonotonic,
                    format!("router {router} emitted seq {seq} at or below its punctuation {p}"),
                    chain,
                );
                return;
            }
        }
        if !st.seen_seqs.insert(seq) {
            st.violate(Rule::SeqDensity, format!("seq {seq} assigned twice across routers"), chain);
            return;
        }
        st.max_seq = st.max_seq.max(seq);
    }

    /// A router emitted a punctuation promising no future data ≤ `seq`.
    pub fn router_punct(&self, router: RouterId, seq: SeqNo) {
        let mut st = self.lock();
        let state = st.routers.entry(router).or_default();
        state.chain.push(format!("router {router} punct seq {seq}"));
        let chain = state.chain.snapshot();
        let last_seq = state.last_seq;
        let last_punct = state.last_punct;
        state.last_punct = Some(last_punct.map_or(seq, |l| l.max(seq)));
        if let Some(p) = last_punct {
            if seq < p {
                st.violate(
                    Rule::PunctMonotonic,
                    format!("router {router} punctuation regressed {p} -> {seq}"),
                    chain,
                );
                return;
            }
        }
        if let Some(d) = last_seq {
            if seq < d {
                st.violate(
                    Rule::PunctMonotonic,
                    format!("router {router} punctuated {seq} below its emitted seq {d}"),
                    chain,
                );
            }
        }
    }

    // ----------------------------------------------------------- channels

    /// A joiner received a data message on its channel from `router`.
    pub fn channel_recv(&self, joiner: &str, router: RouterId, seq: SeqNo) {
        let mut st = self.lock();
        let state = st.channels.entry((joiner.to_string(), router)).or_default();
        state.chain.push(format!("{joiner} <- router {router} data seq {seq}"));
        let chain = state.chain.snapshot();
        let last_seq = state.last_seq;
        let last_punct = state.last_punct;
        state.last_seq = Some(last_seq.map_or(seq, |l| l.max(seq)));
        if let Some(last) = last_seq {
            if seq <= last {
                st.violate(
                    Rule::ChannelFifo,
                    format!(
                        "channel router {router} -> {joiner}: data seq {seq} after {last} \
                         (FIFO broken)"
                    ),
                    chain,
                );
                return;
            }
        }
        if let Some(p) = last_punct {
            if seq <= p {
                st.violate(
                    Rule::ChannelFifo,
                    format!(
                        "channel router {router} -> {joiner}: data seq {seq} arrived after \
                         punctuation {p}"
                    ),
                    chain,
                );
            }
        }
    }

    /// A joiner received a punctuation on its channel from `router`.
    pub fn channel_punct(&self, joiner: &str, router: RouterId, seq: SeqNo) {
        let mut st = self.lock();
        let state = st.channels.entry((joiner.to_string(), router)).or_default();
        state.chain.push(format!("{joiner} <- router {router} punct seq {seq}"));
        let chain = state.chain.snapshot();
        let last_seq = state.last_seq;
        let last_punct = state.last_punct;
        state.last_punct = Some(last_punct.map_or(seq, |l| l.max(seq)));
        if let Some(p) = last_punct {
            if seq < p {
                st.violate(
                    Rule::ChannelFifo,
                    format!(
                        "channel router {router} -> {joiner}: punctuation regressed {p} -> {seq}"
                    ),
                    chain,
                );
                return;
            }
        }
        if let Some(d) = last_seq {
            if seq < d {
                st.violate(
                    Rule::ChannelFifo,
                    format!(
                        "channel router {router} -> {joiner}: punctuation {seq} undercuts \
                         delivered data seq {d}"
                    ),
                    chain,
                );
            }
        }
    }

    /// Joiner `joiner` crashed and restarted as a fresh incarnation.
    ///
    /// Its channels and release history restart from scratch: routers will
    /// retransmit un-acknowledged frames (so old sequence numbers lawfully
    /// reappear on the wire) and the rebuilt reorder buffer re-releases
    /// from its restored frontier. Without this hook both would read as
    /// FIFO / release-order violations; with it the auditor treats the new
    /// incarnation's channels as brand new, exactly like a joiner added by
    /// a scaling operation. Router-side state (sequence density,
    /// punctuation monotonicity) and queue conservation deliberately
    /// survive the restart — crashes must not excuse router bugs.
    pub fn unit_restarted(&self, joiner: &str) {
        let mut st = self.lock();
        st.channels.retain(|(j, _), _| j != joiner);
        st.releases.remove(joiner);
    }

    // ------------------------------------------------------------ release

    /// A reorder buffer released `(seq, router)` under `watermark`.
    ///
    /// Besides order/watermark monotonicity, the release is cross-checked
    /// against the auditor's own channel state: releasing `(seq, router)`
    /// is only lawful once `router`'s punctuation on this joiner's channel
    /// has reached `seq` (Definition 7 — the watermark is a minimum over
    /// router frontiers, so each frontier individually bounds it). A buffer
    /// whose watermark computation is corrupt passes its own
    /// `seq <= watermark` test but fails this one. The cross-check is
    /// skipped for channels the harness never reported, so unit tests may
    /// drive `release` standalone.
    pub fn release(&self, joiner: &str, router: RouterId, seq: SeqNo, watermark: SeqNo) {
        let mut st = self.lock();
        let channel_punct = st.channels.get(&(joiner.to_string(), router)).map(|c| c.last_punct);
        let state = st.releases.entry(joiner.to_string()).or_default();
        state.chain.push(format!(
            "{joiner} released (seq {seq}, router {router}) @ watermark {watermark}"
        ));
        let chain = state.chain.snapshot();
        let last_key = state.last_key;
        let last_watermark = state.last_watermark;
        state.last_key = Some(last_key.map_or((seq, router), |l| l.max((seq, router))));
        state.last_watermark = Some(last_watermark.map_or(watermark, |l| l.max(watermark)));
        if let Some(w) = last_watermark {
            if watermark < w {
                st.violate(
                    Rule::ReleaseOrder,
                    format!("{joiner}: watermark regressed {w} -> {watermark}"),
                    chain,
                );
                return;
            }
        }
        if seq > watermark {
            st.violate(
                Rule::ReleaseOrder,
                format!("{joiner}: released seq {seq} above watermark {watermark}"),
                chain,
            );
            return;
        }
        if let Some(punct) = channel_punct {
            if punct.is_none() || punct.is_some_and(|p| seq > p) {
                st.violate(
                    Rule::ReleaseOrder,
                    format!(
                        "{joiner}: released (seq {seq}, router {router}) but that channel's \
                         punctuation frontier is {punct:?} — premature release (corrupt \
                         watermark?)"
                    ),
                    chain,
                );
                return;
            }
        }
        if let Some(last) = last_key {
            if (seq, router) < last {
                st.violate(
                    Rule::ReleaseOrder,
                    format!(
                        "{joiner}: released key (seq {seq}, router {router}) below previously \
                         released {last:?}"
                    ),
                    chain,
                );
            }
        }
    }

    // -------------------------------------------------------------- index

    /// The chained index is about to discard an archived sub-index link.
    ///
    /// `window` is the pairwise window size (`None` = full history, where
    /// discarding live tuples is never safe).
    pub fn index_discard(
        &self,
        owner: &str,
        min_ts: Ts,
        max_ts: Ts,
        tuples: u64,
        incoming_ts: Ts,
        window: Option<Ts>,
    ) {
        if tuples == 0 {
            return; // Dropping an empty link never loses matches.
        }
        let safe = match window {
            Some(ws) => incoming_ts.saturating_sub(max_ts) > ws,
            None => false,
        };
        let span_sane = min_ts <= max_ts;
        if safe && span_sane {
            return;
        }
        let mut st = self.lock();
        let chain = vec![format!(
            "{owner} discarding link [{min_ts}, {max_ts}] ({tuples} tuples) on incoming ts \
             {incoming_ts}, window {window:?}"
        )];
        if !span_sane {
            st.violate(
                Rule::TheoremOne,
                format!("{owner}: link span inverted (min {min_ts} > max {max_ts})"),
                chain,
            );
        } else {
            st.violate(
                Rule::TheoremOne,
                format!(
                    "{owner}: discarded live sub-index (max_ts {max_ts}, incoming {incoming_ts}, \
                     window {window:?}) — Theorem 1 violated"
                ),
                chain,
            );
        }
    }

    // ------------------------------------------------------------- queues

    /// A message was published to broker queue `queue`.
    pub fn queue_enqueue(&self, queue: &str) {
        let mut st = self.lock();
        st.queues.entry(queue.to_string()).or_default().enqueued += 1;
    }

    /// A message was delivered from broker queue `queue`.
    pub fn queue_dequeue(&self, queue: &str) {
        let mut st = self.lock();
        let state = st.queues.entry(queue.to_string()).or_default();
        state.dequeued += 1;
        let (enq, deq) = (state.enqueued, state.dequeued);
        if deq > enq {
            st.violate(
                Rule::QueueConservation,
                format!("queue {queue}: delivered {deq} messages but only {enq} were published"),
                vec![format!("queue {queue}: enqueued {enq}, dequeued {deq}")],
            );
        }
    }

    // ------------------------------------------------------------- oracle

    /// Arm the nested-loop output oracle (O(n²) — small inputs only).
    ///
    /// `window` is the pairwise equi-join window (`None` = full history).
    pub fn enable_oracle(&self, window: Option<Ts>) {
        self.lock().oracle = Some(OracleState {
            window,
            r_inputs: Vec::new(),
            s_inputs: Vec::new(),
            outputs: Vec::new(),
        });
    }

    /// `true` if [`Auditor::enable_oracle`] was called.
    pub fn oracle_enabled(&self) -> bool {
        self.lock().oracle.is_some()
    }

    /// Record one input tuple for the oracle: its side, timestamp, a
    /// canonical rendering of its join key, and a canonical rendering of
    /// its full identity (the same rendering outputs are reported with).
    pub fn observe_input(&self, is_r: bool, ts: Ts, key: String, identity: String) {
        let mut st = self.lock();
        if let Some(oracle) = st.oracle.as_mut() {
            if is_r {
                oracle.r_inputs.push((ts, key, identity));
            } else {
                oracle.s_inputs.push((ts, key, identity));
            }
        }
    }

    /// Record one emitted join result as the pair of input identities.
    pub fn observe_output(&self, r_identity: &str, s_identity: &str) {
        let mut st = self.lock();
        if let Some(oracle) = st.oracle.as_mut() {
            oracle.outputs.push(format!("{r_identity} ⋈ {s_identity}"));
        }
    }

    // ------------------------------------------------------------ results

    /// Run the end-of-stream checks (sequence density, output oracle) and
    /// drain every recorded violation.
    pub fn finish(&self) -> Vec<Violation> {
        let mut st = self.lock();
        // Density: with unique, increasing seqs already enforced online,
        // the only remaining failure is a hole below the maximum.
        if st.seen_seqs.len() as u64 != st.max_seq {
            let missing: Vec<SeqNo> =
                (1..=st.max_seq).filter(|s| !st.seen_seqs.contains(s)).take(8).collect();
            let max = st.max_seq;
            let count = st.seen_seqs.len();
            st.violate(
                Rule::SeqDensity,
                format!("{count} distinct seqs emitted but max is {max}; missing {missing:?}"),
                Vec::new(),
            );
        }
        if let Some(oracle) = st.oracle.take() {
            let mut expected: Vec<String> = Vec::new();
            for (r_ts, r_key, r_id) in &oracle.r_inputs {
                for (s_ts, s_key, s_id) in &oracle.s_inputs {
                    let in_scope = match oracle.window {
                        Some(ws) => r_ts.abs_diff(*s_ts) <= ws,
                        None => true,
                    };
                    if in_scope && r_key == s_key {
                        expected.push(format!("{r_id} ⋈ {s_id}"));
                    }
                }
            }
            expected.sort();
            let mut got = oracle.outputs;
            got.sort();
            if expected != got {
                let missing: Vec<&String> =
                    diff_multiset(&expected, &got).into_iter().take(4).collect();
                let spurious: Vec<&String> =
                    diff_multiset(&got, &expected).into_iter().take(4).collect();
                st.violate(
                    Rule::OutputOracle,
                    format!(
                        "output differs from nested-loop oracle: {} expected, {} emitted; \
                         missing {missing:?}; spurious {spurious:?}",
                        expected.len(),
                        got.len()
                    ),
                    Vec::new(),
                );
            }
        }
        st.seen_seqs.clear();
        st.max_seq = 0;
        std::mem::take(&mut st.violations)
    }

    /// Violations detected so far (including any finished batches).
    pub fn violation_count(&self) -> u64 {
        self.lock().total_violations
    }

    /// Drain violations detected so far without running the final checks.
    pub fn take_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.lock().violations)
    }

    /// Run [`Auditor::finish`] and panic with a full report if any
    /// invariant was violated — the standard test epilogue.
    pub fn assert_clean(&self) {
        let violations = self.finish();
        if !violations.is_empty() {
            let mut report = format!("{} invariant violation(s):\n", violations.len());
            for v in &violations {
                report.push_str(&v.to_string());
            }
            panic!("{report}");
        }
    }
}

/// Elements of sorted `a` not matched (multiset-wise) in sorted `b`.
fn diff_multiset<'a>(a: &'a [String], b: &[String]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(&a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_no_violations() {
        let a = Auditor::new();
        for seq in 1..=6u64 {
            a.router_emit((seq % 2) as u32, seq);
        }
        a.router_punct(0, 6);
        a.router_punct(1, 6);
        a.channel_recv("R0", 0, 2);
        a.channel_recv("R0", 0, 4);
        a.channel_punct("R0", 0, 6);
        a.release("R0", 0, 2, 6);
        a.release("R0", 0, 4, 6);
        a.index_discard("R0", 10, 20, 5, 1000, Some(100));
        a.queue_enqueue("unit.R0");
        a.queue_dequeue("unit.R0");
        assert!(a.finish().is_empty());
        assert_eq!(a.violation_count(), 0);
    }

    #[test]
    fn duplicate_seq_across_routers_is_caught() {
        let a = Auditor::new();
        a.router_emit(0, 1);
        a.router_emit(1, 1);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SeqDensity);
        assert!(v[0].message.contains("assigned twice"), "{}", v[0].message);
    }

    #[test]
    fn seq_hole_is_caught_at_finish() {
        let a = Auditor::new();
        a.router_emit(0, 1);
        a.router_emit(0, 3);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SeqDensity);
        assert!(v[0].message.contains("missing [2]"), "{}", v[0].message);
    }

    #[test]
    fn punctuation_regression_is_caught_with_chain() {
        let a = Auditor::new();
        a.router_punct(3, 10);
        a.router_punct(3, 9);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PunctMonotonic);
        assert!(v[0].chain.iter().any(|e| e.contains("punct seq 10")), "{:?}", v[0].chain);
    }

    #[test]
    fn emitting_below_own_punctuation_is_caught() {
        let a = Auditor::new();
        a.router_emit(0, 1);
        a.router_punct(0, 5);
        a.router_emit(0, 4);
        let v = a.finish();
        assert!(v.iter().any(|v| v.rule == Rule::PunctMonotonic), "{v:?}");
    }

    #[test]
    fn channel_fifo_regression_is_caught() {
        let a = Auditor::new();
        a.channel_recv("S1", 0, 5);
        a.channel_recv("S1", 0, 3);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ChannelFifo);
    }

    #[test]
    fn data_after_channel_punctuation_is_caught() {
        let a = Auditor::new();
        a.channel_punct("S1", 2, 10);
        a.channel_recv("S1", 2, 7);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ChannelFifo);
        assert!(v[0].message.contains("after"), "{}", v[0].message);
    }

    #[test]
    fn unit_restart_resets_channel_and_release_state() {
        let a = Auditor::new();
        a.channel_recv("R0", 0, 5);
        a.channel_punct("R0", 0, 5);
        a.release("R0", 0, 5, 5);
        a.channel_recv("S0", 0, 6);
        // Without the restart hook, re-delivering seq 3 and re-releasing
        // from scratch would both be violations.
        a.unit_restarted("R0");
        a.channel_recv("R0", 0, 3);
        a.channel_punct("R0", 0, 5);
        a.release("R0", 0, 3, 5);
        assert!(a.finish().is_empty());
        // Other joiners' channels are untouched by the restart.
        a.channel_recv("S0", 0, 6);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ChannelFifo);
    }

    #[test]
    fn release_above_watermark_is_caught() {
        let a = Auditor::new();
        a.release("R0", 0, 7, 5);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ReleaseOrder);
    }

    #[test]
    fn release_order_regression_is_caught() {
        let a = Auditor::new();
        a.release("R0", 1, 5, 10);
        a.release("R0", 0, 3, 10);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ReleaseOrder);
    }

    #[test]
    fn premature_release_with_corrupt_watermark_is_caught() {
        let a = Auditor::new();
        // Data arrived on the channel but no punctuation ever did; a buffer
        // with a corrupt (inflated) watermark would release it anyway.
        a.channel_recv("R0", 1, 7);
        a.release("R0", 1, 7, 10);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ReleaseOrder);
        assert!(v[0].message.contains("punctuation frontier"), "{}", v[0].message);
    }

    #[test]
    fn watermark_regression_is_caught() {
        let a = Auditor::new();
        a.release("R0", 0, 1, 10);
        a.release("R0", 0, 2, 8);
        let v = a.finish();
        assert!(v.iter().any(|v| v.message.contains("watermark regressed")), "{v:?}");
    }

    #[test]
    fn live_discard_violates_theorem_one() {
        let a = Auditor::new();
        // Window 100, link max_ts 950, incoming 1000: still live.
        a.index_discard("R0", 900, 950, 3, 1000, Some(100));
        // Empty links may always go.
        a.index_discard("R0", u64::MAX, 0, 0, 1000, Some(100));
        // Full history never discards non-empty links.
        a.index_discard("R1", 0, 1, 1, u64::MAX, None);
        let v = a.finish();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::TheoremOne));
    }

    #[test]
    fn inverted_link_span_is_caught() {
        let a = Auditor::new();
        a.index_discard("R0", u64::MAX, 0, 2, u64::MAX, Some(1));
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("span inverted"), "{}", v[0].message);
    }

    #[test]
    fn queue_overdelivery_is_caught() {
        let a = Auditor::new();
        a.queue_enqueue("q");
        a.queue_dequeue("q");
        a.queue_dequeue("q");
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::QueueConservation);
    }

    #[test]
    fn oracle_matches_nested_loop_join() {
        let a = Auditor::new();
        a.enable_oracle(Some(10));
        a.observe_input(true, 5, "k".into(), "r@5".into());
        a.observe_input(false, 8, "k".into(), "s@8".into());
        a.observe_input(false, 100, "k".into(), "s@100".into()); // out of window
        a.observe_input(false, 9, "other".into(), "s@9".into()); // key mismatch
        a.observe_output("r@5", "s@8");
        assert!(a.finish().is_empty());
    }

    #[test]
    fn oracle_flags_missing_and_spurious_outputs() {
        let a = Auditor::new();
        a.enable_oracle(None);
        a.observe_input(true, 1, "k".into(), "r@1".into());
        a.observe_input(false, 2, "k".into(), "s@2".into());
        a.observe_output("r@1", "s@999"); // spurious; the real match missing
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::OutputOracle);
        assert!(v[0].message.contains("missing"), "{}", v[0].message);
        assert!(v[0].message.contains("spurious"), "{}", v[0].message);
    }

    #[test]
    fn oracle_respects_duplicate_multiplicity() {
        let a = Auditor::new();
        a.enable_oracle(None);
        a.observe_input(true, 1, "k".into(), "r@1".into());
        a.observe_input(true, 1, "k".into(), "r@1".into());
        a.observe_input(false, 2, "k".into(), "s@2".into());
        a.observe_output("r@1", "s@2");
        a.observe_output("r@1", "s@2");
        assert!(a.finish().is_empty());
    }

    #[test]
    fn violations_land_in_attached_journal() {
        let a = Auditor::new();
        let journal = EventJournal::with_capacity(32);
        a.attach_journal(journal.clone());
        a.set_now(42);
        a.release("R0", 0, 9, 5);
        let events = journal.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ts, 42);
        match &events[0].kind {
            EventKind::InvariantViolation { rule, detail } => {
                assert_eq!(rule, "release-order");
                assert!(detail.contains("above watermark"), "{detail}");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn violation_chain_includes_journal_tail() {
        let a = Auditor::new();
        let journal = EventJournal::with_capacity(32);
        journal.record(1, EventKind::TupleStored { side: crate::rel::Rel::R, unit: 0, seq: 3 });
        a.attach_journal(journal);
        a.channel_recv("R0", 0, 5);
        a.channel_recv("R0", 0, 5);
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert!(
            v[0].chain.iter().any(|e| e.starts_with("journal: ") && e.contains("TupleStored")),
            "{:?}",
            v[0].chain
        );
    }

    #[test]
    fn assert_clean_panics_with_report() {
        let a = Auditor::new();
        a.router_emit(0, 1);
        a.router_emit(0, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.assert_clean()))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("seq-density"), "{msg}");
    }

    #[test]
    fn violation_cap_keeps_counting() {
        let a = Auditor::new();
        for _ in 0..(MAX_STORED_VIOLATIONS + 10) {
            a.queue_dequeue("q");
        }
        assert_eq!(a.violation_count(), (MAX_STORED_VIOLATIONS + 10) as u64);
        assert_eq!(a.take_violations().len(), MAX_STORED_VIOLATIONS);
    }

    #[test]
    fn new_if_debug_matches_build_profile() {
        assert_eq!(Auditor::new_if_debug().is_some(), cfg!(debug_assertions));
    }
}
