//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout BiStream-RS.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the BiStream-RS stack.
///
/// The variants are deliberately coarse: fine-grained context travels in the
/// message strings, while the variant communicates *which subsystem*
/// rejected the operation so callers can match on recoverability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tuple, schema or predicate was malformed (e.g. attribute index out
    /// of range, join attribute of a non-comparable type).
    Schema(String),
    /// Wire-format decoding failed (truncated buffer, unknown tag byte).
    Codec(String),
    /// A broker operation was invalid (unknown exchange, queue closed,
    /// duplicate declaration with conflicting options).
    Broker(String),
    /// A topology/configuration error (zero joiners, subgroup count larger
    /// than the side, duplicated unit ids).
    Config(String),
    /// The ordering protocol detected a violated invariant (non-monotonic
    /// sequence numbers on a pairwise-FIFO channel).
    Ordering(String),
    /// A scaling operation was rejected (below min replicas, unit unknown).
    Scaling(String),
    /// A fault-injection plan or chaos artifact was malformed, or a chaos
    /// drill could not be staged (unknown unit, unparseable artifact).
    Fault(String),
    /// The component has been shut down; no further work is accepted.
    Closed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Broker(m) => write!(f, "broker error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Ordering(m) => write!(f, "ordering protocol error: {m}"),
            Error::Scaling(m) => write!(f, "scaling error: {m}"),
            Error::Fault(m) => write!(f, "fault injection error: {m}"),
            Error::Closed => write!(f, "component is closed"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = Error::Broker("no such exchange `x`".into());
        assert_eq!(e.to_string(), "broker error: no such exchange `x`");
        assert_eq!(Error::Closed.to_string(), "component is closed");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Closed, Error::Closed);
        assert_ne!(Error::Closed, Error::Schema("x".into()));
    }
}
