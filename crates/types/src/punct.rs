//! Messages of the router→joiner streams: sequenced data tuples and the
//! punctuations of the order-consistent protocol.
//!
//! Every router maintains one monotonically increasing counter. Each
//! *ingested* tuple is assigned the next counter value, and **all copies**
//! of that tuple (the store copy and every join-stream copy) carry the same
//! `(router, seq)` stamp — this is what realises the single global sequence
//! `Z` of Definition 7: each joiner's processing order is a subsequence of
//! the per-router counter order, merged deterministically across routers.
//!
//! Periodically (every `punctuation interval` ms) a router broadcasts a
//! [`Punctuation`] carrying its latest assigned counter; because every
//! router→joiner channel is pairwise FIFO, receipt of `Punctuation{seq}`
//! guarantees all of that router's tuples with `seq' <= seq` destined for
//! this joiner have been received, so the joiner may release its buffer up
//! to that frontier.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a router instance.
pub type RouterId = u32;

/// Per-router tuple sequence number.
pub type SeqNo = u64;

/// Why a tuple copy is being delivered to a joiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// Add the tuple to this unit's stored window state.
    Store,
    /// Probe this unit's stored state of the opposite relation.
    Join,
}

impl Purpose {
    /// Stable wire byte (shared by the single-tuple and batched framings).
    pub fn as_byte(self) -> u8 {
        match self {
            Purpose::Store => 0,
            Purpose::Join => 1,
        }
    }

    /// Inverse of [`Purpose::as_byte`].
    pub fn from_byte(b: u8) -> Option<Purpose> {
        match b {
            0 => Some(Purpose::Store),
            1 => Some(Purpose::Join),
            _ => None,
        }
    }
}

/// A punctuation: "router `router` has assigned all counters up to and
/// including `seq`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Punctuation {
    /// Emitting router.
    pub router: RouterId,
    /// Highest counter assigned by that router so far.
    pub seq: SeqNo,
}

/// One message on a router→joiner stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamMessage {
    /// A sequenced tuple copy.
    Data {
        /// Emitting router.
        router: RouterId,
        /// The tuple's position in the router's sequence.
        seq: SeqNo,
        /// Store or join branch.
        purpose: Purpose,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// A punctuation releasing the joiner's reorder buffer.
    Punct(Punctuation),
}

impl StreamMessage {
    /// The emitting router of this message.
    pub fn router(&self) -> RouterId {
        match self {
            StreamMessage::Data { router, .. } => *router,
            StreamMessage::Punct(p) => p.router,
        }
    }

    /// The sequence number this message carries.
    pub fn seq(&self) -> SeqNo {
        match self {
            StreamMessage::Data { seq, .. } => *seq,
            StreamMessage::Punct(p) => p.seq,
        }
    }

    /// Encode to the broker wire format.
    ///
    /// Layout: `kind(1) router(4) seq(8) [purpose(1) tuple…]`.
    pub fn encode(&self) -> Bytes {
        match self {
            StreamMessage::Punct(p) => {
                let mut buf = BytesMut::with_capacity(13);
                buf.put_u8(0);
                buf.put_u32(p.router);
                buf.put_u64(p.seq);
                buf.freeze()
            }
            StreamMessage::Data { router, seq, purpose, tuple } => {
                let body = tuple.encode();
                let mut buf = BytesMut::with_capacity(14 + body.len());
                buf.put_u8(1);
                buf.put_u32(*router);
                buf.put_u64(*seq);
                buf.put_u8(purpose.as_byte());
                buf.put_slice(&body);
                buf.freeze()
            }
        }
    }

    /// Decode a message produced by [`StreamMessage::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<StreamMessage> {
        if buf.remaining() < 13 {
            return Err(Error::Codec("stream message header truncated".into()));
        }
        let kind = buf.get_u8();
        let router = buf.get_u32();
        let seq = buf.get_u64();
        match kind {
            0 => Ok(StreamMessage::Punct(Punctuation { router, seq })),
            1 => {
                if buf.remaining() < 1 {
                    return Err(Error::Codec("purpose byte missing".into()));
                }
                let purpose = Purpose::from_byte(buf.get_u8())
                    .ok_or_else(|| Error::Codec("bad purpose byte".into()))?;
                let tuple = Tuple::decode(buf)?;
                Ok(StreamMessage::Data { router, seq, purpose, tuple })
            }
            k => Err(Error::Codec(format!("unknown stream message kind {k}"))),
        }
    }
}

impl fmt::Display for StreamMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamMessage::Data { router, seq, purpose, tuple } => {
                write!(f, "data[r{router}#{seq} {purpose:?} {tuple}]")
            }
            StreamMessage::Punct(p) => write!(f, "punct[r{}#{}]", p.router, p.seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::Rel;
    use crate::value::Value;

    fn msg() -> StreamMessage {
        StreamMessage::Data {
            router: 3,
            seq: 99,
            purpose: Purpose::Join,
            tuple: Tuple::new(Rel::S, 7, vec![Value::Int(1), Value::Bool(false)]),
        }
    }

    #[test]
    fn data_roundtrip() {
        let m = msg();
        let mut wire = m.encode();
        assert_eq!(StreamMessage::decode(&mut wire).unwrap(), m);
    }

    #[test]
    fn punct_roundtrip() {
        let m = StreamMessage::Punct(Punctuation { router: 1, seq: 42 });
        let mut wire = m.encode();
        assert_eq!(StreamMessage::decode(&mut wire).unwrap(), m);
    }

    #[test]
    fn accessors() {
        let m = msg();
        assert_eq!(m.router(), 3);
        assert_eq!(m.seq(), 99);
        let p = StreamMessage::Punct(Punctuation { router: 5, seq: 6 });
        assert_eq!(p.router(), 5);
        assert_eq!(p.seq(), 6);
    }

    #[test]
    fn truncation_rejected() {
        let full = msg().encode();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(StreamMessage::decode(&mut partial).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0);
        buf.put_u64(0);
        let mut b = buf.freeze();
        assert!(StreamMessage::decode(&mut b).is_err());
    }
}
