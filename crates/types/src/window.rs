//! Window specifications and the Theorem-1 expiry rule.
//!
//! BiStream supports both time-based sliding windows and full-history
//! joins; the window specification is consulted in exactly two places:
//! when deciding whether a stored tuple can still match future arrivals
//! (expiry), and when deciding whether two present tuples are within scope
//! of each other (the pairwise window check during join processing).

use crate::time::Ts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The scope of stream state retained for joining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Time-based sliding window of `ws` milliseconds: a stored tuple `x`
    /// joins an incoming tuple `y` iff `|y.ts − x.ts| <= ws`.
    TimeSliding {
        /// Window size in milliseconds.
        ws: Ts,
    },
    /// Unbounded state: every pair of tuples is in scope (the model's
    /// full-history join).
    FullHistory,
}

impl WindowSpec {
    /// Convenience constructor for a sliding window of `ws` milliseconds.
    pub fn sliding(ws: Ts) -> WindowSpec {
        WindowSpec::TimeSliding { ws }
    }

    /// The window length, if bounded.
    pub fn size(&self) -> Option<Ts> {
        match self {
            WindowSpec::TimeSliding { ws } => Some(*ws),
            WindowSpec::FullHistory => None,
        }
    }

    /// **Theorem 1** (safe discarding): a stored tuple with timestamp
    /// `stored_ts` can be removed once a tuple of the *opposite* relation
    /// with timestamp `incoming_ts` satisfying
    /// `incoming_ts − stored_ts > ws` has been received, because (under the
    /// order-consistent protocol) no later opposite-side tuple can have a
    /// smaller timestamp, so the stored tuple can never match again.
    #[inline]
    pub fn is_expired(&self, stored_ts: Ts, incoming_ts: Ts) -> bool {
        match self {
            WindowSpec::TimeSliding { ws } => incoming_ts.saturating_sub(stored_ts) > *ws,
            WindowSpec::FullHistory => false,
        }
    }

    /// The pairwise window check performed at join time: are `a_ts` and
    /// `b_ts` within one window of each other (in either direction)?
    ///
    /// This is required *in addition to* expiry because sub-index-level
    /// discarding is deliberately lazy — an inactive sub-index may still
    /// contain a few individually-stale tuples until the whole sub-index
    /// expires.
    #[inline]
    pub fn in_scope(&self, a_ts: Ts, b_ts: Ts) -> bool {
        match self {
            WindowSpec::TimeSliding { ws } => a_ts.abs_diff(b_ts) <= *ws,
            WindowSpec::FullHistory => true,
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::TimeSliding { ws } => write!(f, "sliding({ws}ms)"),
            WindowSpec::FullHistory => write!(f, "full-history"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_expiry_is_strict_inequality() {
        let w = WindowSpec::sliding(100);
        assert!(!w.is_expired(0, 100), "exactly one window apart is still live");
        assert!(w.is_expired(0, 101));
        assert!(!w.is_expired(50, 40), "older incoming never expires newer stored");
    }

    #[test]
    fn full_history_never_expires() {
        let w = WindowSpec::FullHistory;
        assert!(!w.is_expired(0, u64::MAX));
        assert!(w.in_scope(0, u64::MAX));
        assert_eq!(w.size(), None);
    }

    #[test]
    fn in_scope_is_symmetric() {
        let w = WindowSpec::sliding(10);
        assert!(w.in_scope(5, 15));
        assert!(w.in_scope(15, 5));
        assert!(!w.in_scope(5, 16));
        assert!(!w.in_scope(16, 5));
    }

    #[test]
    fn expiry_implies_out_of_scope() {
        let w = WindowSpec::sliding(7);
        for stored in 0..20u64 {
            for incoming in 0..20u64 {
                if w.is_expired(stored, incoming) {
                    assert!(!w.in_scope(stored, incoming));
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(WindowSpec::sliding(5).to_string(), "sliding(5ms)");
        assert_eq!(WindowSpec::FullHistory.to_string(), "full-history");
    }
}
