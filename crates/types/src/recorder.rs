//! Bounded flight recorder and byte-stable breach bundles.
//!
//! A [`FlightRecorder`] retains a bounded tail of the observability
//! streams — recent registry scrapes, the event-journal tail, summaries of
//! completed traces — cheaply enough to run always-on. When the SLO engine
//! breaches or the watchdog trips, [`FlightRecorder::maybe_bundle`] snaps
//! the retained tail together with the firing alerts into a
//! [`BreachBundle`]: a self-contained JSON diagnostic in the style of the
//! chaos artifacts ([`crate::fault::ChaosArtifact`]), written next to them
//! under `results/` and replayable for postmortems.
//!
//! Byte-stability contract (same as the chaos artifacts): `to_json` ∘
//! `from_json` ∘ `to_json` is the identity, floats render in the canonical
//! [`crate::jsonlite`] form, and corrupt input is an `Err`, never a panic.
//! `tests/slo.rs` pins the round-trip on a real breach.

use crate::error::{Error, Result};
use crate::journal::Event;
use crate::jsonlite::{fmt_f64, json_str, Json};
use crate::metric_names as names;
use crate::registry::{MetricValue, RegistrySnapshot};
use crate::slo::{BurnAlert, SloReport, SloSpec, WindowEvidence};
use crate::trace::Trace;
use crate::watchdog::{StallKind, StallVerdict, WatchdogConfig};
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Bundle format version; bumped on any incompatible schema change.
pub const BUNDLE_VERSION: u32 = 1;

/// Retention bounds for the recorder's three tails.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Most recent scrapes retained.
    pub max_scrapes: usize,
    /// Most recent journal events retained.
    pub max_events: usize,
    /// Most recent trace summaries retained.
    pub max_traces: usize,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig { max_scrapes: 16, max_events: 64, max_traces: 32 }
    }
}

/// A scraped metric value, flattened for the bundle codec.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RecordedValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram summary: `(count, mean, p50, p95, p99, max)`.
    Histogram(u64, f64, u64, u64, u64, u64),
}

/// One retained scrape: the stamp plus every `rendered-key → value` pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecordedScrape {
    /// Scrape time (ms).
    pub at: u64,
    /// `(key.render(), value)` pairs in scrape (i.e. sorted-key) order.
    pub series: Vec<(String, RecordedValue)>,
}

impl RecordedScrape {
    /// Flatten a registry snapshot into its recorded form.
    pub fn from_snapshot(snap: &RegistrySnapshot) -> RecordedScrape {
        let series = snap
            .samples
            .iter()
            .map(|s| {
                let v = match &s.value {
                    MetricValue::Counter(v) => RecordedValue::Counter(*v),
                    MetricValue::Gauge(v) => RecordedValue::Gauge(*v),
                    MetricValue::Histogram(h) => RecordedValue::Histogram(
                        h.count, h.mean, h.p50, h.p95, h.p99, h.max,
                    ),
                };
                (s.key.render(), v)
            })
            .collect();
        RecordedScrape { at: snap.at, series }
    }
}

/// A compact summary of one completed (or abandoned) trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceSummary {
    /// Trace id.
    pub id: u64,
    /// Whether every branch closed.
    pub complete: bool,
    /// End-to-end latency (ms).
    pub end_to_end_ms: u64,
    /// Hop path, e.g. `route@r0→enqueue@unit.1→…`.
    pub path: String,
}

impl TraceSummary {
    /// Summarize a full trace.
    pub fn from_trace(t: &Trace) -> TraceSummary {
        let mut path = String::new();
        for (i, span) in t.spans.iter().enumerate() {
            if i > 0 {
                path.push('→');
            }
            let _ = write!(path, "{}@{}", span.kind.label(), span.unit);
        }
        TraceSummary { id: t.id, complete: t.complete, end_to_end_ms: t.end_to_end(), path }
    }
}

/// The always-on bounded recorder.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    scrapes: VecDeque<RecordedScrape>,
    events: VecDeque<String>,
    traces: VecDeque<TraceSummary>,
}

impl FlightRecorder {
    /// A recorder with the default retention bounds.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder with explicit retention bounds.
    pub fn with_config(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder { cfg, ..FlightRecorder::default() }
    }

    /// Retain a scrape (evicting the oldest beyond the bound).
    pub fn record_scrape(&mut self, snap: &RegistrySnapshot) {
        push_bounded(&mut self.scrapes, RecordedScrape::from_snapshot(snap), self.cfg.max_scrapes);
    }

    /// Retain a journal event (stored as its stable JSON line).
    pub fn record_event(&mut self, ev: &Event) {
        push_bounded(&mut self.events, ev.to_json(), self.cfg.max_events);
    }

    /// Retain a trace summary.
    pub fn record_trace(&mut self, t: &Trace) {
        push_bounded(&mut self.traces, TraceSummary::from_trace(t), self.cfg.max_traces);
    }

    /// Feed a whole run's tails at once (the post-hoc path both harnesses
    /// use): the bounded windows keep only the most recent entries.
    pub fn record_run(&mut self, series: &[RegistrySnapshot], events: &[Event], traces: &[Trace]) {
        for s in series {
            self.record_scrape(s);
        }
        for e in events {
            self.record_event(e);
        }
        for t in traces {
            self.record_trace(t);
        }
    }

    /// Snap the retained tail into a bundle if anything fired: an SLO
    /// breach or at least one stall verdict. The trigger names the first
    /// firing alert.
    pub fn maybe_bundle(
        &self,
        at_ms: u64,
        slo: &SloReport,
        stalls: &[StallVerdict],
    ) -> Option<BreachBundle> {
        if !slo.breached && stalls.is_empty() {
            return None;
        }
        let trigger = slo
            .alerts
            .first()
            .map(|a| a.alert.clone())
            .unwrap_or_else(|| names::ALERT_PROGRESS_STALL.to_owned());
        Some(BreachBundle {
            version: BUNDLE_VERSION,
            trigger,
            at_ms,
            alerts: slo.alerts.clone(),
            stalls: stalls.to_vec(),
            scrapes: self.scrapes.iter().cloned().collect(),
            journal: self.events.iter().cloned().collect(),
            traces: self.traces.iter().cloned().collect(),
        })
    }
}

fn push_bounded<T>(q: &mut VecDeque<T>, item: T, bound: usize) {
    q.push_back(item);
    while q.len() > bound.max(1) {
        q.pop_front();
    }
}

/// The health verdicts of one finished run, as both harnesses attach them
/// to their reports (`SimOutcome` / `PipelineReport`).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RunHealth {
    /// SLO verdicts and alerts (`None` when no spec was configured).
    pub slo: Option<SloReport>,
    /// Watchdog stall verdicts (empty when progress never froze).
    pub stalls: Vec<StallVerdict>,
    /// The flight-recorder dump, present iff an alert or stall fired.
    pub bundle: Option<BreachBundle>,
}

impl RunHealth {
    /// `true` when any SLO alert or stall verdict fired.
    pub fn breached(&self) -> bool {
        !self.stalls.is_empty() || self.slo.as_ref().is_some_and(|s| s.breached)
    }
}

/// One-call health grading over a finalized scrape series (see
/// [`crate::metrics::finalize_scrape_series`]): evaluate the SLO spec (if
/// any), scan for stalls, and snap a flight-recorder bundle when either
/// fires. Both harnesses run this identical tail, so a sim trial and a
/// live run produce the same verdict shapes from the same evidence.
pub fn grade_run(
    slo_spec: Option<&SloSpec>,
    watchdog: &WatchdogConfig,
    series: &[RegistrySnapshot],
    events: &[Event],
    traces: &[Trace],
) -> RunHealth {
    let slo = slo_spec.map(|spec| crate::slo::evaluate(spec, series));
    let stalls = crate::watchdog::scan(watchdog, series);
    let breached = !stalls.is_empty() || slo.as_ref().is_some_and(|s| s.breached);
    let bundle = breached.then(|| {
        let mut rec = FlightRecorder::new();
        rec.record_run(series, events, traces);
        let at = series.last().map(|s| s.at).unwrap_or(0);
        let quiet = SloReport::default();
        rec.maybe_bundle(at, slo.as_ref().unwrap_or(&quiet), &stalls)
    });
    RunHealth { slo, stalls, bundle: bundle.flatten() }
}

/// The emitted diagnostic: alerts plus the flight-recorder tail, as one
/// byte-stable JSON document.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BreachBundle {
    /// Bundle schema version ([`BUNDLE_VERSION`]).
    pub version: u32,
    /// The alert that triggered the dump.
    pub trigger: String,
    /// Dump time (ms, same clock as the scrapes).
    pub at_ms: u64,
    /// The SLO burn alerts that fired.
    pub alerts: Vec<BurnAlert>,
    /// The watchdog stall verdicts.
    pub stalls: Vec<StallVerdict>,
    /// Retained scrape tail, oldest first.
    pub scrapes: Vec<RecordedScrape>,
    /// Retained journal tail as stable JSON lines, oldest first.
    pub journal: Vec<String>,
    /// Retained trace summaries, oldest first.
    pub traces: Vec<TraceSummary>,
}

impl BreachBundle {
    /// Serialize to pretty-printed JSON with stable key order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = write!(s, "  \"version\": {},\n", self.version);
        let _ = write!(s, "  \"trigger\": {},\n", json_str(&self.trigger));
        let _ = write!(s, "  \"at_ms\": {},\n", self.at_ms);
        s.push_str("  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            alert_json(a, &mut s);
        }
        s.push_str("],\n  \"stalls\": [");
        for (i, v) in self.stalls.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"kind\": {}, \"unit\": {}, \"from_ms\": {}, \"at_ms\": {}, \
                 \"ticks\": {}, \"buffered\": {}, \"frozen_at\": {}}}",
                json_str(v.kind.label()),
                json_str(&v.unit),
                v.from_ms,
                v.at_ms,
                v.ticks,
                v.buffered,
                v.frozen_at
            );
        }
        s.push_str("],\n  \"scrapes\": [");
        for (i, sc) in self.scrapes.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            scrape_json(sc, &mut s);
        }
        s.push_str(if self.scrapes.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"journal\": [");
        for (i, line) in self.journal.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(line));
        }
        s.push_str("],\n  \"traces\": [");
        for (i, t) in self.traces.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"id\": {}, \"complete\": {}, \"end_to_end_ms\": {}, \"path\": {}}}",
                t.id,
                u64::from(t.complete),
                t.end_to_end_ms,
                json_str(&t.path)
            );
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a bundle produced by [`BreachBundle::to_json`].
    pub fn from_json(text: &str) -> Result<BreachBundle> {
        let v = Json::parse(text)?;
        let version = v.field_u64("version")? as u32;
        if version != BUNDLE_VERSION {
            return Err(Error::Fault(format!(
                "bundle version {version} unsupported (expected {BUNDLE_VERSION})"
            )));
        }
        let alerts =
            v.field("alerts")?.as_array()?.iter().map(alert_from_json).collect::<Result<_>>()?;
        let stalls = v
            .field("stalls")?
            .as_array()?
            .iter()
            .map(|j| {
                let kind_tag = j.field_str("kind")?;
                let kind = StallKind::from_label(kind_tag)
                    .ok_or_else(|| Error::Fault(format!("unknown stall kind `{kind_tag}`")))?;
                Ok(StallVerdict {
                    kind,
                    unit: j.field_str("unit")?.to_owned(),
                    from_ms: j.field_u64("from_ms")?,
                    at_ms: j.field_u64("at_ms")?,
                    ticks: j.field_u64("ticks")?,
                    buffered: j.field_u64("buffered")?,
                    frozen_at: j.field_u64("frozen_at")?,
                })
            })
            .collect::<Result<_>>()?;
        let scrapes = v
            .field("scrapes")?
            .as_array()?
            .iter()
            .map(scrape_from_json)
            .collect::<Result<_>>()?;
        let journal = v
            .field("journal")?
            .as_array()?
            .iter()
            .map(|j| j.as_str().map(str::to_owned))
            .collect::<Result<_>>()?;
        let traces = v
            .field("traces")?
            .as_array()?
            .iter()
            .map(|j| {
                Ok(TraceSummary {
                    id: j.field_u64("id")?,
                    complete: j.field_u64("complete")? != 0,
                    end_to_end_ms: j.field_u64("end_to_end_ms")?,
                    path: j.field_str("path")?.to_owned(),
                })
            })
            .collect::<Result<_>>()?;
        Ok(BreachBundle {
            version,
            trigger: v.field_str("trigger")?.to_owned(),
            at_ms: v.field_u64("at_ms")?,
            alerts,
            stalls,
            scrapes,
            journal,
            traces,
        })
    }
}

fn alert_json(a: &BurnAlert, s: &mut String) {
    let window = |w: &WindowEvidence| {
        format!(
            "{{\"from_ms\": {}, \"to_ms\": {}, \"window\": {}, \"breached\": {}}}",
            w.from_ms, w.to_ms, w.window, w.breached
        )
    };
    let _ = write!(
        s,
        "{{\"alert\": {}, \"objective\": {}, \"at_ms\": {}, \"fast_burn\": {}, \
         \"slow_burn\": {}, \"observed\": {}, \"limit\": {}, \"fast\": {}, \"slow\": {}}}",
        json_str(&a.alert),
        json_str(&a.objective),
        a.at_ms,
        fmt_f64(a.fast_burn),
        fmt_f64(a.slow_burn),
        fmt_f64(a.observed),
        fmt_f64(a.limit),
        window(&a.fast),
        window(&a.slow)
    );
}

fn alert_from_json(j: &Json) -> Result<BurnAlert> {
    let window = |j: &Json| -> Result<WindowEvidence> {
        Ok(WindowEvidence {
            from_ms: j.field_u64("from_ms")?,
            to_ms: j.field_u64("to_ms")?,
            window: j.field_u64("window")?,
            breached: j.field_u64("breached")?,
        })
    };
    Ok(BurnAlert {
        alert: j.field_str("alert")?.to_owned(),
        objective: j.field_str("objective")?.to_owned(),
        at_ms: j.field_u64("at_ms")?,
        fast_burn: j.field_f64("fast_burn")?,
        slow_burn: j.field_f64("slow_burn")?,
        observed: j.field_f64("observed")?,
        limit: j.field_f64("limit")?,
        fast: window(j.field("fast")?)?,
        slow: window(j.field("slow")?)?,
    })
}

fn scrape_json(sc: &RecordedScrape, s: &mut String) {
    let _ = write!(s, "{{\"at\": {}, \"series\": [", sc.at);
    for (i, (k, v)) in sc.series.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match v {
            RecordedValue::Counter(n) => {
                let _ = write!(s, "{{\"k\": {}, \"t\": \"counter\", \"v\": {n}}}", json_str(k));
            }
            RecordedValue::Gauge(n) => {
                let _ = write!(s, "{{\"k\": {}, \"t\": \"gauge\", \"v\": {n}}}", json_str(k));
            }
            RecordedValue::Histogram(count, mean, p50, p95, p99, max) => {
                let _ = write!(
                    s,
                    "{{\"k\": {}, \"t\": \"histogram\", \"count\": {count}, \"mean\": {}, \
                     \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"max\": {max}}}",
                    json_str(k),
                    fmt_f64(*mean)
                );
            }
        }
    }
    s.push_str("]}");
}

fn scrape_from_json(j: &Json) -> Result<RecordedScrape> {
    let series = j
        .field("series")?
        .as_array()?
        .iter()
        .map(|e| {
            let k = e.field_str("k")?.to_owned();
            let v = match e.field_str("t")? {
                "counter" => RecordedValue::Counter(e.field_u64("v")?),
                "gauge" => RecordedValue::Gauge(e.field_u64("v")?),
                "histogram" => RecordedValue::Histogram(
                    e.field_u64("count")?,
                    e.field_f64("mean")?,
                    e.field_u64("p50")?,
                    e.field_u64("p95")?,
                    e.field_u64("p99")?,
                    e.field_u64("max")?,
                ),
                other => return Err(Error::Fault(format!("unknown sample type `{other}`"))),
            };
            Ok((k, v))
        })
        .collect::<Result<_>>()?;
    Ok(RecordedScrape { at: j.field_u64("at")?, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventJournal, EventKind};
    use crate::registry::MetricsRegistry;
    use crate::slo::{evaluate, SloSpec};
    use crate::watchdog::{scan, WatchdogConfig};

    /// A series whose throughput collapses mid-run with publishers parked,
    /// plus a queue that holds messages with frozen delivery — both the
    /// SLO engine and the watchdog fire on it.
    fn breaching_run() -> (MetricsRegistry, Vec<RegistrySnapshot>) {
        let reg = MetricsRegistry::new();
        let ingested = reg.counter(crate::metric_names::TUPLES_INGESTED_TOTAL, &[("engine", "e")]);
        let lat = reg.histogram(crate::metric_names::RESULT_LATENCY_MS, &[("engine", "e")]);
        let depth = reg.gauge(crate::metric_names::QUEUE_DEPTH, &[("queue", "unit.0")]);
        let stall = reg.counter(crate::metric_names::QUEUE_STALL_MS_TOTAL, &[("queue", "unit.0")]);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=3u64 {
            ingested.add(800);
            lat.record(5);
            series.push(reg.scrape(t * 1_000));
        }
        depth.set(12);
        for t in 4..=9u64 {
            stall.add(950);
            series.push(reg.scrape(t * 1_000));
        }
        (reg, series)
    }

    #[test]
    fn bundle_roundtrips_byte_stably() {
        let (_reg, series) = breaching_run();
        let slo = evaluate(&SloSpec::new().min_ingest_tps(400.0).p99_latency_ms(50), &series);
        assert!(slo.breached, "{slo:?}");
        let stalls = scan(&WatchdogConfig::default(), &series);
        assert!(!stalls.is_empty(), "queue holds messages with frozen delivery");

        let journal = EventJournal::with_capacity(8);
        journal.record(4_000, EventKind::BackpressureStall { queue: "unit.0".into() });
        journal.record(5_000, EventKind::BackpressureStall { queue: "unit.0".into() });

        let mut rec = FlightRecorder::with_config(RecorderConfig {
            max_scrapes: 4,
            max_events: 8,
            max_traces: 4,
        });
        rec.record_run(&series, &journal.snapshot(), &[]);
        let bundle = rec.maybe_bundle(9_000, &slo, &stalls).expect("breach must bundle");
        assert_eq!(bundle.version, BUNDLE_VERSION);
        assert_eq!(bundle.trigger, crate::metric_names::ALERT_SLO_BURN);
        // Retention bound: only the 4 most recent of the 10 scrapes.
        assert_eq!(bundle.scrapes.len(), 4);
        assert_eq!(bundle.scrapes.last().map(|s| s.at), Some(9_000));
        assert_eq!(bundle.journal.len(), 2);

        let text = bundle.to_json();
        let back = BreachBundle::from_json(&text).expect("parse");
        assert_eq!(back, bundle);
        assert_eq!(back.to_json(), text, "byte-stable round-trip");
    }

    #[test]
    fn stall_only_trip_uses_the_watchdog_trigger() {
        let (_reg, series) = breaching_run();
        let stalls = scan(&WatchdogConfig::default(), &series);
        let rec = {
            let mut r = FlightRecorder::new();
            r.record_run(&series, &[], &[]);
            r
        };
        let quiet = SloReport::default();
        let bundle = rec.maybe_bundle(9_000, &quiet, &stalls).expect("stall must bundle");
        assert_eq!(bundle.trigger, crate::metric_names::ALERT_PROGRESS_STALL);
        assert!(bundle.alerts.is_empty());
        let text = bundle.to_json();
        assert_eq!(BreachBundle::from_json(&text).expect("parse").to_json(), text);
    }

    #[test]
    fn healthy_run_never_bundles() {
        let rec = FlightRecorder::new();
        assert!(rec.maybe_bundle(0, &SloReport::default(), &[]).is_none());
    }

    #[test]
    fn corrupt_bundles_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"version\": 99}",
            "{\"version\": 1}",
            "{\"version\": 1, \"trigger\": 7}",
            "{\"version\": 1, \"trigger\": \"x\", \"at_ms\": 0, \"alerts\": [], \
             \"stalls\": [{\"kind\": \"bogus\"}], \"scrapes\": [], \"journal\": [], \
             \"traces\": []}",
            "nonsense",
        ] {
            assert!(BreachBundle::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
