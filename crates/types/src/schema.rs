//! Tuple schemas (Definition 1 of the model): a named, ordered list of
//! typed attributes shared by every tuple of a streaming relation.

use crate::error::{Error, Result};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within the schema.
    pub name: String,
    /// Declared value domain.
    pub ty: ValueType,
}

/// An immutable tuple schema. Cheap to clone (`Arc` inside) because every
/// tuple of a stream shares one schema instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attrs: Arc<Vec<Attribute>>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Returns [`Error::Schema`] on duplicate attribute names or an empty
    /// attribute list.
    pub fn new(name: impl Into<String>, attrs: Vec<(&str, ValueType)>) -> Result<Schema> {
        if attrs.is_empty() {
            return Err(Error::Schema("schema needs at least one attribute".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for (n, _) in &attrs {
            if !seen.insert(*n) {
                return Err(Error::Schema(format!("duplicate attribute `{n}`")));
            }
        }
        Ok(Schema {
            name: name.into(),
            attrs: Arc::new(
                attrs.into_iter().map(|(n, ty)| Attribute { name: n.to_owned(), ty }).collect(),
            ),
        })
    }

    /// The schema (relation) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Index of `name`, or a descriptive error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            Error::Schema(format!("schema `{}` has no attribute `{name}`", self.name))
        })
    }

    /// Check that `values` conforms to this schema: right arity, and each
    /// non-null value of the declared type.
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(Error::Schema(format!(
                "schema `{}` expects {} attributes, tuple has {}",
                self.name,
                self.arity(),
                values.len()
            )));
        }
        for (attr, v) in self.attrs.iter().zip(values) {
            if let Some(ty) = v.value_type() {
                if ty != attr.ty {
                    return Err(Error::Schema(format!(
                        "attribute `{}` of `{}` expects {:?}, got {:?}",
                        attr.name, self.name, attr.ty, ty
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A builder assembling a tuple against a schema by attribute *name*,
/// validating arity and types at [`TupleBuilder::build`].
///
/// ```
/// use bistream_types::schema::{Schema, TupleBuilder};
/// use bistream_types::value::ValueType;
/// use bistream_types::rel::Rel;
///
/// let schema = Schema::new("orders", vec![
///     ("order_id", ValueType::Int),
///     ("amount", ValueType::Float),
/// ]).unwrap();
/// let tuple = TupleBuilder::new(&schema, Rel::R, 42)
///     .set("order_id", 1001i64).unwrap()
///     .set("amount", 99.5).unwrap()
///     .build().unwrap();
/// assert_eq!(tuple.ts(), 42);
/// ```
#[derive(Debug)]
pub struct TupleBuilder<'s> {
    schema: &'s Schema,
    rel: crate::rel::Rel,
    ts: crate::time::Ts,
    values: Vec<Value>,
}

impl<'s> TupleBuilder<'s> {
    /// Start a tuple of `schema` for relation `rel` at event time `ts`.
    /// All attributes start as `Null`.
    pub fn new(schema: &'s Schema, rel: crate::rel::Rel, ts: crate::time::Ts) -> TupleBuilder<'s> {
        TupleBuilder { schema, rel, ts, values: vec![Value::Null; schema.arity()] }
    }

    /// Set attribute `name`.
    ///
    /// # Errors
    /// [`Error::Schema`] if the attribute does not exist or the value's
    /// type does not match the declaration.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Result<TupleBuilder<'s>> {
        let idx = self.schema.require(name)?;
        let value = value.into();
        if let Some(ty) = value.value_type() {
            let declared = self.schema.attributes()[idx].ty;
            if ty != declared {
                return Err(Error::Schema(format!(
                    "attribute `{name}` of `{}` expects {declared:?}, got {ty:?}",
                    self.schema.name()
                )));
            }
        }
        self.values[idx] = value;
        Ok(self)
    }

    /// Finish the tuple (re-validating against the schema).
    pub fn build(self) -> Result<crate::tuple::Tuple> {
        self.schema.validate(&self.values)?;
        Ok(crate::tuple::Tuple::new(self.rel, self.ts, self.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Schema {
        Schema::new(
            "orders",
            vec![
                ("order_id", ValueType::Int),
                ("amount", ValueType::Float),
                ("customer", ValueType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = orders();
        assert_eq!(s.index_of("amount"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.require("missing").is_err());
        assert_eq!(s.require("customer").unwrap(), 2);
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Schema::new("x", vec![]).is_err());
        assert!(Schema::new("x", vec![("a", ValueType::Int), ("a", ValueType::Int)]).is_err());
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = orders();
        assert!(s.validate(&[Value::Int(1), Value::Float(2.0), Value::Str("c".into())]).is_ok());
        // null is allowed in any slot
        assert!(s.validate(&[Value::Null, Value::Null, Value::Null]).is_ok());
        // wrong arity
        assert!(s.validate(&[Value::Int(1)]).is_err());
        // wrong type
        assert!(s
            .validate(&[Value::Str("no".into()), Value::Float(2.0), Value::Str("c".into())])
            .is_err());
    }

    #[test]
    fn builder_sets_by_name_and_validates() {
        use crate::rel::Rel;
        let s = orders();
        let t = TupleBuilder::new(&s, Rel::R, 7)
            .set("order_id", 5i64)
            .unwrap()
            .set("customer", "alice")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.rel(), Rel::R);
        assert_eq!(t.get(0), Some(&Value::Int(5)));
        assert_eq!(t.get(1), Some(&Value::Null), "unset attribute stays null");
        assert_eq!(t.get(2), Some(&Value::Str("alice".into())));
    }

    #[test]
    fn builder_rejects_unknown_name_and_wrong_type() {
        use crate::rel::Rel;
        let s = orders();
        assert!(TupleBuilder::new(&s, Rel::R, 0).set("nope", 1i64).is_err());
        assert!(TupleBuilder::new(&s, Rel::R, 0).set("amount", "text").is_err());
    }

    #[test]
    fn clones_share_attribute_storage() {
        let a = orders();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.attrs, &b.attrs));
        assert_eq!(a, b);
    }
}
