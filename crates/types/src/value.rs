//! Attribute values carried by streaming tuples.
//!
//! The model (Definition 1) only requires that attribute values come from
//! typed domains with equality (for equi-joins) and a total order (for band
//! and other theta joins). `Value` provides exactly that, plus a stable
//! wire encoding.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// `Float` is stored as `f64` but compares with a total order (NaN sorts
/// last, like `f64::total_cmp`), so values are usable as B-tree keys in the
/// ordered sub-index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Absent value; equal only to itself, sorts first.
    Null,
}

/// The type of a [`Value`], used by schemas to declare attribute domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer domain.
    Int,
    /// 64-bit float domain.
    Float,
    /// UTF-8 string domain.
    Str,
    /// Boolean domain.
    Bool,
}

impl Value {
    /// The runtime type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null => None,
        }
    }

    /// Interpret this value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret this value as a float; integers widen losslessly enough
    /// for band-join arithmetic (the predicate module uses this to compute
    /// `|a - b| <= eps` across numeric types).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret this value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Heap + inline size of this value in bytes, used by the index memory
    /// accounting. Matches what the simulator charges per stored tuple.
    pub fn size_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.capacity(),
            _ => inline,
        }
    }

    /// Encode into a wire buffer (tag byte + payload).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Value::Int(i) => {
                buf.put_u8(0);
                buf.put_i64(*i);
            }
            Value::Float(f) => {
                buf.put_u8(1);
                buf.put_f64(*f);
            }
            Value::Str(s) => {
                buf.put_u8(2);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.put_u8(3);
                buf.put_u8(*b as u8);
            }
            Value::Null => buf.put_u8(4),
        }
    }

    /// Decode a value previously written by [`Value::encode`].
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Value> {
        if buf.remaining() < 1 {
            return Err(Error::Codec("empty buffer decoding Value".into()));
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                ensure_len(buf, 8)?;
                Ok(Value::Int(buf.get_i64()))
            }
            1 => {
                ensure_len(buf, 8)?;
                Ok(Value::Float(buf.get_f64()))
            }
            2 => {
                ensure_len(buf, 4)?;
                let len = buf.get_u32() as usize;
                ensure_len(buf, len)?;
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                String::from_utf8(bytes)
                    .map(Value::Str)
                    .map_err(|e| Error::Codec(format!("invalid utf8 in Str value: {e}")))
            }
            3 => {
                ensure_len(buf, 1)?;
                Ok(Value::Bool(buf.get_u8() != 0))
            }
            4 => Ok(Value::Null),
            t => Err(Error::Codec(format!("unknown Value tag {t}"))),
        }
    }

    /// Rank used to order values of different types deterministically:
    /// Null < Bool < numeric < Str.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

fn ensure_len<B: Buf>(buf: &B, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Codec(format!("buffer underrun: need {n} bytes, have {}", buf.remaining())))
    } else {
        Ok(())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values. Within the numeric rank, `Int` and
    /// `Float` compare by numeric value (so `Int(1) == Float(1.0)`), which
    /// lets mixed-type band joins behave as users expect.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    /// Hash consistent with `Eq`: numerically equal `Int`/`Float` hash the
    /// same (both hash their `f64` bit pattern after canonicalisation).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                // An Int hashes like the Float it compares equal to (Ord
                // compares Int vs Float through f64), preserving the
                // hash/eq consistency the hash sub-index relies on.
                state.write_u8(2);
                state.write_u64(canonical_f64_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(canonical_f64_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

/// Canonical bit pattern: all NaNs collapse to one, -0.0 == 0.0.
fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0f64.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    fn roundtrip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut b = buf.freeze();
        Value::decode(&mut b).expect("decode")
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for v in [
            Value::Int(-42),
            Value::Float(3.5),
            Value::Str("héllo".into()),
            Value::Bool(true),
            Value::Null,
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn decode_rejects_truncated_buffers() {
        let mut buf = BytesMut::new();
        Value::Str("abcdef".into()).encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(Value::decode(&mut partial).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut b = bytes::Bytes::from_static(&[99]);
        assert!(matches!(Value::decode(&mut b), Err(Error::Codec(_))));
    }

    #[test]
    fn int_and_float_compare_numerically() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
    }

    #[test]
    fn eq_implies_same_hash_for_mixed_numerics() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let n = Value::Float(f64::NAN);
        assert_eq!(n.cmp(&n), Ordering::Equal);
        assert_eq!(hash_of(&n), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
        // NB: total_cmp orders -0.0 < 0.0; our Ord inherits that. The hash
        // canonicalisation is deliberately coarser than Ord here and that is
        // fine because the hash index only requires eq-consistency for keys
        // produced by the same generator.
    }

    #[test]
    fn cross_type_order_is_total_and_antisymmetric() {
        let vals = [Value::Null, Value::Bool(false), Value::Int(0), Value::Str("a".into())];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn size_accounts_for_string_heap() {
        let small = Value::Int(1).size_bytes();
        let s = Value::Str("x".repeat(100)).size_bytes();
        assert!(s >= small + 100);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
