//! Join predicates `P(r, s)` and the probe plans they induce on stored
//! state.
//!
//! The join-biclique model supports arbitrary theta predicates because each
//! edge `R_i—S_j` can in principle compute a Cartesian product. In practice
//! the joiner asks the predicate *how to probe its index*: an equi predicate
//! yields an exact-key lookup, a band predicate a bounded range, an
//! inequality a half-open range, and anything else a full scan. That single
//! [`ProbePlan`] abstraction is what lets the chained index serve every
//! predicate class with the right sub-index type.

use crate::error::{Error, Result};
use crate::rel::Rel;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::Bound;

/// Comparison operators for theta joins, applied as `r.attr OP s.attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `r.attr < s.attr`
    Lt,
    /// `r.attr <= s.attr`
    Le,
    /// `r.attr > s.attr`
    Gt,
    /// `r.attr >= s.attr`
    Ge,
    /// `r.attr != s.attr`
    Ne,
}

impl CmpOp {
    /// Evaluate the operator on an `Ordering` of `r.attr` vs `s.attr`.
    #[inline]
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator seen from the other side: if `r OP s` then
    /// `s OP.flip() r`.
    #[inline]
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A binary join predicate over one attribute of each relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinPredicate {
    /// `r[r_attr] == s[s_attr]` — the low-selectivity class routed
    /// content-sensitively.
    Equi {
        /// Join attribute index on the R side.
        r_attr: usize,
        /// Join attribute index on the S side.
        s_attr: usize,
    },
    /// `|r[r_attr] − s[s_attr]| <= band` over numeric attributes.
    Band {
        /// Join attribute index on the R side.
        r_attr: usize,
        /// Join attribute index on the S side.
        s_attr: usize,
        /// Band half-width (inclusive).
        band: f64,
    },
    /// `r[r_attr] OP s[s_attr]` for an inequality operator.
    Theta {
        /// Join attribute index on the R side.
        r_attr: usize,
        /// Join attribute index on the S side.
        s_attr: usize,
        /// The comparison operator.
        op: CmpOp,
    },
    /// Always true — the full Cartesian product, used by tests and as the
    /// degenerate high-selectivity case.
    Cross,
}

/// How a joiner should probe stored state for matches of a probe value.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbePlan {
    /// Look up exactly this key (hash sub-index).
    ExactKey(Value),
    /// Scan the ordered sub-index over this key range.
    Range {
        /// Lower bound on the stored attribute.
        lo: Bound<Value>,
        /// Upper bound on the stored attribute.
        hi: Bound<Value>,
    },
    /// Compare against every stored tuple.
    FullScan,
}

impl JoinPredicate {
    /// The join attribute index consulted on tuples of `side`.
    ///
    /// `Cross` has no join attribute; index 0 is returned as a harmless
    /// placeholder (its value is never inspected).
    pub fn attr_of(&self, side: Rel) -> usize {
        let (r, s) = match *self {
            JoinPredicate::Equi { r_attr, s_attr } => (r_attr, s_attr),
            JoinPredicate::Band { r_attr, s_attr, .. } => (r_attr, s_attr),
            JoinPredicate::Theta { r_attr, s_attr, .. } => (r_attr, s_attr),
            JoinPredicate::Cross => (0, 0),
        };
        match side {
            Rel::R => r,
            Rel::S => s,
        }
    }

    /// True for predicates whose matches are confined to a single key —
    /// the class for which content-sensitive (hash) routing is applicable.
    pub fn is_equi(&self) -> bool {
        matches!(self, JoinPredicate::Equi { .. })
    }

    /// The routing key of `t` under this predicate (equi joins only).
    pub fn routing_key<'t>(&self, t: &'t Tuple) -> Option<&'t Value> {
        if self.is_equi() {
            t.get(self.attr_of(t.rel()))
        } else {
            None
        }
    }

    /// Evaluate `P(r, s)`.
    ///
    /// # Errors
    /// [`Error::Schema`] if a join attribute is out of range, or a band
    /// predicate meets a non-numeric value.
    pub fn evaluate(&self, r: &Tuple, s: &Tuple) -> Result<bool> {
        debug_assert_eq!(r.rel(), Rel::R);
        debug_assert_eq!(s.rel(), Rel::S);
        match self {
            JoinPredicate::Cross => Ok(true),
            JoinPredicate::Equi { r_attr, s_attr } => {
                Ok(r.require(*r_attr)? == s.require(*s_attr)?)
            }
            JoinPredicate::Theta { r_attr, s_attr, op } => {
                Ok(op.eval(r.require(*r_attr)?.cmp(s.require(*s_attr)?)))
            }
            JoinPredicate::Band { r_attr, s_attr, band } => {
                let a = numeric(r.require(*r_attr)?)?;
                let b = numeric(s.require(*s_attr)?)?;
                Ok((a - b).abs() <= *band)
            }
        }
    }

    /// Side-agnostic evaluation: `a` and `b` may be `(r, s)` or `(s, r)`.
    pub fn matches(&self, a: &Tuple, b: &Tuple) -> Result<bool> {
        if a.rel() == Rel::R {
            self.evaluate(a, b)
        } else {
            self.evaluate(b, a)
        }
    }

    /// The probe plan for finding stored tuples of `probe.rel().opposite()`
    /// that match `probe`.
    ///
    /// The plan's key bounds are expressed on the *stored* side's join
    /// attribute. Band plans over integer-keyed data still produce `Float`
    /// bounds; [`Value`]'s cross-numeric ordering makes that correct.
    pub fn probe_plan(&self, probe: &Tuple) -> Result<ProbePlan> {
        match self {
            JoinPredicate::Cross => Ok(ProbePlan::FullScan),
            JoinPredicate::Equi { .. } => {
                let v = probe.require(self.attr_of(probe.rel()))?;
                Ok(ProbePlan::ExactKey(v.clone()))
            }
            JoinPredicate::Band { band, .. } => {
                let v = numeric(probe.require(self.attr_of(probe.rel()))?)?;
                Ok(ProbePlan::Range {
                    lo: Bound::Included(Value::Float(v - band)),
                    hi: Bound::Included(Value::Float(v + band)),
                })
            }
            JoinPredicate::Theta { op, .. } => {
                // Predicate is r.attr OP s.attr. When the probe is from S we
                // need stored r with r.attr OP v; when from R we need stored
                // s with v OP s.attr, i.e. s.attr OP.flip() v.
                let v = probe.require(self.attr_of(probe.rel()))?.clone();
                let stored_op = match probe.rel() {
                    Rel::S => *op,
                    Rel::R => op.flip(),
                };
                Ok(match stored_op {
                    CmpOp::Lt => ProbePlan::Range { lo: Bound::Unbounded, hi: Bound::Excluded(v) },
                    CmpOp::Le => ProbePlan::Range { lo: Bound::Unbounded, hi: Bound::Included(v) },
                    CmpOp::Gt => ProbePlan::Range { lo: Bound::Excluded(v), hi: Bound::Unbounded },
                    CmpOp::Ge => ProbePlan::Range { lo: Bound::Included(v), hi: Bound::Unbounded },
                    CmpOp::Ne => ProbePlan::FullScan,
                })
            }
        }
    }
}

fn numeric(v: &Value) -> Result<f64> {
    v.as_f64().ok_or_else(|| Error::Schema(format!("band join needs numeric attribute, got {v}")))
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinPredicate::Equi { r_attr, s_attr } => write!(f, "R[{r_attr}] = S[{s_attr}]"),
            JoinPredicate::Band { r_attr, s_attr, band } => {
                write!(f, "|R[{r_attr}] - S[{s_attr}]| <= {band}")
            }
            JoinPredicate::Theta { r_attr, s_attr, op } => {
                write!(f, "R[{r_attr}] {op} S[{s_attr}]")
            }
            JoinPredicate::Cross => write!(f, "true"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ts: u64, k: i64) -> Tuple {
        Tuple::new(Rel::R, ts, vec![Value::Int(k)])
    }
    fn s(ts: u64, k: i64) -> Tuple {
        Tuple::new(Rel::S, ts, vec![Value::Int(k)])
    }

    #[test]
    fn equi_matches_equal_keys_only() {
        let p = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
        assert!(p.evaluate(&r(0, 5), &s(0, 5)).unwrap());
        assert!(!p.evaluate(&r(0, 5), &s(0, 6)).unwrap());
        assert!(p.is_equi());
        assert_eq!(p.routing_key(&r(0, 5)), Some(&Value::Int(5)));
    }

    #[test]
    fn band_matches_within_half_width_inclusive() {
        let p = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 2.0 };
        assert!(p.evaluate(&r(0, 5), &s(0, 7)).unwrap());
        assert!(p.evaluate(&r(0, 5), &s(0, 3)).unwrap());
        assert!(!p.evaluate(&r(0, 5), &s(0, 8)).unwrap());
        assert!(p.routing_key(&r(0, 5)).is_none());
    }

    #[test]
    fn theta_ops_follow_r_op_s_direction() {
        let lt = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt };
        assert!(lt.evaluate(&r(0, 1), &s(0, 2)).unwrap());
        assert!(!lt.evaluate(&r(0, 2), &s(0, 1)).unwrap());
        let ne = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Ne };
        assert!(ne.evaluate(&r(0, 1), &s(0, 2)).unwrap());
        assert!(!ne.evaluate(&r(0, 2), &s(0, 2)).unwrap());
    }

    #[test]
    fn matches_is_side_agnostic() {
        let lt = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Lt };
        let (a, b) = (r(0, 1), s(0, 2));
        assert_eq!(lt.matches(&a, &b).unwrap(), lt.matches(&b, &a).unwrap());
    }

    #[test]
    fn probe_plan_equi_is_exact_key() {
        let p = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
        assert_eq!(p.probe_plan(&s(0, 9)).unwrap(), ProbePlan::ExactKey(Value::Int(9)));
    }

    #[test]
    fn probe_plan_band_is_symmetric_range() {
        let p = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.5 };
        match p.probe_plan(&s(0, 10)).unwrap() {
            ProbePlan::Range { lo, hi } => {
                assert_eq!(lo, Bound::Included(Value::Float(8.5)));
                assert_eq!(hi, Bound::Included(Value::Float(11.5)));
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    /// The direction-flipping logic of theta probe plans is subtle enough to
    /// verify exhaustively against the direct evaluation.
    #[test]
    fn theta_probe_plans_agree_with_evaluation() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = JoinPredicate::Theta { r_attr: 0, s_attr: 0, op };
            for stored_k in -3..=3 {
                for probe_k in -3..=3 {
                    // Probe from S against stored R.
                    let stored = r(0, stored_k);
                    let probe = s(0, probe_k);
                    let expect = p.evaluate(&stored, &probe).unwrap();
                    let got = plan_contains(&p.probe_plan(&probe).unwrap(), &Value::Int(stored_k));
                    assert_eq!(got, expect, "{op:?} stored R={stored_k} probe S={probe_k}");
                    // Probe from R against stored S.
                    let stored = s(0, stored_k);
                    let probe = r(0, probe_k);
                    let expect = p.evaluate(&probe, &stored).unwrap();
                    let got = plan_contains(&p.probe_plan(&probe).unwrap(), &Value::Int(stored_k));
                    assert_eq!(got, expect, "{op:?} stored S={stored_k} probe R={probe_k}");
                }
            }
        }
    }

    fn plan_contains(plan: &ProbePlan, stored: &Value) -> bool {
        match plan {
            ProbePlan::ExactKey(k) => k == stored,
            ProbePlan::FullScan => true,
            ProbePlan::Range { lo, hi } => {
                let lo_ok = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(v) => stored >= v,
                    Bound::Excluded(v) => stored > v,
                };
                let hi_ok = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(v) => stored <= v,
                    Bound::Excluded(v) => stored < v,
                };
                lo_ok && hi_ok
            }
        }
    }

    #[test]
    fn band_rejects_non_numeric() {
        let p = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        let bad = Tuple::new(Rel::R, 0, vec![Value::Str("x".into())]);
        assert!(p.evaluate(&bad, &s(0, 1)).is_err());
    }

    #[test]
    fn out_of_range_attribute_is_schema_error() {
        let p = JoinPredicate::Equi { r_attr: 3, s_attr: 0 };
        assert!(matches!(p.evaluate(&r(0, 1), &s(0, 1)), Err(Error::Schema(_))));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            JoinPredicate::Band { r_attr: 1, s_attr: 2, band: 0.5 }.to_string(),
            "|R[1] - S[2]| <= 0.5"
        );
        assert_eq!(
            JoinPredicate::Theta { r_attr: 0, s_attr: 0, op: CmpOp::Ge }.to_string(),
            "R[0] >= S[0]"
        );
    }
}
