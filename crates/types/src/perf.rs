//! Queueing-model performance analyzer over registry scrape series.
//!
//! Turns the raw observability feeds — per-pod busy-CPU counters, joiner
//! work counters, queue-depth gauges and the tracer's per-hop wait/service
//! histograms — into the quantities a capacity controller reasons about:
//! per-unit arrival rate λ, service time Ŝ, service rate µ = 1/Ŝ and
//! utilization ρ = λ·Ŝ, plus a Little's-law (L = λW) consistency check on
//! the broker queues.
//!
//! To keep the prediction falsifiable, the scrape series is split at its
//! midpoint: the **calibration** half estimates the per-item service time
//! Ŝ from busy-CPU per processed item, and the **evaluation** half
//! supplies the arrival rate and the observed busy fraction. Predicted
//! utilization `λ_eval · Ŝ_cal` then only matches observed utilization
//! `busy_eval / elapsed_eval` when the service-time estimate actually
//! transfers across windows — under steady load they agree, under a
//! regime change they diverge. Series shorter than three scrapes fall
//! back to whole-window estimates (prediction degenerates to
//! observation; reports flag nothing, callers should sample more often).

use crate::metric_names as names;
use crate::registry::{MetricValue, RegistrySnapshot};
use serde::Serialize;
use std::collections::BTreeSet;

/// The analyzer's output: per-unit queueing estimates, per-hop latency
/// decomposition and per-queue Little's-law checks. Attached to
/// `SimOutcome` and `PipelineReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PerfReport {
    /// Wall/virtual span covered by the analyzed series (ms).
    pub elapsed_ms: u64,
    /// Per-joiner-unit service/utilization estimates, sorted by unit.
    pub units: Vec<UnitPerf>,
    /// Per-hop wait/service summary from the tracer histograms.
    pub hops: Vec<HopPerf>,
    /// Per-queue Little's-law consistency checks (empty when no broker
    /// queues are registered, e.g. in the virtual-time simulator).
    pub queues: Vec<QueueLaw>,
}

/// Queueing estimates for one joiner unit (pod).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct UnitPerf {
    /// Unit label, e.g. `R0` (the `pod=`/`joiner=` label value).
    pub unit: String,
    /// Work items (stores + probes) processed in the evaluation window.
    pub arrivals: u64,
    /// Arrival rate λ over the evaluation window (items/s).
    pub arrival_rate_tps: f64,
    /// Busy CPU accumulated in the evaluation window (µs).
    pub busy_us: u64,
    /// Estimated service time Ŝ per item from the calibration window (µs).
    pub service_us_per_item: f64,
    /// Estimated service rate µ = 1/Ŝ (items/s; 0 when Ŝ is unknown).
    pub service_rate_tps: f64,
    /// Predicted utilization ρ = λ_eval · Ŝ_cal.
    pub utilization_predicted: f64,
    /// Observed utilization: busy-CPU fraction of the evaluation window.
    pub utilization_observed: f64,
}

/// Wait/service latency summary for one trace hop kind.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct HopPerf {
    /// Hop label (`route`, `enqueue`, `dequeue`, `store`, `probe`, `emit`).
    pub hop: String,
    /// Samples in the wait histogram.
    pub samples: u64,
    /// Mean queue-wait time at this hop (ms).
    pub wait_ms_mean: f64,
    /// 95th-percentile queue-wait time at this hop (ms).
    pub wait_ms_p95: u64,
    /// Mean service time at this hop (ms).
    pub service_ms_mean: f64,
    /// 95th-percentile service time at this hop (ms).
    pub service_ms_p95: u64,
}

/// Little's-law check for one broker queue: with time-averaged depth L
/// and throughput λ, the implied mean sojourn W = L/λ should match the
/// tracer's observed dequeue-hop wait.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct QueueLaw {
    /// Queue name (the `queue=` label value).
    pub queue: String,
    /// Time-averaged queue depth L across the series.
    pub mean_depth: f64,
    /// Delivery throughput λ over the whole series (msgs/s).
    pub throughput_tps: f64,
    /// Implied mean sojourn W = L/λ (ms; 0 when λ is 0).
    pub implied_wait_ms: f64,
    /// Observed mean dequeue-hop wait from the tracer (ms), when traced.
    /// Tracer wait is pooled across queues, so this is an approximation.
    pub observed_wait_ms: Option<f64>,
    /// Relative residual `|implied − observed| / max(observed, 1 ms)`,
    /// when an observed wait exists.
    pub residual: Option<f64>,
}

/// Counter value for `name{label_key="label_val"}` in one snapshot.
fn counter_with(snap: &RegistrySnapshot, name: &str, label_key: &str, label_val: &str) -> u64 {
    snap.samples
        .iter()
        .find(|s| s.key.name == name && s.key.has_label(label_key, label_val))
        .and_then(|s| match &s.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

/// Gauge value for `name{label_key="label_val"}` in one snapshot.
fn gauge_with(snap: &RegistrySnapshot, name: &str, label_key: &str, label_val: &str) -> u64 {
    snap.samples
        .iter()
        .find(|s| s.key.name == name && s.key.has_label(label_key, label_val))
        .and_then(|s| match &s.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

/// All values of `label_key` across samples named `name`, sorted.
fn label_values(snap: &RegistrySnapshot, name: &str, label_key: &str) -> Vec<String> {
    let mut out = BTreeSet::new();
    for s in &snap.samples {
        if s.key.name != name {
            continue;
        }
        if let Some((_, v)) = s.key.labels.iter().find(|(k, _)| k == label_key) {
            out.insert(v.clone());
        }
    }
    out.into_iter().collect()
}

/// Stores + probes processed by `unit` as of one snapshot.
fn items_at(snap: &RegistrySnapshot, unit: &str) -> u64 {
    counter_with(snap, names::JOINER_STORED_TOTAL, "joiner", unit)
        + counter_with(snap, names::JOINER_PROBES_TOTAL, "joiner", unit)
}

/// Analyze a scrape series (sorted by scrape time, as `Sampler` emits it)
/// into a [`PerfReport`]. Empty or single-scrape series yield an empty
/// report with `elapsed_ms = 0`.
pub fn analyze(series: &[RegistrySnapshot]) -> PerfReport {
    let (Some(first), Some(last)) = (series.first(), series.last()) else {
        return PerfReport::default();
    };
    let elapsed_ms = last.at.saturating_sub(first.at);
    let mut report = PerfReport { elapsed_ms, ..PerfReport::default() };
    if elapsed_ms == 0 {
        return report;
    }
    // Midpoint split: [first, mid] calibrates Ŝ, [mid, last] evaluates.
    let mid = if series.len() >= 3 { &series[series.len() / 2] } else { first };

    for unit in label_values(last, names::POD_CPU_BUSY_US_TOTAL, "pod") {
        let busy_cal = counter_with(mid, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit)
            .saturating_sub(counter_with(first, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit));
        let items_cal = items_at(mid, &unit).saturating_sub(items_at(first, &unit));
        let busy_eval = counter_with(last, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit)
            .saturating_sub(counter_with(mid, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit));
        let items_eval = items_at(last, &unit).saturating_sub(items_at(mid, &unit));
        let eval_ms = last.at.saturating_sub(mid.at).max(1);

        // Degenerate calibration window (no work yet): fall back to the
        // whole series so Ŝ is still defined, at the cost of the
        // prediction collapsing toward the observation.
        let (s_busy, s_items) = if items_cal > 0 {
            (busy_cal, items_cal)
        } else {
            let busy_all = counter_with(last, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit)
                .saturating_sub(counter_with(first, names::POD_CPU_BUSY_US_TOTAL, "pod", &unit));
            let items_all = items_at(last, &unit).saturating_sub(items_at(first, &unit));
            (busy_all, items_all)
        };
        let service_us = if s_items > 0 { s_busy as f64 / s_items as f64 } else { 0.0 };
        let lambda = items_eval as f64 * 1_000.0 / eval_ms as f64;
        report.units.push(UnitPerf {
            unit,
            arrivals: items_eval,
            arrival_rate_tps: lambda,
            busy_us: busy_eval,
            service_us_per_item: service_us,
            service_rate_tps: if service_us > 0.0 { 1_000_000.0 / service_us } else { 0.0 },
            utilization_predicted: lambda * service_us / 1_000_000.0,
            utilization_observed: busy_eval as f64 / (eval_ms as f64 * 1_000.0),
        });
    }

    for hop in label_values(last, names::TRACE_HOP_WAIT_MS, "hop") {
        let hist = |name: &str| {
            last.samples
                .iter()
                .find(|s| s.key.name == name && s.key.has_label("hop", &hop))
                .and_then(|s| match &s.value {
                    MetricValue::Histogram(h) => Some(h.clone()),
                    _ => None,
                })
        };
        let (Some(wait), Some(service)) =
            (hist(names::TRACE_HOP_WAIT_MS), hist(names::TRACE_HOP_SERVICE_MS))
        else {
            continue;
        };
        if wait.count == 0 && service.count == 0 {
            continue;
        }
        report.hops.push(HopPerf {
            hop,
            samples: wait.count,
            wait_ms_mean: wait.mean,
            wait_ms_p95: wait.p95,
            service_ms_mean: service.mean,
            service_ms_p95: service.p95,
        });
    }

    let dequeue_wait = report
        .hops
        .iter()
        .find(|h| h.hop == "dequeue")
        .filter(|h| h.samples > 0)
        .map(|h| h.wait_ms_mean);
    for queue in label_values(last, names::QUEUE_DEPTH, "queue") {
        let depth_sum: u64 =
            series.iter().map(|s| gauge_with(s, names::QUEUE_DEPTH, "queue", &queue)).sum();
        let mean_depth = depth_sum as f64 / series.len() as f64;
        let delivered = counter_with(last, names::QUEUE_DELIVERED_TOTAL, "queue", &queue)
            .saturating_sub(counter_with(first, names::QUEUE_DELIVERED_TOTAL, "queue", &queue));
        let lambda = delivered as f64 * 1_000.0 / elapsed_ms as f64;
        let implied_wait_ms = if lambda > 0.0 { mean_depth / lambda * 1_000.0 } else { 0.0 };
        let residual = dequeue_wait.map(|w| (implied_wait_ms - w).abs() / w.max(1.0));
        report.queues.push(QueueLaw {
            queue,
            mean_depth,
            throughput_tps: lambda,
            implied_wait_ms,
            observed_wait_ms: dequeue_wait,
            residual,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_names as names;
    use crate::registry::MetricsRegistry;

    #[test]
    fn empty_series_yields_empty_report() {
        let report = analyze(&[]);
        assert_eq!(report, PerfReport::default());
        let reg = MetricsRegistry::new();
        let one = analyze(&[reg.scrape(5)]);
        assert_eq!(one.elapsed_ms, 0);
        assert!(one.units.is_empty());
    }

    #[test]
    fn steady_load_prediction_matches_observation() {
        let reg = MetricsRegistry::new();
        let busy = reg.counter(names::POD_CPU_BUSY_US_TOTAL, &[("pod", "R0")]);
        let stored = reg.counter(names::JOINER_STORED_TOTAL, &[("joiner", "R0")]);
        let probes = reg.counter(names::JOINER_PROBES_TOTAL, &[("joiner", "R0")]);
        let mut series = vec![reg.scrape(0)];
        // 1 000 items/s at 200 µs per item → ρ = 0.2, for 4 seconds.
        for t in 1..=4u64 {
            stored.add(500);
            probes.add(500);
            busy.add(200_000);
            series.push(reg.scrape(t * 1_000));
        }
        let report = analyze(&series);
        assert_eq!(report.elapsed_ms, 4_000);
        assert_eq!(report.units.len(), 1);
        let u = &report.units[0];
        assert_eq!(u.unit, "R0");
        assert!((u.arrival_rate_tps - 1_000.0).abs() < 1e-9, "λ={}", u.arrival_rate_tps);
        assert!((u.service_us_per_item - 200.0).abs() < 1e-9);
        assert!((u.service_rate_tps - 5_000.0).abs() < 1e-6);
        assert!((u.utilization_predicted - 0.2).abs() < 1e-9);
        assert!((u.utilization_observed - 0.2).abs() < 1e-9);
    }

    #[test]
    fn regime_change_makes_prediction_diverge() {
        // Calibration half sees 200 µs/item; evaluation half actually
        // runs at 400 µs/item — predicted ρ must be half the observed.
        let reg = MetricsRegistry::new();
        let busy = reg.counter(names::POD_CPU_BUSY_US_TOTAL, &[("pod", "S1")]);
        let stored = reg.counter(names::JOINER_STORED_TOTAL, &[("joiner", "S1")]);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=2u64 {
            stored.add(1_000);
            busy.add(200_000);
            series.push(reg.scrape(t * 1_000));
        }
        for t in 3..=4u64 {
            stored.add(1_000);
            busy.add(400_000);
            series.push(reg.scrape(t * 1_000));
        }
        let report = analyze(&series);
        let u = &report.units[0];
        assert!((u.utilization_predicted / u.utilization_observed - 0.5).abs() < 1e-9);
    }

    #[test]
    fn littles_law_on_a_steady_queue() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge(names::QUEUE_DEPTH, &[("queue", "q0")]);
        let delivered = reg.counter(names::QUEUE_DELIVERED_TOTAL, &[("queue", "q0")]);
        depth.set(5);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=4u64 {
            delivered.add(1_000);
            series.push(reg.scrape(t * 1_000));
        }
        let report = analyze(&series);
        assert_eq!(report.queues.len(), 1);
        let q = &report.queues[0];
        assert!((q.mean_depth - 5.0).abs() < 1e-9);
        assert!((q.throughput_tps - 1_000.0).abs() < 1e-9);
        // W = L/λ = 5/1000 s = 5 ms.
        assert!((q.implied_wait_ms - 5.0).abs() < 1e-9, "W={}", q.implied_wait_ms);
        assert!(q.observed_wait_ms.is_none(), "no tracer hops registered");
    }

    #[test]
    fn hop_summary_survives_into_the_report() {
        let reg = MetricsRegistry::new();
        let wait = reg.histogram(names::TRACE_HOP_WAIT_MS, &[("hop", "dequeue")]);
        let service = reg.histogram(names::TRACE_HOP_SERVICE_MS, &[("hop", "dequeue")]);
        for _ in 0..10 {
            wait.record(4);
            service.record(2);
        }
        let series = vec![reg.scrape(0), reg.scrape(1_000)];
        let report = analyze(&series);
        assert_eq!(report.hops.len(), 1);
        assert_eq!(report.hops[0].hop, "dequeue");
        assert_eq!(report.hops[0].samples, 10);
        assert!((report.hops[0].wait_ms_mean - 4.0).abs() < 1e-9);
        assert!((report.hops[0].service_ms_mean - 2.0).abs() < 1e-9);
    }
}
