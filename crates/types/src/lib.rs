//! Core domain types shared by every BiStream-RS crate.
//!
//! This crate is dependency-light by design: it defines the vocabulary of
//! the system — streaming [`tuple::Tuple`]s over [`schema::Schema`]s,
//! the [`time`] domain (including the virtual clock both harnesses run on),
//! [`predicate::JoinPredicate`]s, [`window::WindowSpec`]s, the ordering
//! protocol's [`punct::Punctuation`]s and sequence numbers, the
//! deterministic [`hash`] used for content-sensitive routing, and the
//! [`metrics`] primitives used to observe all of it.
//!
//! Nothing in here knows about brokers, joiners or clusters; those live in
//! the downstream crates.

#![warn(missing_docs)]

/// Runtime invariant auditor: the ordering protocol's guarantees, checked
/// mechanically while a harness runs.
pub mod audit;
/// Micro-batch frames: multi-tuple messages byte-compatible at batch 1.
pub mod batch;
/// The shared error and result types.
pub mod error;
/// Seeded fault plans for deterministic chaos testing.
pub mod fault;
/// Deterministic content hashing for routing decisions.
pub mod hash;
/// Bounded lock-free journal of typed runtime events.
pub mod journal;
/// Dependency-free byte-stable JSON codec shared by the artifact formats
/// (fault plans, breach bundles, the static analyzer's unsafe ledger).
pub mod jsonlite;
/// The single source of truth for metric series names.
pub mod metric_names;
/// Counter/gauge/histogram primitives.
pub mod metrics;
/// Queueing-model analyzer over registry scrape series.
pub mod perf;
/// Join predicates and probe plans.
pub mod predicate;
/// The ordering protocol's wire vocabulary: sequence numbers,
/// punctuations, purposes and stream messages.
pub mod punct;
/// Bounded flight recorder and byte-stable breach bundles.
pub mod recorder;
/// Labeled metrics registry and the shared observability bundle.
pub mod registry;
/// The two relations of a binary stream join.
pub mod rel;
/// Tuple schemas and builders.
pub mod schema;
/// Declarative SLOs with multi-window burn-rate alerting.
pub mod slo;
/// Prometheus text-format exporter — the one exposition-format emitter.
pub mod telemetry;
/// The discrete time domain and the wall/virtual clock abstraction.
pub mod time;
/// Per-tuple causal tracing with latency attribution.
pub mod trace;
/// Streaming tuples and join results.
pub mod tuple;
/// The dynamically typed attribute values tuples carry.
pub mod value;
/// Progress watchdog: stalls and deadlocks, distinct from idleness.
pub mod watchdog;
/// Window specifications and the Theorem-1 expiry rule.
pub mod window;

pub use audit::{Auditor, Violation};
pub use batch::{BatchEntry, BatchMessage, TupleBatch};
pub use error::{Error, Result};
pub use fault::{ChaosArtifact, ChaosProfile, FaultEvent, FaultPlan, TrialSpec};
pub use journal::{Event, EventJournal, EventKind};
pub use perf::{PerfReport, UnitPerf};
pub use predicate::JoinPredicate;
pub use punct::{Punctuation, RouterId, SeqNo, StreamMessage};
pub use recorder::{BreachBundle, FlightRecorder, RunHealth};
pub use registry::{MetricsRegistry, Observability, RegistrySnapshot, Sampler};
pub use slo::{BurnAlert, SloReport, SloSpec};
pub use watchdog::{StallVerdict, WatchdogConfig};
pub use rel::Rel;
pub use schema::{Schema, TupleBuilder};
pub use telemetry::TextExporter;
pub use time::{Clock, Ts, VirtualClock};
pub use trace::{chrome_trace_json, HopKind, Span, Trace, TraceId, Tracer};
pub use tuple::Tuple;
pub use value::Value;
pub use window::WindowSpec;
