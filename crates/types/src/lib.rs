//! Core domain types shared by every BiStream-RS crate.
//!
//! This crate is dependency-light by design: it defines the vocabulary of
//! the system — streaming [`tuple::Tuple`]s over [`schema::Schema`]s,
//! the [`time`] domain (including the virtual clock both harnesses run on),
//! [`predicate::JoinPredicate`]s, [`window::WindowSpec`]s, the ordering
//! protocol's [`punct::Punctuation`]s and sequence numbers, the
//! deterministic [`hash`] used for content-sensitive routing, and the
//! [`metrics`] primitives used to observe all of it.
//!
//! Nothing in here knows about brokers, joiners or clusters; those live in
//! the downstream crates.

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod hash;
pub mod journal;
pub mod metrics;
pub mod predicate;
pub mod punct;
pub mod registry;
pub mod rel;
pub mod schema;
pub mod time;
pub mod trace;
pub mod tuple;
pub mod value;
pub mod window;

pub use batch::{BatchEntry, BatchMessage, TupleBatch};
pub use error::{Error, Result};
pub use journal::{Event, EventJournal, EventKind};
pub use predicate::JoinPredicate;
pub use punct::{Punctuation, RouterId, SeqNo, StreamMessage};
pub use registry::{MetricsRegistry, Observability, RegistrySnapshot, Sampler};
pub use rel::Rel;
pub use schema::{Schema, TupleBuilder};
pub use time::{Clock, Ts, VirtualClock};
pub use trace::{chrome_trace_json, HopKind, Span, Trace, TraceId, Tracer};
pub use tuple::Tuple;
pub use value::Value;
pub use window::WindowSpec;
