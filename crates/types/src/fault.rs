//! Seeded fault plans for deterministic chaos testing.
//!
//! A [`FaultPlan`] is a *pure function of `(seed, step)`*: it is generated
//! once from a seed and a [`ChaosProfile`], and afterwards every question
//! the scheduler asks ("is this channel delayed at step 17?") is answered
//! by inspecting the plan's event list against a logical step counter —
//! never a wall clock. Replaying the same plan against the same trial
//! therefore reproduces the exact interleaving, byte for byte.
//!
//! The fault vocabulary mirrors what a distributed deployment of the
//! join-biclique can actually suffer, restricted to faults that keep the
//! pairwise-FIFO channel axiom (Definition 8) intact:
//!
//! - **Delay** — a router→joiner channel stops delivering for a window of
//!   steps; messages queue in order and drain afterwards.
//! - **Partition** — a router→joiner channel *refuses sends* for a window;
//!   the sender must retry (loss = unbounded delay + retry).
//! - **Queue stall** — a broker queue rejects pushes for a window,
//!   exercising backpressure paths.
//! - **Crash** — a joiner unit loses all in-memory state at a step and must
//!   re-hydrate from its last snapshot plus router retransmission.
//!
//! Plans, trial parameters and auditor verdicts round-trip through a
//! dependency-free JSON codec so a failing run can be persisted under
//! `results/chaos/<seed>.json` and re-executed by a plain `#[test]`.

use crate::error::{Error, Result};
use crate::jsonlite::{json_str, Json};
use std::fmt;

/// Artifact format version; bumped on any incompatible schema change.
pub const ARTIFACT_VERSION: u32 = 1;

/// A tiny deterministic PRNG (SplitMix64).
///
/// Used for plan generation and scheduler tie-breaking so that `types`
/// needs no external `rand` dependency and every draw is a pure function
/// of the seed. The constants are Vigna's reference parameters.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..bound` (`bound = 0` yields 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// One stateless hash draw: a pure function of `(seed, step)`, used where
/// a scheduler needs a reproducible choice without threading a generator.
pub fn mix(seed: u64, step: u64) -> u64 {
    SplitMix64::new(seed ^ step.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// A single injected fault.
///
/// Units and routers are referred to by raw index (`JoinerId.0` /
/// `RouterId.0`) so the plan type stays free of `core` dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The `router → unit` channel delivers nothing in
    /// `from_step..until_step`; queued messages drain, in order, after.
    DelayChannel {
        /// Router index whose outbound channel is delayed.
        router: u32,
        /// Destination joiner-unit index.
        unit: u32,
        /// First step (inclusive) at which delivery is suppressed.
        from_step: u64,
        /// First step at which delivery resumes (exclusive end).
        until_step: u64,
    },
    /// The `router → unit` channel refuses sends in
    /// `from_step..until_step`; the router's retry queue must re-offer.
    Partition {
        /// Router index whose sends are refused.
        router: u32,
        /// Destination joiner-unit index.
        unit: u32,
        /// First step (inclusive) at which sends are refused.
        from_step: u64,
        /// First step at which sends are accepted again (exclusive end).
        until_step: u64,
    },
    /// The named broker queue rejects pushes in `from_step..until_step`.
    StallQueue {
        /// Broker queue name.
        queue: String,
        /// First step (inclusive) of the stall window.
        from_step: u64,
        /// First step after the stall window (exclusive end).
        until_step: u64,
    },
    /// Joiner `unit` loses all in-memory state at `at_step` and must be
    /// restored from its last checkpoint plus router retransmission.
    CrashUnit {
        /// Joiner-unit index that crashes.
        unit: u32,
        /// Step at which the crash fires.
        at_step: u64,
    },
}

impl FaultEvent {
    /// A short tag naming the event kind (also the JSON discriminator).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::DelayChannel { .. } => "delay_channel",
            FaultEvent::Partition { .. } => "partition",
            FaultEvent::StallQueue { .. } => "stall_queue",
            FaultEvent::CrashUnit { .. } => "crash_unit",
        }
    }

    /// The last step at which this event can still have an effect.
    pub fn horizon(&self) -> u64 {
        match self {
            FaultEvent::DelayChannel { until_step, .. }
            | FaultEvent::Partition { until_step, .. }
            | FaultEvent::StallQueue { until_step, .. } => *until_step,
            FaultEvent::CrashUnit { at_step, .. } => *at_step,
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::DelayChannel { router, unit, from_step, until_step } => {
                write!(f, "delay r{router}→u{unit} @[{from_step},{until_step})")
            }
            FaultEvent::Partition { router, unit, from_step, until_step } => {
                write!(f, "partition r{router}→u{unit} @[{from_step},{until_step})")
            }
            FaultEvent::StallQueue { queue, from_step, until_step } => {
                write!(f, "stall `{queue}` @[{from_step},{until_step})")
            }
            FaultEvent::CrashUnit { unit, at_step } => write!(f, "crash u{unit} @{at_step}"),
        }
    }
}

/// Generation parameters for one chaos scenario.
///
/// A profile bounds what kinds of faults a generated plan may contain and
/// how dense they are; the seed decides where exactly they land.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Scenario name (e.g. `"delay"`, `"partition"`, `"crash"`, `"mixed"`).
    pub name: String,
    /// Router indexes faults may target.
    pub routers: Vec<u32>,
    /// Joiner-unit indexes faults may target.
    pub units: Vec<u32>,
    /// Broker queue names stall events may target (empty = no stalls).
    pub queues: Vec<String>,
    /// Number of channel-delay windows to draw.
    pub delays: usize,
    /// Number of partition windows to draw.
    pub partitions: usize,
    /// Number of crash events to draw.
    pub crashes: usize,
    /// Number of queue-stall windows to draw.
    pub stalls: usize,
    /// Latest step at which any drawn window may start.
    pub horizon: u64,
    /// Maximum length, in steps, of a delay/partition/stall window.
    pub max_window: u64,
}

impl ChaosProfile {
    /// A named profile over `routers × units` with everything else zeroed.
    pub fn new(name: &str, routers: Vec<u32>, units: Vec<u32>) -> ChaosProfile {
        ChaosProfile {
            name: name.to_owned(),
            routers,
            units,
            queues: Vec::new(),
            delays: 0,
            partitions: 0,
            crashes: 0,
            stalls: 0,
            horizon: 256,
            max_window: 32,
        }
    }
}

/// A seeded, replayable schedule of fault events.
///
/// Determinism contract: `FaultPlan::generate(seed, profile)` is a pure
/// function, and every query method is a pure function of the plan and the
/// logical step — no wall clock, no global state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// Scenario name the plan was generated for.
    pub scenario: String,
    /// The injected faults, in generation order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; trials run fault-free).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generate a plan for `profile` from `seed`.
    pub fn generate(seed: u64, profile: &ChaosProfile) -> FaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5_u64);
        let mut events = Vec::new();
        let pick = |rng: &mut SplitMix64, xs: &[u32]| -> u32 {
            if xs.is_empty() {
                0
            } else {
                xs[rng.next_below(xs.len() as u64) as usize]
            }
        };
        for _ in 0..profile.delays {
            let from = rng.next_below(profile.horizon);
            let len = 1 + rng.next_below(profile.max_window.max(1));
            events.push(FaultEvent::DelayChannel {
                router: pick(&mut rng, &profile.routers),
                unit: pick(&mut rng, &profile.units),
                from_step: from,
                until_step: from + len,
            });
        }
        for _ in 0..profile.partitions {
            let from = rng.next_below(profile.horizon);
            let len = 1 + rng.next_below(profile.max_window.max(1));
            events.push(FaultEvent::Partition {
                router: pick(&mut rng, &profile.routers),
                unit: pick(&mut rng, &profile.units),
                from_step: from,
                until_step: from + len,
            });
        }
        for _ in 0..profile.stalls {
            if profile.queues.is_empty() {
                break;
            }
            let from = rng.next_below(profile.horizon);
            let len = 1 + rng.next_below(profile.max_window.max(1));
            let q = rng.next_below(profile.queues.len() as u64) as usize;
            events.push(FaultEvent::StallQueue {
                queue: profile.queues[q].clone(),
                from_step: from,
                until_step: from + len,
            });
        }
        for _ in 0..profile.crashes {
            events.push(FaultEvent::CrashUnit {
                unit: pick(&mut rng, &profile.units),
                at_step: rng.next_below(profile.horizon),
            });
        }
        FaultPlan { seed, scenario: profile.name.clone(), events }
    }

    /// True when some delay window suppresses `router → unit` at `step`.
    pub fn delays_channel(&self, router: u32, unit: u32, step: u64) -> bool {
        self.events.iter().any(|e| match e {
            FaultEvent::DelayChannel { router: r, unit: u, from_step, until_step } => {
                *r == router && *u == unit && (*from_step..*until_step).contains(&step)
            }
            _ => false,
        })
    }

    /// True when some partition refuses sends on `router → unit` at `step`.
    pub fn partitions_channel(&self, router: u32, unit: u32, step: u64) -> bool {
        self.events.iter().any(|e| match e {
            FaultEvent::Partition { router: r, unit: u, from_step, until_step } => {
                *r == router && *u == unit && (*from_step..*until_step).contains(&step)
            }
            _ => false,
        })
    }

    /// True when some stall window blocks pushes to `queue` at `step`.
    pub fn queue_stalled(&self, queue: &str, step: u64) -> bool {
        self.events.iter().any(|e| match e {
            FaultEvent::StallQueue { queue: q, from_step, until_step } => {
                q == queue && (*from_step..*until_step).contains(&step)
            }
            _ => false,
        })
    }

    /// Units whose crash fires exactly at `step`, in plan order.
    pub fn crashes_at(&self, step: u64) -> Vec<u32> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashUnit { unit, at_step } if *at_step == step => Some(*unit),
                _ => None,
            })
            .collect()
    }

    /// The last step at which any event can still have an effect; beyond
    /// it a scheduler may ignore the plan entirely (termination guard).
    pub fn horizon(&self) -> u64 {
        self.events.iter().map(FaultEvent::horizon).max().unwrap_or(0)
    }

    /// Serialize to the artifact JSON fragment (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        plan_json(self, &mut s);
        s
    }

    /// Parse a plan from the JSON produced by [`FaultPlan::to_json`].
    pub fn from_json(text: &str) -> Result<FaultPlan> {
        let v = Json::parse(text)?;
        plan_from_json(&v)
    }
}

/// The engine/workload parameters of one chaos trial, captured so a replay
/// reconstructs the exact run the plan failed against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// Number of matched R/S tuple pairs fed through the engine.
    pub pairs: u32,
    /// Punctuate (and advance virtual time) every this many pairs.
    pub punct_every: u32,
    /// Checkpoint every unit every this many punctuation rounds.
    pub checkpoint_every: u32,
    /// Router count on the engine.
    pub routers: u32,
    /// Joiner units per side.
    pub joiners_per_side: u32,
    /// Micro-batch size for router frames.
    pub batch_size: u32,
    /// Seed for the engine's own (routing) RNG.
    pub engine_seed: u64,
    /// Seeded-bug selector: `"none"`, `"skip_rehydrate"` or
    /// `"corrupt_frontier"` — interpreted by the trial runner.
    pub bug: String,
}

impl Default for TrialSpec {
    fn default() -> TrialSpec {
        TrialSpec {
            pairs: 48,
            punct_every: 4,
            checkpoint_every: 2,
            routers: 1,
            joiners_per_side: 2,
            batch_size: 1,
            engine_seed: 7,
            bug: "none".to_owned(),
        }
    }
}

/// A complete, replayable record of one failing (or passing) chaos run.
///
/// Written to `results/chaos/<seed>.json` by the explorer; re-executed
/// byte-for-byte by `tests/chaos.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosArtifact {
    /// Artifact schema version ([`ARTIFACT_VERSION`]).
    pub version: u32,
    /// Scenario the plan was drawn from.
    pub scenario: String,
    /// Seed the plan was generated with.
    pub seed: u64,
    /// The (possibly minimized) fault plan.
    pub plan: FaultPlan,
    /// The trial parameters the plan ran against.
    pub trial: TrialSpec,
    /// Auditor violations observed (empty for a passing run).
    pub violations: Vec<String>,
}

impl ChaosArtifact {
    /// Serialize to pretty-printed JSON with stable key order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {},\n", self.version));
        s.push_str(&format!("  \"scenario\": {},\n", json_str(&self.scenario)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"trial\": {");
        let t = &self.trial;
        s.push_str(&format!(
            "\"pairs\": {}, \"punct_every\": {}, \"checkpoint_every\": {}, \
             \"routers\": {}, \"joiners_per_side\": {}, \"batch_size\": {}, \
             \"engine_seed\": {}, \"bug\": {}",
            t.pairs,
            t.punct_every,
            t.checkpoint_every,
            t.routers,
            t.joiners_per_side,
            t.batch_size,
            t.engine_seed,
            json_str(&t.bug)
        ));
        s.push_str("},\n");
        s.push_str("  \"plan\": ");
        plan_json(&self.plan, &mut s);
        s.push_str(",\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(v));
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse an artifact produced by [`ChaosArtifact::to_json`].
    pub fn from_json(text: &str) -> Result<ChaosArtifact> {
        let v = Json::parse(text)?;
        let version = v.field_u64("version")? as u32;
        if version != ARTIFACT_VERSION {
            return Err(Error::Fault(format!(
                "artifact version {version} unsupported (expected {ARTIFACT_VERSION})"
            )));
        }
        let t = v.field("trial")?;
        let trial = TrialSpec {
            pairs: t.field_u64("pairs")? as u32,
            punct_every: t.field_u64("punct_every")? as u32,
            checkpoint_every: t.field_u64("checkpoint_every")? as u32,
            routers: t.field_u64("routers")? as u32,
            joiners_per_side: t.field_u64("joiners_per_side")? as u32,
            batch_size: t.field_u64("batch_size")? as u32,
            engine_seed: t.field_u64("engine_seed")?,
            bug: t.field_str("bug")?.to_owned(),
        };
        let plan = plan_from_json(v.field("plan")?)?;
        let violations = v
            .field("violations")?
            .as_array()?
            .iter()
            .map(|j| j.as_str().map(str::to_owned))
            .collect::<Result<Vec<_>>>()?;
        Ok(ChaosArtifact {
            version,
            scenario: v.field_str("scenario")?.to_owned(),
            seed: v.field_u64("seed")?,
            plan,
            trial,
            violations,
        })
    }
}

fn plan_json(plan: &FaultPlan, s: &mut String) {
    s.push_str(&format!(
        "{{\"seed\": {}, \"scenario\": {}, \"events\": [",
        plan.seed,
        json_str(&plan.scenario)
    ));
    for (i, e) in plan.events.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match e {
            FaultEvent::DelayChannel { router, unit, from_step, until_step } => {
                s.push_str(&format!(
                    "{{\"kind\": \"delay_channel\", \"router\": {router}, \"unit\": {unit}, \
                     \"from_step\": {from_step}, \"until_step\": {until_step}}}"
                ));
            }
            FaultEvent::Partition { router, unit, from_step, until_step } => {
                s.push_str(&format!(
                    "{{\"kind\": \"partition\", \"router\": {router}, \"unit\": {unit}, \
                     \"from_step\": {from_step}, \"until_step\": {until_step}}}"
                ));
            }
            FaultEvent::StallQueue { queue, from_step, until_step } => {
                s.push_str(&format!(
                    "{{\"kind\": \"stall_queue\", \"queue\": {}, \
                     \"from_step\": {from_step}, \"until_step\": {until_step}}}",
                    json_str(queue)
                ));
            }
            FaultEvent::CrashUnit { unit, at_step } => {
                s.push_str(&format!(
                    "{{\"kind\": \"crash_unit\", \"unit\": {unit}, \"at_step\": {at_step}}}"
                ));
            }
        }
    }
    s.push_str("]}");
}

fn plan_from_json(v: &Json) -> Result<FaultPlan> {
    let mut events = Vec::new();
    for e in v.field("events")?.as_array()? {
        let ev = match e.field_str("kind")? {
            "delay_channel" => FaultEvent::DelayChannel {
                router: e.field_u64("router")? as u32,
                unit: e.field_u64("unit")? as u32,
                from_step: e.field_u64("from_step")?,
                until_step: e.field_u64("until_step")?,
            },
            "partition" => FaultEvent::Partition {
                router: e.field_u64("router")? as u32,
                unit: e.field_u64("unit")? as u32,
                from_step: e.field_u64("from_step")?,
                until_step: e.field_u64("until_step")?,
            },
            "stall_queue" => FaultEvent::StallQueue {
                queue: e.field_str("queue")?.to_owned(),
                from_step: e.field_u64("from_step")?,
                until_step: e.field_u64("until_step")?,
            },
            "crash_unit" => FaultEvent::CrashUnit {
                unit: e.field_u64("unit")? as u32,
                at_step: e.field_u64("at_step")?,
            },
            other => return Err(Error::Fault(format!("unknown fault kind `{other}`"))),
        };
        events.push(ev);
    }
    Ok(FaultPlan {
        seed: v.field_u64("seed")?,
        scenario: v.field_str("scenario")?.to_owned(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ChaosProfile {
        let mut p = ChaosProfile::new("mixed", vec![0, 1], vec![0, 1, 2, 3]);
        p.queues = vec!["q0".to_owned()];
        p.delays = 2;
        p.partitions = 2;
        p.crashes = 1;
        p.stalls = 1;
        p
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = profile();
        let a = FaultPlan::generate(42, &p);
        let b = FaultPlan::generate(42, &p);
        let c = FaultPlan::generate(43, &p);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 6);
    }

    #[test]
    fn queries_are_pure_functions_of_step() {
        let plan = FaultPlan {
            seed: 0,
            scenario: "hand".into(),
            events: vec![
                FaultEvent::DelayChannel { router: 0, unit: 1, from_step: 5, until_step: 8 },
                FaultEvent::Partition { router: 1, unit: 0, from_step: 3, until_step: 4 },
                FaultEvent::StallQueue { queue: "q".into(), from_step: 2, until_step: 9 },
                FaultEvent::CrashUnit { unit: 2, at_step: 6 },
            ],
        };
        assert!(plan.delays_channel(0, 1, 5));
        assert!(plan.delays_channel(0, 1, 7));
        assert!(!plan.delays_channel(0, 1, 8));
        assert!(!plan.delays_channel(1, 1, 6));
        assert!(plan.partitions_channel(1, 0, 3));
        assert!(!plan.partitions_channel(1, 0, 4));
        assert!(plan.queue_stalled("q", 2));
        assert!(!plan.queue_stalled("r", 2));
        assert_eq!(plan.crashes_at(6), vec![2]);
        assert!(plan.crashes_at(5).is_empty());
        assert_eq!(plan.horizon(), 9);
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let plan = FaultPlan::generate(9, &profile());
        let artifact = ChaosArtifact {
            version: ARTIFACT_VERSION,
            scenario: "mixed".into(),
            seed: 9,
            plan,
            trial: TrialSpec { bug: "skip_rehydrate".into(), ..TrialSpec::default() },
            violations: vec!["oracle: missing \"x\" ⋈ \"y\"".into()],
        };
        let text = artifact.to_json();
        let back = ChaosArtifact::from_json(&text).expect("parse");
        assert_eq!(artifact, back);
        // Byte-stable: encoding the parsed artifact reproduces the text.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn corrupt_artifacts_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "[1,2",
            "{\"version\": 99}",
            "{\"version\": \"x\"}",
            "{\"version\": 1, \"scenario\": 3}",
            "nonsense",
            "{\"version\": 1} trailing",
        ] {
            assert!(ChaosArtifact::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn splitmix_is_stable() {
        let mut rng = SplitMix64::new(0);
        // First draw of SplitMix64 from seed 0 (reference value).
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
    }
}
