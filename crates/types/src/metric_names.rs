//! The single source of truth for metric series names.
//!
//! Every `bistream_*` series name used by production code lives here as a
//! `&'static str` constant. Centralising the names prevents registry/series
//! drift: a dashboards-vs-code typo becomes a compile error instead of a
//! silently empty panel, and `cargo xtask lint` rejects any `"bistream_…"`
//! string literal that appears outside this module (test code excepted).
//!
//! Naming follows the Prometheus conventions the registry renders:
//! `_total` for monotone counters, unit suffixes (`_ms`, `_bytes`, `_tps`)
//! for gauges and histograms.

// ---------------------------------------------------------------- routers

/// Tuples routed, per router.
pub const ROUTER_TUPLES_TOTAL: &str = "bistream_router_tuples_total";
/// Store+join copies fanned out, per router.
pub const ROUTER_COPIES_TOTAL: &str = "bistream_router_copies_total";
/// Punctuations emitted, per router.
pub const ROUTER_PUNCTUATIONS_TOTAL: &str = "bistream_router_punctuations_total";
/// Routing decisions taken, per router and strategy.
pub const ROUTER_ROUTE_DECISIONS_TOTAL: &str = "bistream_router_route_decisions_total";
/// Observed routing throughput, tuples per second.
pub const ROUTER_RATE_TPS: &str = "bistream_router_rate_tps";
/// Copies sent to one destination joiner, per (router, dest).
pub const ROUTER_DEST_COPIES_TOTAL: &str = "bistream_router_dest_copies_total";
/// Distribution of emitted batch-frame sizes (tuples per frame).
pub const BATCH_SIZE: &str = "bistream_batch_size";
/// Copies sitting in a router's unflushed per-destination batches
/// (backpressure: work admitted but not yet handed to the broker).
pub const ROUTER_PENDING_COPIES: &str = "bistream_router_pending_copies";
/// Hot-tier size of the adaptive router's store plan (0 under the static
/// strategies).
pub const ROUTER_HOT_KEYS: &str = "bistream_router_hot_keys";
/// Cold-tier ContRand subgroup count `d` of the adaptive store plan.
pub const ROUTER_ADAPTIVE_SUBGROUPS: &str = "bistream_router_adaptive_subgroups";
/// Punctuation-fenced plan adoptions performed, per router.
pub const ROUTER_STRATEGY_SWITCHES_TOTAL: &str = "bistream_router_strategy_switches_total";

// ---------------------------------------------------------------- joiners

/// Tuples installed into a joiner's window index.
pub const JOINER_STORED_TOTAL: &str = "bistream_joiner_stored_total";
/// Probe operations executed by a joiner.
pub const JOINER_PROBES_TOTAL: &str = "bistream_joiner_probes_total";
/// Join results emitted by a joiner.
pub const JOINER_RESULTS_TOTAL: &str = "bistream_joiner_results_total";
/// Candidate tuples inspected during probes.
pub const JOINER_CANDIDATES_TOTAL: &str = "bistream_joiner_candidates_total";
/// Tuples expired from a joiner's index.
pub const JOINER_EXPIRED_TOTAL: &str = "bistream_joiner_expired_total";
/// Live tuples currently stored by a joiner.
pub const JOINER_STORED_TUPLES: &str = "bistream_joiner_stored_tuples";
/// High-watermark depth of the reorder buffer.
pub const JOINER_REORDER_DEPTH_MAX: &str = "bistream_joiner_reorder_depth_max";
/// Current depth of the reorder buffer (tuples buffered awaiting the
/// watermark — the joiner-side backpressure signal).
pub const JOINER_REORDER_DEPTH: &str = "bistream_joiner_reorder_depth";
/// Spread between the fastest and slowest router frontier.
pub const JOINER_FRONTIER_LAG: &str = "bistream_joiner_frontier_lag";
/// Result latency histogram (virtual or wall ms), per joiner.
pub const JOINER_RESULT_LATENCY_MS: &str = "bistream_joiner_result_latency_ms";
/// Current reorder watermark (minimum router frontier) of a joiner — the
/// progress signal the stall watchdog tracks tick-over-tick.
pub const JOINER_WATERMARK: &str = "bistream_joiner_watermark";

// ---------------------------------------------------------------- index

/// Live tuples across all sub-indexes of one chained index.
pub const INDEX_LIVE_TUPLES: &str = "bistream_index_live_tuples";
/// Live bytes across all sub-indexes of one chained index.
pub const INDEX_LIVE_BYTES: &str = "bistream_index_live_bytes";
/// Sub-indexes currently chained (active + archived).
pub const INDEX_SUB_INDEXES: &str = "bistream_index_sub_indexes";
/// Tuples sealed into the archive.
pub const INDEX_ARCHIVED_TUPLES_TOTAL: &str = "bistream_index_archived_tuples_total";
/// Bytes sealed into the archive.
pub const INDEX_ARCHIVED_BYTES_TOTAL: &str = "bistream_index_archived_bytes_total";
/// Tuples discarded wholesale under Theorem 1.
pub const INDEX_EXPIRED_TUPLES_TOTAL: &str = "bistream_index_expired_tuples_total";
/// Bytes discarded wholesale under Theorem 1.
pub const INDEX_EXPIRED_BYTES_TOTAL: &str = "bistream_index_expired_bytes_total";
/// Whole sub-indexes discarded under Theorem 1.
pub const INDEX_EXPIRED_SUB_INDEXES_TOTAL: &str = "bistream_index_expired_sub_indexes_total";
/// Sub-indexes visited per probe (histogram).
pub const INDEX_PROBE_SUB_INDEXES: &str = "bistream_index_probe_sub_indexes";
/// Candidates inspected per probe (histogram).
pub const INDEX_PROBE_CANDIDATES: &str = "bistream_index_probe_candidates";

// ---------------------------------------------------------------- broker

/// Messages published to a queue.
pub const QUEUE_PUBLISHED_TOTAL: &str = "bistream_queue_published_total";
/// Messages delivered from a queue.
pub const QUEUE_DELIVERED_TOTAL: &str = "bistream_queue_delivered_total";
/// Messages requeued after an unacknowledged delivery.
pub const QUEUE_REDELIVERED_TOTAL: &str = "bistream_queue_redelivered_total";
/// Messages currently buffered in a queue.
pub const QUEUE_DEPTH: &str = "bistream_queue_depth";
/// Publishes that blocked on a full queue.
pub const QUEUE_BACKPRESSURE_BLOCKS_TOTAL: &str = "bistream_queue_backpressure_blocks_total";
/// High-watermark of messages buffered in a queue.
pub const QUEUE_DEPTH_MAX: &str = "bistream_queue_depth_max";
/// Cumulative milliseconds publishers spent parked on a full or stalled
/// queue (backpressure stall time).
pub const QUEUE_STALL_MS_TOTAL: &str = "bistream_queue_stall_ms_total";

// ---------------------------------------------------------------- tracing

/// Traces completed (all branches closed).
pub const TRACE_COMPLETED_TOTAL: &str = "bistream_trace_completed_total";
/// Completed traces evicted before being drained.
pub const TRACE_DROPPED_TOTAL: &str = "bistream_trace_dropped_total";
/// Per-hop service time histogram (ms).
pub const TRACE_HOP_SERVICE_MS: &str = "bistream_trace_hop_service_ms";
/// Per-hop queue-wait time histogram (ms).
pub const TRACE_HOP_WAIT_MS: &str = "bistream_trace_hop_wait_ms";
/// End-to-end latency histogram of completed traces (ms).
pub const TRACE_E2E_LATENCY_MS: &str = "bistream_trace_e2e_latency_ms";
/// Journal events evicted because the ring was full.
pub const JOURNAL_DROPPED_TOTAL: &str = "bistream_journal_dropped_total";

// ------------------------------------------------------- engine / cluster

/// Tuples ingested by an engine or pipeline.
pub const TUPLES_INGESTED_TOTAL: &str = "bistream_tuples_ingested_total";
/// Join results produced engine-wide.
pub const JOIN_RESULTS_TOTAL: &str = "bistream_join_results_total";
/// Store/join copies produced engine-wide.
pub const COPIES_TOTAL: &str = "bistream_copies_total";
/// Punctuations processed engine-wide.
pub const PUNCTUATIONS_TOTAL: &str = "bistream_punctuations_total";
/// End-to-end result latency histogram (ms).
pub const RESULT_LATENCY_MS: &str = "bistream_result_latency_ms";
/// Median result latency (legacy single-engine scrape endpoint).
pub const RESULT_LATENCY_MS_P50: &str = "bistream_result_latency_ms_p50";
/// 99th-percentile result latency (legacy single-engine scrape endpoint).
pub const RESULT_LATENCY_MS_P99: &str = "bistream_result_latency_ms_p99";
/// Busy CPU microseconds accounted to a pod.
pub const POD_CPU_BUSY_US_TOTAL: &str = "bistream_pod_cpu_busy_us_total";
/// Resident bytes accounted to a pod.
pub const POD_MEMORY_BYTES: &str = "bistream_pod_memory_bytes";
/// Replicated tuples per join-matrix cell.
pub const MATRIX_CELL_REPLICATED_TOTAL: &str = "bistream_matrix_cell_replicated_total";

// ------------------------------------------------------- slo / alerting

// SLO objective and alert identifiers follow the same single-source rule
// as the `bistream_*` series names: `slo_*` / `alert_*` literals outside
// this module fail `cargo xtask lint`, so a dashboard query and the code
// can never disagree on what an objective is called.

/// Objective: 99th-percentile end-to-end result latency stays inside the band.
pub const SLO_P99_LATENCY_MS: &str = "slo_p99_latency_ms";
/// Objective: ingest throughput stays above the floor while input is offered.
pub const SLO_MIN_INGEST_TPS: &str = "slo_min_ingest_tps";
/// Objective: broker-queue conservation deficit (lost tuples) stays under
/// the ceiling.
pub const SLO_MAX_LOST_TUPLES: &str = "slo_max_lost_tuples";
/// Alert: an objective burned error budget in both the fast and the slow
/// trailing window (SRE multi-window burn-rate rule).
pub const ALERT_SLO_BURN: &str = "alert_slo_burn";
/// Alert: the watchdog saw buffered input without frontier or queue
/// progress for K consecutive ticks.
pub const ALERT_PROGRESS_STALL: &str = "alert_progress_stall";

// ---------------------------------------------------------------- bench

/// Scratch counter exercised by the metrics benchmark.
pub const BENCH_COUNTER: &str = "bistream_bench_counter";
/// Scratch latency histogram exercised by the metrics benchmark.
pub const BENCH_LATENCY_MS: &str = "bistream_bench_latency_ms";

#[cfg(test)]
mod tests {
    #[test]
    fn names_follow_prefix_convention() {
        // Spot-check via the module's own source: every constant must carry
        // the `bistream_` prefix so scrapes group under one namespace.
        for name in [
            super::ROUTER_TUPLES_TOTAL,
            super::JOINER_STORED_TOTAL,
            super::INDEX_LIVE_TUPLES,
            super::QUEUE_DEPTH,
            super::TRACE_COMPLETED_TOTAL,
            super::TUPLES_INGESTED_TOTAL,
            super::MATRIX_CELL_REPLICATED_TOTAL,
        ] {
            assert!(name.starts_with("bistream_"), "{name}");
        }
    }
}
