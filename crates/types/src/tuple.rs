//! Streaming tuples: an instance of a schema plus the event timestamp that
//! drives window semantics.
//!
//! Tuples are broadcast (the join stream sends one tuple to many units), so
//! `Tuple` is an `Arc` handle — cloning is a reference-count bump and the
//! attribute payload is shared.

use crate::error::{Error, Result};
use crate::rel::Rel;
use crate::time::Ts;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::sync::Arc;

#[derive(Debug, PartialEq)]
struct TupleData {
    rel: Rel,
    ts: Ts,
    values: Box<[Value]>,
}

/// A streaming tuple: relation tag, event timestamp, attribute values.
///
/// Equality compares contents (not identity), which the tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    data: Arc<TupleData>,
}

impl Tuple {
    /// Create a tuple of relation `rel` with event time `ts`.
    pub fn new(rel: Rel, ts: Ts, values: Vec<Value>) -> Tuple {
        Tuple { data: Arc::new(TupleData { rel, ts, values: values.into_boxed_slice() }) }
    }

    /// Which streaming relation this tuple belongs to.
    #[inline]
    pub fn rel(&self) -> Rel {
        self.data.rel
    }

    /// Event timestamp (window semantics are defined on this, not on
    /// arrival time).
    #[inline]
    pub fn ts(&self) -> Ts {
        self.data.ts
    }

    /// All attribute values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.data.values
    }

    /// Attribute at `idx`, if in range.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.data.values.get(idx)
    }

    /// Attribute at `idx` or a schema error naming the index.
    pub fn require(&self, idx: usize) -> Result<&Value> {
        self.get(idx).ok_or_else(|| {
            Error::Schema(format!(
                "tuple of {} has arity {}, attribute {idx} requested",
                self.rel(),
                self.data.values.len()
            ))
        })
    }

    /// Approximate resident size in bytes, charged by the index memory
    /// accounting (header + per-value sizes).
    pub fn size_bytes(&self) -> usize {
        let header = std::mem::size_of::<TupleData>() + std::mem::size_of::<Tuple>();
        header + self.values().iter().map(Value::size_bytes).sum::<usize>()
    }

    /// Encode to the wire format used by the broker transport.
    ///
    /// Layout: `rel(1) ts(8) arity(2) values…`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.values().len() * 12);
        buf.put_u8(self.rel().as_byte());
        buf.put_u64(self.ts());
        buf.put_u16(self.values().len() as u16);
        for v in self.values() {
            v.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decode a tuple previously produced by [`Tuple::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<Tuple> {
        if buf.remaining() < 11 {
            return Err(Error::Codec("tuple header truncated".into()));
        }
        let rel =
            Rel::from_byte(buf.get_u8()).ok_or_else(|| Error::Codec("bad relation byte".into()))?;
        let ts = buf.get_u64();
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(buf)?);
        }
        Ok(Tuple::new(rel, ts, values))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}(", self.rel(), self.ts())?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A join result: the concatenation of a matched `(r, s)` pair.
///
/// Following the model's output-timestamp policy discussion, the output
/// carries the *maximum* of the two input timestamps (ordering-preserving
/// choice) — callers needing the min-expiry policy can recompute it from
/// the kept originals.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinResult {
    /// The R-side input.
    pub r: Tuple,
    /// The S-side input.
    pub s: Tuple,
    /// Result timestamp: `max(r.ts, s.ts)`.
    pub ts: Ts,
}

impl JoinResult {
    /// Combine a matched pair into a result. `a` and `b` may arrive in
    /// either order; they are normalised so `r` is always the R-side tuple.
    ///
    /// # Panics
    /// Debug-asserts that the two tuples come from opposite relations.
    pub fn of(a: Tuple, b: Tuple) -> JoinResult {
        debug_assert_ne!(a.rel(), b.rel(), "join result needs one tuple per side");
        let ts = a.ts().max(b.ts());
        let (r, s) = if a.rel() == Rel::R { (a, b) } else { (b, a) };
        JoinResult { r, s, ts }
    }

    /// A stable identity for de-duplication checks in tests: the pair of
    /// (timestamp, values) on each side.
    pub fn identity(&self) -> (Ts, Vec<Value>, Ts, Vec<Value>) {
        (self.r.ts(), self.r.values().to_vec(), self.s.ts(), self.s.values().to_vec())
    }
}

impl fmt::Display for JoinResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} ⋈ {}]@{}", self.r, self.s, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: Rel, ts: Ts, k: i64) -> Tuple {
        Tuple::new(rel, ts, vec![Value::Int(k), Value::Str(format!("p{k}"))])
    }

    #[test]
    fn accessors() {
        let x = t(Rel::R, 5, 9);
        assert_eq!(x.rel(), Rel::R);
        assert_eq!(x.ts(), 5);
        assert_eq!(x.get(0), Some(&Value::Int(9)));
        assert_eq!(x.get(2), None);
        assert!(x.require(2).is_err());
    }

    #[test]
    fn clone_shares_payload() {
        let a = t(Rel::S, 1, 2);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = t(Rel::S, 123_456, -7);
        let mut wire = a.encode();
        let b = Tuple::decode(&mut wire).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let full = t(Rel::R, 42, 1).encode();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(Tuple::decode(&mut partial).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn join_result_normalises_sides_and_takes_max_ts() {
        let r = t(Rel::R, 10, 1);
        let s = t(Rel::S, 20, 1);
        let j1 = JoinResult::of(r.clone(), s.clone());
        let j2 = JoinResult::of(s, r);
        assert_eq!(j1, j2);
        assert_eq!(j1.r.rel(), Rel::R);
        assert_eq!(j1.ts, 20);
    }

    #[test]
    #[should_panic(expected = "one tuple per side")]
    fn join_result_rejects_same_side_in_debug() {
        let _ = JoinResult::of(t(Rel::R, 1, 1), t(Rel::R, 2, 2));
    }

    #[test]
    fn display_is_readable() {
        let x = t(Rel::R, 3, 4);
        assert_eq!(x.to_string(), "R@3(4, \"p4\")");
    }

    #[test]
    fn size_grows_with_payload() {
        let small = Tuple::new(Rel::R, 0, vec![Value::Int(1)]);
        let big = Tuple::new(Rel::R, 0, vec![Value::Str("y".repeat(1000))]);
        assert!(big.size_bytes() > small.size_bytes() + 900);
    }
}
