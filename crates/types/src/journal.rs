//! The structured event journal — a bounded lock-free ring of typed
//! runtime events with virtual-time stamps.
//!
//! Both harnesses record through the same code paths (the joiner's store
//! and probe branches, the chained index's archive/discard transitions,
//! the engine's scale decisions, the broker's backpressure stalls), so a
//! drained journal reads identically whether the run was simulated or
//! live. That is what makes it usable for post-mortem debugging of
//! ordering races and for reconstructing HPA decision timelines.
//!
//! The ring is a fixed-capacity `crossbeam` [`ArrayQueue`]; when full, the
//! oldest event is evicted (and counted) so recording never blocks a hot
//! path. Events serialize to JSON without pulling `serde_json` into this
//! crate — the writer is hand-rolled and only has to handle our own shapes.

use crate::metrics::Gauge;
use crate::punct::{RouterId, SeqNo};
use crate::rel::Rel;
use crate::time::Ts;
use crossbeam::queue::ArrayQueue;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;

/// What happened, with enough identity to attribute it to a unit.
///
/// Unit identity is carried as `(side, unit)` — e.g. joiner `R3` is
/// `(Rel::R, 3)` — matching the registry's `joiner="R3"` label scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// A joiner installed a tuple into its window index (store copy).
    TupleStored {
        /// Side of the joiner that stored.
        side: Rel,
        /// Joiner index within its side.
        unit: u32,
        /// The router-assigned sequence number of the stored tuple.
        seq: SeqNo,
    },
    /// A probe produced join results at a joiner.
    JoinEmitted {
        /// Side of the probing joiner.
        side: Rel,
        /// Joiner index within its side.
        unit: u32,
        /// Number of results this probe emitted.
        results: u64,
    },
    /// A joiner's ordering watermark advanced past a router punctuation.
    PunctuationAdvanced {
        /// Side of the joiner.
        side: Rel,
        /// Joiner index within its side.
        unit: u32,
        /// The router whose punctuation moved the frontier.
        router: RouterId,
        /// The punctuated sequence number.
        seq: SeqNo,
    },
    /// The chained index sealed its active sub-index into the archive.
    SubIndexArchived {
        /// Side of the owning joiner.
        side: Rel,
        /// Joiner index within its side.
        unit: u32,
        /// Tuples in the sealed sub-index.
        tuples: u64,
        /// Bytes in the sealed sub-index.
        bytes: u64,
    },
    /// A whole archived sub-index fell out of the window (Theorem 1) and
    /// was discarded without per-tuple work.
    SubIndexDiscarded {
        /// Side of the owning joiner.
        side: Rel,
        /// Joiner index within its side.
        unit: u32,
        /// Tuples discarded with the sub-index.
        tuples: u64,
        /// Bytes discarded with the sub-index.
        bytes: u64,
    },
    /// The engine resized one side of the biclique.
    ScaleDecision {
        /// Which side was resized.
        side: Rel,
        /// Unit count before.
        from: u32,
        /// Unit count after.
        to: u32,
    },
    /// A publisher blocked on a full broker queue.
    BackpressureStall {
        /// Name of the full queue.
        queue: String,
    },
    /// A one-time configuration caveat surfaced at launch (e.g. the
    /// sharded backend's `pin_to_core` being a best-effort no-op because
    /// no affinity syscall crate is vendored).
    ConfigWarning {
        /// Short machine-greppable topic, e.g. `pin_to_core`.
        topic: String,
        /// Human-readable description of the caveat.
        detail: String,
    },
    /// The invariant auditor detected a protocol violation
    /// (see [`crate::audit::Auditor`]).
    InvariantViolation {
        /// The broken rule, e.g. `release-order` or `theorem-1`.
        rule: String,
        /// Human-readable description of the broken check.
        detail: String,
    },
}

impl EventKind {
    /// The event's tag, as serialized in JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TupleStored { .. } => "TupleStored",
            EventKind::JoinEmitted { .. } => "JoinEmitted",
            EventKind::PunctuationAdvanced { .. } => "PunctuationAdvanced",
            EventKind::SubIndexArchived { .. } => "SubIndexArchived",
            EventKind::SubIndexDiscarded { .. } => "SubIndexDiscarded",
            EventKind::ScaleDecision { .. } => "ScaleDecision",
            EventKind::BackpressureStall { .. } => "BackpressureStall",
            EventKind::ConfigWarning { .. } => "ConfigWarning",
            EventKind::InvariantViolation { .. } => "InvariantViolation",
        }
    }
}

/// One journal entry: an [`EventKind`] stamped with the time it happened
/// (virtual ms in the simulator, wall ms since pipeline start when live).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Event {
    /// When it happened, in the recording harness's timebase.
    pub ts: Ts,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serialize this event as one flat JSON object, e.g.
    /// `{"ts":42,"kind":"TupleStored","side":"R","unit":3,"seq":17}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"ts\":{},\"kind\":\"{}\"", self.ts, self.kind.tag());
        match &self.kind {
            EventKind::TupleStored { side, unit, seq } => {
                let _ = write!(out, ",\"side\":\"{side}\",\"unit\":{unit},\"seq\":{seq}");
            }
            EventKind::JoinEmitted { side, unit, results } => {
                let _ = write!(out, ",\"side\":\"{side}\",\"unit\":{unit},\"results\":{results}");
            }
            EventKind::PunctuationAdvanced { side, unit, router, seq } => {
                let _ = write!(
                    out,
                    ",\"side\":\"{side}\",\"unit\":{unit},\"router\":{router},\"seq\":{seq}"
                );
            }
            EventKind::SubIndexArchived { side, unit, tuples, bytes }
            | EventKind::SubIndexDiscarded { side, unit, tuples, bytes } => {
                let _ = write!(
                    out,
                    ",\"side\":\"{side}\",\"unit\":{unit},\"tuples\":{tuples},\"bytes\":{bytes}"
                );
            }
            EventKind::ScaleDecision { side, from, to } => {
                let _ = write!(out, ",\"side\":\"{side}\",\"from\":{from},\"to\":{to}");
            }
            EventKind::BackpressureStall { queue } => {
                let _ = write!(out, ",\"queue\":\"{}\"", escape_json(queue));
            }
            EventKind::ConfigWarning { topic, detail } => {
                let _ = write!(
                    out,
                    ",\"topic\":\"{}\",\"detail\":\"{}\"",
                    escape_json(topic),
                    escape_json(detail)
                );
            }
            EventKind::InvariantViolation { rule, detail } => {
                let _ = write!(
                    out,
                    ",\"rule\":\"{}\",\"detail\":\"{}\"",
                    escape_json(rule),
                    escape_json(detail)
                );
            }
        }
        out.push('}');
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The bounded, shared, lock-free event journal.
///
/// Cloning shares the ring. Recording is wait-free except when the ring is
/// full, where one pop evicts the oldest event; drains observe events in
/// record order.
#[derive(Debug, Clone)]
pub struct EventJournal {
    ring: Arc<ArrayQueue<Event>>,
    /// Eviction count, held as a registrable gauge so the
    /// [`Observability`](crate::registry::Observability) bundle can expose
    /// silent drops as `bistream_journal_dropped_total`.
    dropped: Arc<Gauge>,
}

/// Default ring capacity — large enough to hold every interesting event of
/// a quick experiment, small enough (~a few MB) to sit in every engine.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// A journal holding at most `capacity` (≥ 1) events.
    pub fn with_capacity(capacity: usize) -> EventJournal {
        EventJournal { ring: Arc::new(ArrayQueue::new(capacity.max(1))), dropped: Gauge::shared() }
    }

    /// Record one event at time `ts`, evicting the oldest if full.
    pub fn record(&self, ts: Ts, kind: EventKind) {
        let mut ev = Event { ts, kind };
        loop {
            match self.ring.push(ev) {
                Ok(()) => return,
                Err(back) => {
                    if self.ring.pop().is_some() {
                        self.dropped.add(1);
                    }
                    ev = back;
                }
            }
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The eviction counter as a shareable gauge handle, for registering
    /// into a [`MetricsRegistry`](crate::registry::MetricsRegistry) as
    /// `bistream_journal_dropped_total`.
    pub fn dropped_gauge(&self) -> Arc<Gauge> {
        Arc::clone(&self.dropped)
    }

    /// Snapshot the buffered events without consuming them, in record
    /// order. Implemented as drain-and-re-record, so concurrent recorders
    /// may interleave; intended for diagnostics (the invariant auditor's
    /// violation chains), not for precise accounting.
    pub fn snapshot(&self) -> Vec<Event> {
        let events = self.drain();
        for ev in &events {
            self.record(ev.ts, ev.kind.clone());
        }
        events
    }

    /// Drain all buffered events in record order.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.ring.len());
        while let Some(ev) = self.ring.pop() {
            out.push(ev);
        }
        out
    }

    /// Drain all buffered events as a JSON array (one object per event).
    pub fn drain_json(&self) -> String {
        let events = self.drain();
        let mut out = String::with_capacity(16 + 96 * events.len());
        out.push('[');
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ev.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_order() {
        let j = EventJournal::with_capacity(16);
        j.record(1, EventKind::TupleStored { side: Rel::R, unit: 0, seq: 10 });
        j.record(2, EventKind::JoinEmitted { side: Rel::S, unit: 1, results: 3 });
        assert_eq!(j.len(), 2);
        let events = j.drain();
        assert!(j.is_empty());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts, 1);
        assert_eq!(events[0].kind.tag(), "TupleStored");
        assert_eq!(events[1].kind.tag(), "JoinEmitted");
    }

    #[test]
    fn evicts_oldest_when_full() {
        let j = EventJournal::with_capacity(2);
        for ts in 0..5u64 {
            j.record(ts, EventKind::ScaleDecision { side: Rel::R, from: 1, to: 2 });
        }
        let events = j.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts, 3);
        assert_eq!(events[1].ts, 4);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn json_shapes_are_flat_objects() {
        let j = EventJournal::with_capacity(8);
        j.record(5, EventKind::PunctuationAdvanced { side: Rel::R, unit: 2, router: 1, seq: 9 });
        j.record(6, EventKind::BackpressureStall { queue: "unit.\"R0\"\n".into() });
        let json = j.drain_json();
        assert!(json.starts_with('['), "got: {json}");
        assert!(json.contains(
            r#"{"ts":5,"kind":"PunctuationAdvanced","side":"R","unit":2,"router":1,"seq":9}"#
        ));
        assert!(json.contains(r#""queue":"unit.\"R0\"\n""#), "got: {json}");
        assert!(json.ends_with(']'));
    }

    #[test]
    fn archive_and_discard_carry_sizes() {
        let j = EventJournal::default();
        j.record(7, EventKind::SubIndexArchived { side: Rel::S, unit: 4, tuples: 10, bytes: 320 });
        j.record(8, EventKind::SubIndexDiscarded { side: Rel::S, unit: 4, tuples: 10, bytes: 320 });
        let json = j.drain_json();
        assert!(json
            .contains(r#""kind":"SubIndexArchived","side":"S","unit":4,"tuples":10,"bytes":320"#));
        assert!(json.contains(r#""kind":"SubIndexDiscarded""#));
    }
}
