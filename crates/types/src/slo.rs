//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states what "healthy" means — a p99 latency band, a
//! throughput floor, a tuple-loss ceiling — and [`evaluate`] grades a
//! registry scrape series (as [`crate::registry::Sampler`] emits it)
//! against the spec, one verdict per objective plus zero or more
//! evidence-carrying [`BurnAlert`]s.
//!
//! The alerting rule is the SRE multi-window burn-rate test: each scrape
//! interval either breaches an objective or not, the breach fraction over
//! a trailing window divided by the error budget is that window's *burn
//! rate*, and an alert fires only when the burn rate exceeds the threshold
//! in **both** a fast window (reacts quickly) and a slow window (filters
//! one-interval blips). A single bad scrape therefore never pages; a
//! sustained breach pages within `fast_window` intervals.
//!
//! Idleness is not failure: the throughput floor is *activity-gated*. An
//! interval only counts against the floor when input was demonstrably
//! offered — tuples ingested, or publishers parked on a stalled/full
//! queue (timer-driven punctuation publishes are deliberately not
//! activity). A pipeline with nothing to do breaches nothing
//! (the satellite guarantee the watchdog makes for stalls); a pipeline
//! whose publishers are blocked by a broker stall shows stall-time
//! progress without ingest progress and burns budget.

use crate::metric_names as names;
use crate::registry::{MetricValue, RegistrySnapshot};
use serde::Serialize;

/// A declarative service-level-objective spec. Objectives left `None` are
/// not evaluated; the windows and budget shape the burn-rate alert rule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSpec {
    /// p99 end-to-end result latency ceiling (ms), from the cumulative
    /// `bistream_result_latency_ms` histogram.
    pub p99_latency_ms: Option<u64>,
    /// Ingest throughput floor (tuples/s), activity-gated (see module doc).
    pub min_ingest_tps: Option<f64>,
    /// Ceiling on the broker-queue conservation deficit
    /// `published − delivered − depth` summed over queues (lost tuples).
    pub max_lost_tuples: Option<u64>,
    /// Fast alert window, in scrape intervals (reacts quickly).
    pub fast_window: usize,
    /// Slow alert window, in scrape intervals (filters blips).
    pub slow_window: usize,
    /// Error budget: the tolerated breach fraction per window (0..1].
    pub budget: f64,
    /// Burn-rate multiple at which a window is considered burning.
    pub burn_threshold: f64,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            p99_latency_ms: None,
            min_ingest_tps: None,
            max_lost_tuples: None,
            fast_window: 3,
            slow_window: 12,
            budget: 0.25,
            burn_threshold: 1.0,
        }
    }
}

impl SloSpec {
    /// A spec with no objectives and the default alert windows.
    pub fn new() -> SloSpec {
        SloSpec::default()
    }

    /// Set the p99 latency ceiling (ms).
    pub fn p99_latency_ms(mut self, ceiling: u64) -> SloSpec {
        self.p99_latency_ms = Some(ceiling);
        self
    }

    /// Set the ingest throughput floor (tuples/s).
    pub fn min_ingest_tps(mut self, floor: f64) -> SloSpec {
        self.min_ingest_tps = Some(floor);
        self
    }

    /// Set the tuple-loss ceiling.
    pub fn max_lost_tuples(mut self, ceiling: u64) -> SloSpec {
        self.max_lost_tuples = Some(ceiling);
        self
    }

    /// `true` when at least one objective is set.
    pub fn has_objectives(&self) -> bool {
        self.p99_latency_ms.is_some()
            || self.min_ingest_tps.is_some()
            || self.max_lost_tuples.is_some()
    }
}

/// The trailing-window evidence attached to one side of a burn alert.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct WindowEvidence {
    /// Scrape time at the start of the window (ms).
    pub from_ms: u64,
    /// Scrape time at the end of the window (ms).
    pub to_ms: u64,
    /// Intervals in the window.
    pub window: u64,
    /// Intervals in the window that breached the objective.
    pub breached: u64,
}

/// One fired burn-rate alert: an objective exceeded the burn threshold in
/// both the fast and the slow trailing window.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BurnAlert {
    /// Alert identifier ([`crate::metric_names::ALERT_SLO_BURN`]).
    pub alert: String,
    /// The objective that burned (`slo_*` identifier).
    pub objective: String,
    /// Scrape time at which the alert first fired (ms).
    pub at_ms: u64,
    /// Burn rate over the fast window (breach fraction / budget).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Observed value of the objective's measure at the firing interval.
    pub observed: f64,
    /// The objective's configured limit.
    pub limit: f64,
    /// Fast-window evidence.
    pub fast: WindowEvidence,
    /// Slow-window evidence.
    pub slow: WindowEvidence,
}

/// The per-objective verdict over the whole series.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ObjectiveVerdict {
    /// Objective identifier (`slo_*`).
    pub objective: String,
    /// The configured limit (ceiling or floor).
    pub limit: f64,
    /// Scrape intervals in the series.
    pub windows: u64,
    /// Intervals with data/activity for this objective.
    pub active: u64,
    /// Intervals that breached.
    pub breached_windows: u64,
    /// `breached_windows / windows` (0 when the series is empty).
    pub breach_fraction: f64,
    /// Worst observed value across active intervals (max for ceilings,
    /// min for floors).
    pub worst: f64,
    /// `true` when a burn alert fired for this objective.
    pub alerted: bool,
}

/// The SLO engine's output: one verdict per configured objective, the
/// alerts that fired, and the overall breach flag. Attached to
/// `SimOutcome` and `PipelineReport` alongside the perf report.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SloReport {
    /// Span covered by the evaluated series (ms).
    pub elapsed_ms: u64,
    /// Per-objective verdicts, in spec order.
    pub objectives: Vec<ObjectiveVerdict>,
    /// Burn alerts, at most one per objective (the first firing).
    pub alerts: Vec<BurnAlert>,
    /// `true` when any alert fired.
    pub breached: bool,
}

impl SloReport {
    /// Availability over the series as a percentage: `100 · (1 − worst
    /// breach fraction)` across objectives; 100 when nothing breached.
    pub fn availability_pct(&self) -> f64 {
        let worst =
            self.objectives.iter().map(|o| o.breach_fraction).fold(0.0f64, |a, b| a.max(b));
        100.0 * (1.0 - worst)
    }
}

/// Sum of every counter named `name` across label sets in one snapshot.
fn counter_sum(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.key.name == name)
        .filter_map(|s| match &s.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
        .sum()
}

/// Sum of every gauge named `name` across label sets in one snapshot.
fn gauge_sum(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.key.name == name)
        .filter_map(|s| match &s.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
        .sum()
}

/// Worst (max) p99 across every histogram named `name`, with the total
/// observation count — `None` when no such histogram is registered.
fn histogram_p99(snap: &RegistrySnapshot, name: &str) -> Option<(u64, u64)> {
    let mut found = false;
    let (mut p99, mut count) = (0u64, 0u64);
    for s in &snap.samples {
        if s.key.name != name {
            continue;
        }
        if let MetricValue::Histogram(h) = &s.value {
            found = true;
            p99 = p99.max(h.p99);
            count += h.count;
        }
    }
    found.then_some((p99, count))
}

/// Broker-queue conservation deficit at one snapshot: messages published
/// but neither delivered nor buffered, summed over queues. Zero on a
/// healthy broker (and trivially in the queue-less simulator).
fn lost_tuples(snap: &RegistrySnapshot) -> u64 {
    let mut lost = 0u64;
    for s in &snap.samples {
        if s.key.name != names::QUEUE_PUBLISHED_TOTAL {
            continue;
        }
        let Some((_, queue)) = s.key.labels.iter().find(|(k, _)| k == "queue") else {
            continue;
        };
        let published = match &s.value {
            MetricValue::Counter(v) => *v,
            _ => continue,
        };
        let delivered = snap
            .counter(names::QUEUE_DELIVERED_TOTAL, &[("queue", queue)])
            .unwrap_or(0);
        let depth = snap.gauge(names::QUEUE_DEPTH, &[("queue", queue)]).unwrap_or(0);
        lost += published.saturating_sub(delivered + depth);
    }
    lost
}

/// `true` when the interval `(prev, cur]` shows offered input: ingest
/// progress, or publishers parked on a full/stalled queue. Deliberately
/// ignores raw queue publishes — the live pipeline's routers publish
/// punctuations on a timer even when no tuples arrive, and those control
/// messages must not make an idle pipeline look loaded.
fn interval_active(prev: &RegistrySnapshot, cur: &RegistrySnapshot) -> bool {
    let delta = |name: &str| counter_sum(cur, name).saturating_sub(counter_sum(prev, name));
    delta(names::TUPLES_INGESTED_TOTAL) > 0
        || delta(names::QUEUE_BACKPRESSURE_BLOCKS_TOTAL) > 0
        || delta(names::QUEUE_STALL_MS_TOTAL) > 0
}

/// Per-interval measurement for one objective: `Some((observed, breached))`
/// when the interval carries data for the objective, `None` when it is
/// vacuous (no traffic, no histogram observations).
type Measure<'a> = dyn Fn(&RegistrySnapshot, &RegistrySnapshot) -> Option<(f64, bool)> + 'a;

/// Grade one objective across the series and append its verdict (and, if
/// the burn rule trips, its alert) to the report.
fn grade(
    spec: &SloSpec,
    series: &[RegistrySnapshot],
    report: &mut SloReport,
    objective: &'static str,
    limit: f64,
    floor: bool,
    measure: &Measure<'_>,
) {
    let windows = series.len().saturating_sub(1);
    let mut verdict = ObjectiveVerdict {
        objective: objective.to_owned(),
        limit,
        windows: windows as u64,
        worst: if floor { f64::INFINITY } else { 0.0 },
        ..ObjectiveVerdict::default()
    };
    // Per-interval breach flags and observations, then the trailing-window
    // burn-rate scan over them.
    let mut breaches: Vec<bool> = Vec::with_capacity(windows);
    let mut observed: Vec<f64> = Vec::with_capacity(windows);
    for pair in series.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        match measure(prev, cur) {
            Some((obs, bad)) => {
                verdict.active += 1;
                verdict.worst = if floor { verdict.worst.min(obs) } else { verdict.worst.max(obs) };
                breaches.push(bad);
                observed.push(obs);
            }
            None => {
                breaches.push(false);
                observed.push(if floor { limit } else { 0.0 });
            }
        }
    }
    if verdict.active == 0 {
        verdict.worst = 0.0;
    }
    verdict.breached_windows = breaches.iter().filter(|b| **b).count() as u64;
    verdict.breach_fraction = if windows > 0 {
        verdict.breached_windows as f64 / windows as f64
    } else {
        0.0
    };

    let budget = spec.budget.max(1e-9);
    let fast_w = spec.fast_window.max(1);
    let slow_w = spec.slow_window.max(fast_w);
    for i in 0..windows {
        // Alerts need at least a full fast window of evidence; the slow
        // window evaluates over what exists (standard partial-window rule).
        if i + 1 < fast_w {
            continue;
        }
        let burn = |w: usize| -> (f64, WindowEvidence) {
            let w = w.min(i + 1);
            let start = i + 1 - w;
            let breached = breaches[start..=i].iter().filter(|b| **b).count() as u64;
            let rate = breached as f64 / w as f64 / budget;
            let ev = WindowEvidence {
                from_ms: series[start].at,
                to_ms: series[i + 1].at,
                window: w as u64,
                breached,
            };
            (rate, ev)
        };
        let (fast_burn, fast_ev) = burn(fast_w);
        let (slow_burn, slow_ev) = burn(slow_w);
        if fast_burn >= spec.burn_threshold && slow_burn >= spec.burn_threshold {
            verdict.alerted = true;
            report.alerts.push(BurnAlert {
                alert: names::ALERT_SLO_BURN.to_owned(),
                objective: objective.to_owned(),
                at_ms: series[i + 1].at,
                fast_burn,
                slow_burn,
                observed: observed[i],
                limit,
                fast: fast_ev,
                slow: slow_ev,
            });
            break;
        }
    }
    report.objectives.push(verdict);
}

/// Evaluate `spec` over a scrape series (sorted by scrape time, as
/// [`crate::registry::Sampler`] emits it). Series shorter than two scrapes
/// grade nothing; objectives left `None` are skipped.
pub fn evaluate(spec: &SloSpec, series: &[RegistrySnapshot]) -> SloReport {
    let mut report = SloReport::default();
    let (Some(first), Some(last)) = (series.first(), series.last()) else {
        return report;
    };
    report.elapsed_ms = last.at.saturating_sub(first.at);
    if series.len() < 2 {
        return report;
    }

    if let Some(ceiling) = spec.p99_latency_ms {
        let measure = move |_prev: &RegistrySnapshot, cur: &RegistrySnapshot| {
            // The cumulative latency histogram must have observations; an
            // interval before the first result is vacuous, not a breach.
            let (p99, count) = histogram_p99(cur, names::RESULT_LATENCY_MS)?;
            (count > 0).then_some((p99 as f64, p99 > ceiling))
        };
        grade(spec, series, &mut report, names::SLO_P99_LATENCY_MS, ceiling as f64, false, &measure);
    }
    if let Some(floor) = spec.min_ingest_tps {
        let measure = move |prev: &RegistrySnapshot, cur: &RegistrySnapshot| {
            // Activity-gated: only graded when input was offered (see
            // module doc) — an idle pipeline never burns the floor.
            if !interval_active(prev, cur) {
                return None;
            }
            let dt_ms = cur.at.saturating_sub(prev.at).max(1);
            let ingested = counter_sum(cur, names::TUPLES_INGESTED_TOTAL)
                .saturating_sub(counter_sum(prev, names::TUPLES_INGESTED_TOTAL));
            let rate = ingested as f64 * 1_000.0 / dt_ms as f64;
            Some((rate, rate < floor))
        };
        grade(spec, series, &mut report, names::SLO_MIN_INGEST_TPS, floor, true, &measure);
    }
    if let Some(ceiling) = spec.max_lost_tuples {
        let measure = move |_prev: &RegistrySnapshot, cur: &RegistrySnapshot| {
            let lost = lost_tuples(cur);
            Some((lost as f64, lost > ceiling))
        };
        grade(spec, series, &mut report, names::SLO_MAX_LOST_TUPLES, ceiling as f64, false, &measure);
    }
    report.breached = !report.alerts.is_empty();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_names as names;
    use crate::registry::MetricsRegistry;

    fn spec() -> SloSpec {
        SloSpec::new().p99_latency_ms(50).min_ingest_tps(500.0).max_lost_tuples(0)
    }

    #[test]
    fn healthy_series_raises_no_alerts() {
        let reg = MetricsRegistry::new();
        let ingested = reg.counter(names::TUPLES_INGESTED_TOTAL, &[("engine", "engine")]);
        let lat = reg.histogram(names::RESULT_LATENCY_MS, &[("engine", "engine")]);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=10u64 {
            ingested.add(1_000); // 1 000 t/s at 1 s scrapes.
            lat.record(10);
            series.push(reg.scrape(t * 1_000));
        }
        let report = evaluate(&spec(), &series);
        assert_eq!(report.elapsed_ms, 10_000);
        assert_eq!(report.objectives.len(), 3);
        assert!(report.alerts.is_empty(), "{:?}", report.alerts);
        assert!(!report.breached);
        assert!((report.availability_pct() - 100.0).abs() < 1e-9);
        let tput = &report.objectives[1];
        assert_eq!(tput.objective, names::SLO_MIN_INGEST_TPS);
        assert_eq!(tput.active, 10);
        assert!((tput.worst - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_throughput_collapse_fires_a_burn_alert() {
        let reg = MetricsRegistry::new();
        let ingested = reg.counter(names::TUPLES_INGESTED_TOTAL, &[("engine", "engine")]);
        let stalled = reg.counter(names::QUEUE_STALL_MS_TOTAL, &[("queue", "q")]);
        let mut series = vec![reg.scrape(0)];
        // 4 healthy seconds, then a stall: publishers park (stall time
        // grows, proving input is offered) while ingest freezes.
        for t in 1..=4u64 {
            ingested.add(1_000);
            series.push(reg.scrape(t * 1_000));
        }
        for t in 5..=10u64 {
            stalled.add(900);
            series.push(reg.scrape(t * 1_000));
        }
        let report = evaluate(&SloSpec::new().min_ingest_tps(500.0), &series);
        assert!(report.breached);
        assert_eq!(report.alerts.len(), 1);
        let alert = &report.alerts[0];
        assert_eq!(alert.alert, names::ALERT_SLO_BURN);
        assert_eq!(alert.objective, names::SLO_MIN_INGEST_TPS);
        // With budget 0.25, two breaching intervals out of three burn the
        // fast window (2/3/0.25 ≈ 2.7×) and the slow window confirms
        // (2/6/0.25 ≈ 1.3×): the page lands two intervals into the stall.
        assert_eq!(alert.at_ms, 6_000);
        assert_eq!(alert.fast.breached, 2);
        assert!(alert.fast_burn >= 1.0 && alert.slow_burn >= 1.0);
        assert!(alert.observed < 1.0, "frozen ingest: {}", alert.observed);
        assert!(report.objectives[0].alerted);
        assert!(report.availability_pct() < 100.0);
    }

    #[test]
    fn one_interval_blip_does_not_page() {
        let reg = MetricsRegistry::new();
        let ingested = reg.counter(names::TUPLES_INGESTED_TOTAL, &[("engine", "engine")]);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=12u64 {
            // One zero-rate interval at t=6 with publishers still pushing.
            if t != 6 {
                ingested.add(1_000);
            } else {
                reg.counter(names::QUEUE_BACKPRESSURE_BLOCKS_TOTAL, &[("queue", "q")]).inc();
            }
            series.push(reg.scrape(t * 1_000));
        }
        let report = evaluate(&SloSpec::new().min_ingest_tps(500.0), &series);
        assert!(!report.breached, "{:?}", report.alerts);
        assert_eq!(report.objectives[0].breached_windows, 1);
    }

    #[test]
    fn idle_series_grades_every_objective_vacuously() {
        let reg = MetricsRegistry::new();
        reg.counter(names::TUPLES_INGESTED_TOTAL, &[("engine", "engine")]);
        reg.histogram(names::RESULT_LATENCY_MS, &[("engine", "engine")]);
        let series: Vec<_> = (0..=20u64).map(|t| reg.scrape(t * 500)).collect();
        let report = evaluate(&spec(), &series);
        assert!(!report.breached);
        assert!(report.alerts.is_empty());
        for o in &report.objectives {
            assert_eq!(o.breached_windows, 0, "{o:?}");
        }
        // The gated throughput objective saw no active interval at all.
        assert_eq!(report.objectives[1].active, 0);
    }

    #[test]
    fn latency_ceiling_and_loss_ceiling_breach_on_bad_data() {
        let reg = MetricsRegistry::new();
        let lat = reg.histogram(names::RESULT_LATENCY_MS, &[("engine", "engine")]);
        let published = reg.counter(names::QUEUE_PUBLISHED_TOTAL, &[("queue", "q")]);
        let mut series = vec![reg.scrape(0)];
        for t in 1..=6u64 {
            lat.record(400); // way over the 50 ms ceiling
            published.add(10); // published but never delivered nor buffered
            series.push(reg.scrape(t * 1_000));
        }
        let report = evaluate(&spec(), &series);
        assert!(report.breached);
        let objectives: Vec<&str> =
            report.alerts.iter().map(|a| a.objective.as_str()).collect();
        assert!(objectives.contains(&names::SLO_P99_LATENCY_MS), "{objectives:?}");
        assert!(objectives.contains(&names::SLO_MAX_LOST_TUPLES), "{objectives:?}");
    }

    #[test]
    fn short_series_grades_nothing() {
        let reg = MetricsRegistry::new();
        assert_eq!(evaluate(&spec(), &[]), SloReport::default());
        let one = evaluate(&spec(), &[reg.scrape(9)]);
        assert!(one.objectives.is_empty() && !one.breached);
    }
}
