//! The time domain `T` (Definition 2 of the model): discrete, ordered,
//! millisecond-granularity timestamps, plus the clock abstraction that lets
//! identical router/joiner code run against wall-clock time (live threaded
//! runtime) or virtual time (deterministic simulator).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A point in the discrete time domain, in milliseconds.
///
/// Both harnesses use the same representation; the live runtime anchors
/// `Ts(0)` at process start, the simulator at experiment start.
pub type Ts = u64;

/// Milliseconds in one second, for readability at call sites.
pub const SECOND: Ts = 1_000;
/// Milliseconds in one minute.
pub const MINUTE: Ts = 60 * SECOND;

/// A source of "now" for components that must run under either harness.
///
/// Implementations must be cheap (called on every tuple) and monotonic.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the clock's epoch.
    fn now(&self) -> Ts;
}

/// Wall-clock time relative to clock creation; used by the live runtime.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Create a wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Ts {
        self.epoch.elapsed().as_millis() as Ts
    }
}

/// A manually advanced clock shared by every component of a simulation.
///
/// Cloning is cheap (`Arc` inside); all clones observe the same time.
/// Advancing time never moves backwards — [`VirtualClock::advance_to`]
/// with a smaller value is a no-op, which makes drivers that process
/// slightly out-of-order event batches safe by construction.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A virtual clock starting at `t`.
    pub fn starting_at(t: Ts) -> Self {
        let c = Self::new();
        c.now.store(t, Ordering::Relaxed);
        c
    }

    /// Move time forward to `t` (no-op if `t` is in the past).
    pub fn advance_to(&self, t: Ts) {
        self.now.fetch_max(t, Ordering::Relaxed);
    }

    /// Move time forward by `delta` milliseconds and return the new time.
    pub fn advance_by(&self, delta: Ts) -> Ts {
        self.now.fetch_add(delta, Ordering::Relaxed) + delta
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Ts {
        self.now.load(Ordering::Relaxed)
    }
}

/// A one-shot wall-time stopwatch for benchmark and experiment timing.
///
/// This is the sanctioned way to measure elapsed wall time outside the
/// live executors: raw `Instant::now()` is confined to this module by the
/// `cargo xtask lint` wallclock rule, so simulations stay deterministic
/// and every real-time measurement is greppable through one type.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Elapsed wall time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as a float.
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Elapsed milliseconds as a float.
    pub fn elapsed_ms_f64(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed microseconds as a float.
    pub fn elapsed_us_f64(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }
}

/// A shareable handle to any clock.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(42);
        assert_eq!(c.now(), 42);
        assert_eq!(c.advance_by(8), 50);
        assert_eq!(c.now(), 50);
    }

    #[test]
    fn virtual_clock_never_goes_backwards() {
        let c = VirtualClock::starting_at(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance_to(7);
        assert_eq!(b.now(), 7);
    }

    #[test]
    fn wall_clock_is_monotonic_and_near_zero_at_start() {
        let c = WallClock::new();
        let t0 = c.now();
        let t1 = c.now();
        assert!(t1 >= t0);
        assert!(t0 < 1_000, "fresh wall clock should be near zero");
    }

    #[test]
    fn constants_relate() {
        assert_eq!(MINUTE, 60 * SECOND);
    }
}
