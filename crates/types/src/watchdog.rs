//! Progress watchdog: stalls and deadlocks, distinct from idleness.
//!
//! The watchdog scans a registry scrape series for units that hold work
//! but make no progress for K consecutive ticks:
//!
//! - **Frontier stall** — a joiner's reorder buffer holds tuples
//!   (`bistream_joiner_reorder_depth` > 0) while its watermark
//!   (`bistream_joiner_watermark`, the minimum router frontier) is frozen.
//!   This is the deadlock signature of a lost or wedged punctuation: input
//!   arrived, ordering can never release it.
//! - **Queue stall** — a broker queue holds messages
//!   (`bistream_queue_depth` > 0) while its delivered counter is frozen:
//!   consumers stopped draining, or publishers are parked behind an
//!   operator stall upstream.
//!
//! Legitimate idleness — empty buffers, empty queues — never trips either
//! rule, whatever the watermark does; that is the false-positive guarantee
//! `tests/slo.rs` pins down. Verdicts carry the evidence (the frozen
//! value, the buffered count, the tick span) and name the
//! [`crate::metric_names::ALERT_PROGRESS_STALL`] alert.

use crate::metric_names as names;
use crate::registry::{MetricValue, RegistrySnapshot};
use serde::Serialize;
use std::collections::BTreeSet;

/// Watchdog tuning: how many consecutive no-progress ticks make a stall.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WatchdogConfig {
    /// Consecutive scrape intervals without progress (while work is
    /// buffered) required to flag a stall.
    pub stall_ticks: usize,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { stall_ticks: 3 }
    }
}

/// What kind of progress froze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StallKind {
    /// A joiner's watermark froze while its reorder buffer held tuples.
    FrontierStall,
    /// A broker queue's delivery froze while it held messages.
    QueueStall,
}

impl StallKind {
    /// Stable string tag (also the JSON discriminator in breach bundles).
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::FrontierStall => "frontier_stall",
            StallKind::QueueStall => "queue_stall",
        }
    }

    /// Parse a tag produced by [`StallKind::label`].
    pub fn from_label(s: &str) -> Option<StallKind> {
        match s {
            "frontier_stall" => Some(StallKind::FrontierStall),
            "queue_stall" => Some(StallKind::QueueStall),
            _ => None,
        }
    }
}

/// One detected stall episode, with the evidence that distinguishes it
/// from idleness.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StallVerdict {
    /// What froze.
    pub kind: StallKind,
    /// The stalled unit: a joiner label (`R0`) or a queue name.
    pub unit: String,
    /// Scrape time at which the no-progress run began (ms).
    pub from_ms: u64,
    /// Scrape time of the last scrape in the run (ms).
    pub at_ms: u64,
    /// Consecutive no-progress intervals observed.
    pub ticks: u64,
    /// Work buffered behind the stall at detection (tuples or messages).
    pub buffered: u64,
    /// The frozen progress value (watermark ms, or delivered count).
    pub frozen_at: u64,
}

impl StallVerdict {
    /// The alert identifier stall verdicts raise.
    pub fn alert(&self) -> &'static str {
        names::ALERT_PROGRESS_STALL
    }
}

/// Gauge value for `name{label_key="label_val"}`, or `None` if absent.
fn gauge_with(snap: &RegistrySnapshot, name: &str, label_key: &str, label_val: &str) -> Option<u64> {
    snap.samples
        .iter()
        .find(|s| s.key.name == name && s.key.has_label(label_key, label_val))
        .and_then(|s| match &s.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
}

/// Counter value for `name{label_key="label_val"}`, or 0 if absent.
fn counter_with(snap: &RegistrySnapshot, name: &str, label_key: &str, label_val: &str) -> u64 {
    snap.samples
        .iter()
        .find(|s| s.key.name == name && s.key.has_label(label_key, label_val))
        .and_then(|s| match &s.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

/// All values of `label_key` across samples named `name` in any snapshot.
fn all_label_values(series: &[RegistrySnapshot], name: &str, label_key: &str) -> Vec<String> {
    let mut out = BTreeSet::new();
    for snap in series {
        for s in &snap.samples {
            if s.key.name != name {
                continue;
            }
            if let Some((_, v)) = s.key.labels.iter().find(|(k, _)| k == label_key) {
                out.insert(v.clone());
            }
        }
    }
    out.into_iter().collect()
}

/// Scan one unit's `(buffered, progress)` readings per scrape for runs of
/// `>= stall_ticks` intervals where work is buffered at both ends and the
/// progress value does not move. Emits one verdict per maximal run.
fn scan_unit(
    kind: StallKind,
    unit: &str,
    series: &[RegistrySnapshot],
    readings: &[(u64, u64)],
    stall_ticks: usize,
    out: &mut Vec<StallVerdict>,
) {
    let stall_ticks = stall_ticks.max(1) as u64;
    let mut run: u64 = 0;
    let mut run_start = 0usize;
    let mut flush = |run: u64, run_start: usize, end: usize| {
        if run >= stall_ticks {
            out.push(StallVerdict {
                kind,
                unit: unit.to_owned(),
                from_ms: series[run_start].at,
                at_ms: series[end].at,
                ticks: run,
                buffered: readings[end].0,
                frozen_at: readings[end].1,
            });
        }
    };
    for i in 1..readings.len() {
        let (prev_buf, prev_prog) = readings[i - 1];
        let (cur_buf, cur_prog) = readings[i];
        // A no-progress interval: work buffered at both ends, progress
        // value frozen. Anything else (drain, advance, idle) breaks the run.
        if prev_buf > 0 && cur_buf > 0 && cur_prog == prev_prog {
            if run == 0 {
                run_start = i - 1;
            }
            run += 1;
        } else {
            flush(run, run_start, i - 1);
            run = 0;
        }
    }
    flush(run, run_start, readings.len().saturating_sub(1));
}

/// Scan a scrape series for stall episodes. Pure and post-hoc: both
/// harnesses run it over the same series the perf analyzer and the SLO
/// engine consume.
pub fn scan(cfg: &WatchdogConfig, series: &[RegistrySnapshot]) -> Vec<StallVerdict> {
    let mut out = Vec::new();
    if series.len() < 2 {
        return out;
    }
    for joiner in all_label_values(series, names::JOINER_WATERMARK, "joiner") {
        let readings: Vec<(u64, u64)> = series
            .iter()
            .map(|s| {
                (
                    gauge_with(s, names::JOINER_REORDER_DEPTH, "joiner", &joiner).unwrap_or(0),
                    gauge_with(s, names::JOINER_WATERMARK, "joiner", &joiner).unwrap_or(0),
                )
            })
            .collect();
        scan_unit(
            StallKind::FrontierStall,
            &joiner,
            series,
            &readings,
            cfg.stall_ticks,
            &mut out,
        );
    }
    for queue in all_label_values(series, names::QUEUE_DEPTH, "queue") {
        let readings: Vec<(u64, u64)> = series
            .iter()
            .map(|s| {
                (
                    gauge_with(s, names::QUEUE_DEPTH, "queue", &queue).unwrap_or(0),
                    counter_with(s, names::QUEUE_DELIVERED_TOTAL, "queue", &queue),
                )
            })
            .collect();
        scan_unit(StallKind::QueueStall, &queue, series, &readings, cfg.stall_ticks, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_names as names;
    use crate::registry::MetricsRegistry;

    #[test]
    fn frozen_watermark_with_buffered_work_is_a_stall() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge(names::JOINER_REORDER_DEPTH, &[("joiner", "R0")]);
        let mark = reg.gauge(names::JOINER_WATERMARK, &[("joiner", "R0")]);
        mark.set(100);
        let mut series = vec![reg.scrape(0)];
        depth.set(4); // tuples arrive…
        for t in 1..=5u64 {
            series.push(reg.scrape(t * 1_000)); // …but the frontier never moves
        }
        let verdicts = scan(&WatchdogConfig::default(), &series);
        assert_eq!(verdicts.len(), 1, "{verdicts:?}");
        let v = &verdicts[0];
        assert_eq!(v.kind, StallKind::FrontierStall);
        assert_eq!(v.unit, "R0");
        assert_eq!(v.from_ms, 1_000);
        assert_eq!(v.at_ms, 5_000);
        assert_eq!(v.ticks, 4);
        assert_eq!(v.buffered, 4);
        assert_eq!(v.frozen_at, 100);
        assert_eq!(v.alert(), names::ALERT_PROGRESS_STALL);
    }

    #[test]
    fn idleness_and_steady_progress_are_not_stalls() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge(names::JOINER_REORDER_DEPTH, &[("joiner", "S1")]);
        let mark = reg.gauge(names::JOINER_WATERMARK, &[("joiner", "S1")]);
        // Idle: empty buffer, frozen watermark — fine, for however long.
        let idle: Vec<_> = (0..=10u64).map(|t| reg.scrape(t * 1_000)).collect();
        assert!(scan(&WatchdogConfig::default(), &idle).is_empty());
        // Busy but progressing: buffer held, watermark advances every tick.
        depth.set(8);
        let mut busy = Vec::new();
        for t in 0..=10u64 {
            mark.set(t * 50);
            busy.push(reg.scrape(t * 1_000));
        }
        assert!(scan(&WatchdogConfig::default(), &busy).is_empty());
    }

    #[test]
    fn short_freezes_stay_under_the_tick_threshold() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge(names::QUEUE_DEPTH, &[("queue", "unit.0")]);
        let delivered = reg.counter(names::QUEUE_DELIVERED_TOTAL, &[("queue", "unit.0")]);
        depth.set(3);
        let mut series = Vec::new();
        for t in 0..=8u64 {
            // Delivery freezes for 2 intervals at a time, then resumes:
            // never 3 consecutive frozen intervals.
            if t % 3 == 0 {
                delivered.add(10);
            }
            series.push(reg.scrape(t * 1_000));
        }
        assert!(scan(&WatchdogConfig::default(), &series).is_empty());
        // The same trace with a lower threshold does flag it.
        let strict = WatchdogConfig { stall_ticks: 2 };
        let verdicts = scan(&strict, &series);
        assert!(!verdicts.is_empty());
        assert!(verdicts.iter().all(|v| v.kind == StallKind::QueueStall));
    }

    #[test]
    fn queue_with_depth_and_frozen_delivery_is_flagged() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge(names::QUEUE_DEPTH, &[("queue", "tuple.exchange.routers")]);
        let delivered = reg.counter(names::QUEUE_DELIVERED_TOTAL, &[("queue", "tuple.exchange.routers")]);
        delivered.add(500);
        depth.set(64);
        let series: Vec<_> = (0..=4u64).map(|t| reg.scrape(t * 250)).collect();
        let verdicts = scan(&WatchdogConfig::default(), &series);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].kind, StallKind::QueueStall);
        assert_eq!(verdicts[0].unit, "tuple.exchange.routers");
        assert_eq!(verdicts[0].frozen_at, 500);
        assert_eq!(verdicts[0].ticks, 4);
        assert_eq!(StallKind::from_label("queue_stall"), Some(StallKind::QueueStall));
        assert_eq!(StallKind::from_label("nope"), None);
    }
}
