//! Deterministic fast hashing for content-sensitive routing and the hash
//! sub-index.
//!
//! Routing decisions must agree across processes and runs — the router that
//! stores a tuple and the router that routes the matching tuple for joining
//! may be different instances — so we cannot use `std`'s randomly seeded
//! SipHash. This module implements the FxHash algorithm (the multiply-xor
//! hash used by rustc; public domain construction) with a fixed seed, plus
//! convenience types for hash maps keyed by tuple attributes.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: a fast, deterministic, non-cryptographic hasher.
///
/// Quality is sufficient for partitioning keys produced by workload
/// generators; it is NOT HashDoS-resistant, which is acceptable because all
/// inputs are produced by trusted components of the system.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash any `Hash` value to a `u64` with the deterministic hasher.
///
/// This is THE partitioning function of the whole system: the router, the
/// hash sub-index and the join-matrix baseline all call it, so "same key ⇒
/// same partition" holds across components by construction.
#[inline]
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Map a hash to one of `n` buckets (upper-bits multiply-shift; avoids the
/// modulo bias of `h % n` and the weak low bits of multiplicative hashes).
#[inline]
pub fn bucket_of(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    // 128-bit multiply-shift maps uniformly into [0, n).
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42i64), hash_one(&42i64));
        assert_eq!(hash_one("key"), hash_one("key"));
        assert_ne!(hash_one(&1i64), hash_one(&2i64));
    }

    #[test]
    fn bucket_of_stays_in_range_and_uses_all_buckets() {
        let n = 7;
        let mut seen = vec![false; n];
        for k in 0..10_000i64 {
            let b = bucket_of(hash_one(&k), n);
            assert!(b < n);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let n = 16;
        let total = 160_000i64;
        let mut counts = vec![0usize; n];
        for k in 0..total {
            counts[bucket_of(hash_one(&k), n)] += 1;
        }
        let expect = (total as usize) / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 8 / 10 && c < expect * 12 / 10,
                "bucket {i} has {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn byte_writes_match_wordwise_content() {
        // write() must incorporate trailing bytes: "aaaaaaaab" differs from
        // "aaaaaaaa" (8-byte aligned prefix).
        assert_ne!(hash_one("aaaaaaaab"), hash_one("aaaaaaaa"));
        // and length is mixed in so "a\0" != "a"
        let mut h1 = FxHasher::default();
        h1.write(b"a\0");
        let mut h2 = FxHasher::default();
        h2.write(b"a");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<i64, i64> = FxHashMap::default();
        m.insert(1, 10);
        assert_eq!(m.get(&1), Some(&10));
    }
}
