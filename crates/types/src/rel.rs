//! The two streaming relations `R` and `S` joined by the biclique.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which streaming relation a tuple (or processing unit) belongs to.
///
/// The join-biclique model is symmetric in `R` and `S`; code that treats
/// one side specially should take a `Rel` parameter and use
/// [`Rel::opposite`] rather than hard-coding a side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rel {
    /// The left streaming relation.
    R,
    /// The right streaming relation.
    S,
}

impl Rel {
    /// The other side of the biclique: tuples from `self` are *stored* on
    /// `self`'s units and *joined* on `self.opposite()`'s units.
    #[inline]
    pub fn opposite(self) -> Rel {
        match self {
            Rel::R => Rel::S,
            Rel::S => Rel::R,
        }
    }

    /// Both relations, in canonical order. Handy for iteration in tests and
    /// topology construction.
    pub const BOTH: [Rel; 2] = [Rel::R, Rel::S];

    /// Stable single-byte encoding used in the wire format.
    #[inline]
    pub fn as_byte(self) -> u8 {
        match self {
            Rel::R => 0,
            Rel::S => 1,
        }
    }

    /// Inverse of [`Rel::as_byte`].
    #[inline]
    pub fn from_byte(b: u8) -> Option<Rel> {
        match b {
            0 => Some(Rel::R),
            1 => Some(Rel::S),
            _ => None,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rel::R => write!(f, "R"),
            Rel::S => write!(f, "S"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_an_involution() {
        for side in Rel::BOTH {
            assert_eq!(side.opposite().opposite(), side);
            assert_ne!(side.opposite(), side);
        }
    }

    #[test]
    fn byte_roundtrip() {
        for side in Rel::BOTH {
            assert_eq!(Rel::from_byte(side.as_byte()), Some(side));
        }
        assert_eq!(Rel::from_byte(9), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rel::R.to_string(), "R");
        assert_eq!(Rel::S.to_string(), "S");
    }
}
