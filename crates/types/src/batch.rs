//! Micro-batched framing of the router→joiner streams.
//!
//! The paper's model routes every tuple as its own store/join message; the
//! per-tuple framing, queue hand-off and index probe dominate mechanical
//! cost long before the join itself does. A [`TupleBatch`] amortises that
//! overhead: it groups tuple copies that share an emitting router, a
//! delivery purpose and a side into **one** reference-counted [`Bytes`]
//! frame, so a batch of `k` tuples costs one enqueue, one dequeue and one
//! decode pass instead of `k`.
//!
//! Batching is purely mechanical: every entry keeps its own `(router, seq)`
//! stamp, so the ordering protocol's global sequence `Z` (Definition 7) is
//! untouched — a run with `batch_size = 1` and a run with `batch_size = 64`
//! assign identical sequence numbers and produce identical output. Routers
//! accumulate per-destination batches and flush on a size boundary or on a
//! punctuation boundary (a punctuation may not overtake the data it
//! covers), which is why sequence numbers inside a batch form runs of
//! contiguous values per router.
//!
//! ## Wire format
//!
//! A batch frame is length-prefixed per entry so transports can account
//! for tuples without decoding attribute values:
//!
//! ```text
//! router(4) purpose(1) count(2) first_seq(8)
//!   then per entry: seq_delta(4) tuple_len(4) tuple_bytes…
//! ```
//!
//! `seq_delta` is the entry's offset from `first_seq` (entries are
//! seq-ascending; deltas are non-decreasing). [`BatchMessage`] adds the
//! kind byte shared with [`StreamMessage`](crate::punct::StreamMessage):
//! `0` is a punctuation (identical layout), `2` is a batch frame.

use crate::error::{Error, Result};
use crate::punct::{Punctuation, Purpose, RouterId, SeqNo, StreamMessage};
use crate::rel::Rel;
use crate::tuple::Tuple;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Wire kind byte of a punctuation frame (shared with `StreamMessage`).
const KIND_PUNCT: u8 = 0;
/// Wire kind byte of a batch frame.
const KIND_BATCH: u8 = 2;

/// Most entries one batch frame can carry (the count field is a `u16`).
pub const MAX_BATCH_LEN: usize = u16::MAX as usize;

/// One sequenced tuple copy inside a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// The tuple's position in the emitting router's sequence.
    pub seq: SeqNo,
    /// The tuple itself.
    pub tuple: Tuple,
}

/// A run of tuple copies sharing an emitting router, a purpose and a side,
/// moved through the dataflow as one unit of work.
///
/// Entries are kept in ascending sequence order (the router appends in
/// assignment order), and all tuples belong to the same relation — both
/// invariants are debug-asserted on [`TupleBatch::push`].
#[derive(Debug, Clone, PartialEq)]
pub struct TupleBatch {
    router: RouterId,
    purpose: Purpose,
    entries: Vec<BatchEntry>,
}

impl TupleBatch {
    /// An empty batch for `router`'s `purpose` stream.
    pub fn new(router: RouterId, purpose: Purpose) -> TupleBatch {
        TupleBatch { router, purpose, entries: Vec::new() }
    }

    /// An empty batch with room for `cap` entries.
    pub fn with_capacity(router: RouterId, purpose: Purpose, cap: usize) -> TupleBatch {
        TupleBatch { router, purpose, entries: Vec::with_capacity(cap) }
    }

    /// Build a batch from pre-collected entries.
    ///
    /// # Panics
    /// Debug-asserts the entry invariants (ascending seqs, one side).
    pub fn from_entries(
        router: RouterId,
        purpose: Purpose,
        entries: Vec<BatchEntry>,
    ) -> TupleBatch {
        let mut b = TupleBatch { router, purpose, entries: Vec::new() };
        for e in entries {
            b.push(e.seq, e.tuple);
        }
        b
    }

    /// Append one sequenced tuple.
    ///
    /// # Panics
    /// Debug-asserts that `seq` is strictly greater than the last entry's
    /// and that the tuple's relation matches the batch's side.
    pub fn push(&mut self, seq: SeqNo, tuple: Tuple) {
        debug_assert!(
            self.entries.last().map(|e| e.seq < seq).unwrap_or(true),
            "batch seqs must ascend"
        );
        debug_assert!(
            self.entries.first().map(|e| e.tuple.rel() == tuple.rel()).unwrap_or(true),
            "batch tuples must share a side"
        );
        debug_assert!(self.entries.len() < MAX_BATCH_LEN, "batch overflows the count field");
        self.entries.push(BatchEntry { seq, tuple });
    }

    /// The emitting router.
    pub fn router(&self) -> RouterId {
        self.router
    }

    /// Store or join stream.
    pub fn purpose(&self) -> Purpose {
        self.purpose
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The side all tuples share, if any tuple is present.
    pub fn side(&self) -> Option<Rel> {
        self.entries.first().map(|e| e.tuple.rel())
    }

    /// Lowest sequence number in the batch.
    pub fn first_seq(&self) -> Option<SeqNo> {
        self.entries.first().map(|e| e.seq)
    }

    /// Highest sequence number in the batch.
    pub fn last_seq(&self) -> Option<SeqNo> {
        self.entries.last().map(|e| e.seq)
    }

    /// True when the sequence numbers form one dense run
    /// (`first_seq..=last_seq` with no gaps) — the common case for a
    /// single-router flush.
    pub fn is_contiguous(&self) -> bool {
        match (self.first_seq(), self.last_seq()) {
            (Some(first), Some(last)) => last - first + 1 == self.entries.len() as u64,
            _ => true,
        }
    }

    /// The entries, seq-ascending.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// Consume the batch, yielding its entries.
    pub fn into_entries(self) -> Vec<BatchEntry> {
        self.entries
    }

    /// Encode to one wire frame (see the module docs for the layout).
    ///
    /// # Errors
    /// An empty batch or a sequence span exceeding the `u32` delta field
    /// is a codec error — routers flush well before either bound.
    pub fn encode(&self) -> Result<Bytes> {
        let first = self
            .first_seq()
            .ok_or_else(|| Error::Codec("refusing to encode an empty batch".into()))?;
        let mut buf = BytesMut::with_capacity(15 + self.entries.len() * 32);
        buf.put_u32(self.router);
        buf.put_u8(self.purpose.as_byte());
        buf.put_u16(self.entries.len() as u16);
        buf.put_u64(first);
        for e in &self.entries {
            let delta = e.seq - first;
            if delta > u32::MAX as u64 {
                return Err(Error::Codec(format!(
                    "batch seq span {delta} overflows the delta field"
                )));
            }
            let body = e.tuple.encode();
            buf.put_u32(delta as u32);
            buf.put_u32(body.len() as u32);
            buf.put_slice(&body);
        }
        Ok(buf.freeze())
    }

    /// Decode a frame produced by [`TupleBatch::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<TupleBatch> {
        if buf.remaining() < 15 {
            return Err(Error::Codec("batch header truncated".into()));
        }
        let router = buf.get_u32();
        let purpose = Purpose::from_byte(buf.get_u8())
            .ok_or_else(|| Error::Codec("bad purpose byte in batch header".into()))?;
        let count = buf.get_u16() as usize;
        let first = buf.get_u64();
        if count == 0 {
            return Err(Error::Codec("batch frame with zero entries".into()));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(Error::Codec("batch entry header truncated".into()));
            }
            let delta = buf.get_u32() as u64;
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(Error::Codec("batch entry body truncated".into()));
            }
            let mut body = buf.copy_to_bytes(len);
            let tuple = Tuple::decode(&mut body)?;
            if body.has_remaining() {
                return Err(Error::Codec("trailing bytes after batch tuple".into()));
            }
            entries.push(BatchEntry { seq: first + delta, tuple });
        }
        Ok(TupleBatch { router, purpose, entries })
    }
}

impl fmt::Display for TupleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch[r{} {:?} x{} #{}..#{}]",
            self.router,
            self.purpose,
            self.len(),
            self.first_seq().unwrap_or(0),
            self.last_seq().unwrap_or(0),
        )
    }
}

/// One frame on a batched router→joiner channel: a tuple batch or a
/// punctuation of the ordering protocol.
///
/// Punctuation frames reuse the single-tuple wire layout byte-for-byte, so
/// a batched transport and a per-tuple transport agree on control traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchMessage {
    /// A run of sequenced tuple copies.
    Batch(TupleBatch),
    /// A punctuation releasing the joiner's reorder buffer.
    Punct(Punctuation),
}

impl BatchMessage {
    /// The emitting router of this frame.
    pub fn router(&self) -> RouterId {
        match self {
            BatchMessage::Batch(b) => b.router(),
            BatchMessage::Punct(p) => p.router,
        }
    }

    /// Number of tuples the frame carries (0 for punctuations).
    pub fn tuple_count(&self) -> usize {
        match self {
            BatchMessage::Batch(b) => b.len(),
            BatchMessage::Punct(_) => 0,
        }
    }

    /// Wrap a single sequenced copy in a one-entry batch — the
    /// `batch_size = 1` framing every transport degenerates to.
    pub fn single(router: RouterId, seq: SeqNo, purpose: Purpose, tuple: Tuple) -> BatchMessage {
        let mut b = TupleBatch::with_capacity(router, purpose, 1);
        b.push(seq, tuple);
        BatchMessage::Batch(b)
    }

    /// Convert a per-tuple [`StreamMessage`] into its batched framing.
    pub fn from_stream(msg: StreamMessage) -> BatchMessage {
        match msg {
            StreamMessage::Punct(p) => BatchMessage::Punct(p),
            StreamMessage::Data { router, seq, purpose, tuple } => {
                BatchMessage::single(router, seq, purpose, tuple)
            }
        }
    }

    /// Encode to the broker wire format: `kind(1)` then the punctuation or
    /// batch body.
    ///
    /// # Errors
    /// Propagates [`TupleBatch::encode`] errors (empty batch).
    pub fn encode(&self) -> Result<Bytes> {
        match self {
            BatchMessage::Punct(p) => {
                let mut buf = BytesMut::with_capacity(13);
                buf.put_u8(KIND_PUNCT);
                buf.put_u32(p.router);
                buf.put_u64(p.seq);
                Ok(buf.freeze())
            }
            BatchMessage::Batch(b) => {
                let body = b.encode()?;
                let mut buf = BytesMut::with_capacity(1 + body.len());
                buf.put_u8(KIND_BATCH);
                buf.put_slice(&body);
                Ok(buf.freeze())
            }
        }
    }

    /// Decode a frame produced by [`BatchMessage::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<BatchMessage> {
        if buf.remaining() < 1 {
            return Err(Error::Codec("batch message kind byte missing".into()));
        }
        match buf.get_u8() {
            KIND_PUNCT => {
                if buf.remaining() < 12 {
                    return Err(Error::Codec("punctuation frame truncated".into()));
                }
                let router = buf.get_u32();
                let seq = buf.get_u64();
                Ok(BatchMessage::Punct(Punctuation { router, seq }))
            }
            KIND_BATCH => Ok(BatchMessage::Batch(TupleBatch::decode(buf)?)),
            k => Err(Error::Codec(format!("unknown batch message kind {k}"))),
        }
    }
}

impl fmt::Display for BatchMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchMessage::Batch(b) => write!(f, "{b}"),
            BatchMessage::Punct(p) => write!(f, "punct[r{}#{}]", p.router, p.seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(rel: Rel, ts: u64, k: i64) -> Tuple {
        Tuple::new(rel, ts, vec![Value::Int(k)])
    }

    fn batch3() -> TupleBatch {
        let mut b = TupleBatch::new(7, Purpose::Store);
        b.push(10, t(Rel::R, 1, 1));
        b.push(11, t(Rel::R, 2, 2));
        b.push(12, t(Rel::R, 3, 3));
        b
    }

    #[test]
    fn accessors_and_contiguity() {
        let b = batch3();
        assert_eq!(b.router(), 7);
        assert_eq!(b.purpose(), Purpose::Store);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.side(), Some(Rel::R));
        assert_eq!((b.first_seq(), b.last_seq()), (Some(10), Some(12)));
        assert!(b.is_contiguous());
        let mut gappy = TupleBatch::new(0, Purpose::Join);
        gappy.push(1, t(Rel::S, 1, 1));
        gappy.push(5, t(Rel::S, 2, 2));
        assert!(!gappy.is_contiguous(), "hash routing leaves gaps");
        assert!(TupleBatch::new(0, Purpose::Join).is_contiguous(), "empty is trivially dense");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let b = batch3();
        let mut wire = b.encode().unwrap();
        let back = TupleBatch::decode(&mut wire).unwrap();
        assert_eq!(back, b);
        assert!(!wire.has_remaining(), "frame fully consumed");
    }

    #[test]
    fn roundtrip_preserves_seq_gaps() {
        let mut b = TupleBatch::new(3, Purpose::Join);
        b.push(100, t(Rel::S, 5, 1));
        b.push(104, t(Rel::S, 6, 2));
        b.push(109, t(Rel::S, 7, 3));
        let mut wire = b.encode().unwrap();
        let back = TupleBatch::decode(&mut wire).unwrap();
        let seqs: Vec<SeqNo> = back.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![100, 104, 109]);
    }

    #[test]
    fn empty_batch_refuses_to_encode() {
        assert!(TupleBatch::new(0, Purpose::Store).encode().is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let full = batch3().encode().unwrap();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(TupleBatch::decode(&mut partial).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_rejects_zero_count_and_bad_purpose() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u8(0);
        buf.put_u16(0); // zero entries
        buf.put_u64(0);
        assert!(TupleBatch::decode(&mut buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u8(9); // bad purpose
        buf.put_u16(1);
        buf.put_u64(0);
        assert!(TupleBatch::decode(&mut buf.freeze()).is_err());
    }

    #[test]
    fn message_roundtrips_both_kinds() {
        let b = BatchMessage::Batch(batch3());
        let mut wire = b.encode().unwrap();
        assert_eq!(BatchMessage::decode(&mut wire).unwrap(), b);
        let p = BatchMessage::Punct(Punctuation { router: 2, seq: 77 });
        let mut wire = p.encode().unwrap();
        assert_eq!(BatchMessage::decode(&mut wire).unwrap(), p);
    }

    #[test]
    fn punct_frame_matches_stream_message_layout() {
        let p = Punctuation { router: 9, seq: 1234 };
        let batched = BatchMessage::Punct(p).encode().unwrap();
        let legacy = StreamMessage::Punct(p).encode();
        assert_eq!(batched, legacy, "control frames are transport-compatible");
    }

    #[test]
    fn single_wraps_one_stream_data_message() {
        let msg = StreamMessage::Data {
            router: 4,
            seq: 42,
            purpose: Purpose::Join,
            tuple: t(Rel::S, 9, 5),
        };
        let BatchMessage::Batch(b) = BatchMessage::from_stream(msg) else {
            panic!("data wraps into a batch");
        };
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_seq(), Some(42));
        assert_eq!(b.purpose(), Purpose::Join);
        assert_eq!(BatchMessage::Batch(b.clone()).tuple_count(), 1);
        assert_eq!(BatchMessage::Punct(Punctuation { router: 0, seq: 0 }).tuple_count(), 0);
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0);
        buf.put_u64(0);
        assert!(BatchMessage::decode(&mut buf.freeze()).is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(batch3().to_string(), "batch[r7 Store x3 #10..#12]");
    }
}
