//! Prometheus text-format rendering — the one exposition-format emitter.
//!
//! Every exposition-format string that leaves the process goes through
//! this module: `cargo xtask lint` rejects `# TYPE`/`# HELP` string
//! literals anywhere else in the workspace, so the text shape stays
//! consistent across the CLI (`--telemetry-out`), the threaded executor's
//! scrape endpoint and the legacy engine snapshot. The format is
//! hand-rolled (zero new deps) and reuses the registry's label-escaping
//! rules ([`crate::registry::escape_label_value`] semantics, written
//! inline to avoid per-label allocation).
//!
//! Counters and gauges render as single sample lines. Histograms render
//! summary-style (pinned `quantile` lines plus `_count`/`_sum`/`_max`)
//! and additionally expose cumulative `_bucket{le="…"}` lines read
//! straight from the live log₂ buckets, so scrape consumers can recover
//! the full distribution rather than just three quantiles.

use crate::metrics::Histogram;
use crate::registry::{Handle, MetricKey, MetricsRegistry};
use crate::time::Ts;
use std::fmt::Write as _;

/// A reusable exporter: holds the output buffer across renders so a
/// steady-state telemetry loop stops allocating once the buffer has grown
/// to the size of one exposition page.
#[derive(Debug, Default)]
pub struct TextExporter {
    buf: String,
    family: String,
}

impl TextExporter {
    /// A fresh exporter with empty buffers.
    pub fn new() -> TextExporter {
        TextExporter::default()
    }

    /// Render `registry` in the Prometheus text exposition format at
    /// (informational) scrape time `at`, reusing the internal buffer.
    /// The returned slice is valid until the next `render` call.
    pub fn render(&mut self, registry: &MetricsRegistry, _at: Ts) -> &str {
        self.buf.clear();
        self.family.clear();
        let buf = &mut self.buf;
        let family = &mut self.family;
        registry.for_each_handle(|key, handle| {
            if key.name != *family {
                let kind = match handle {
                    Handle::Counter(_) => "counter",
                    Handle::Gauge(_) => "gauge",
                    Handle::Histogram(_) => "summary",
                };
                let _ = writeln!(buf, "# TYPE {} {kind}", key.name);
                family.clear();
                family.push_str(&key.name);
            }
            match handle {
                Handle::Counter(c) => {
                    write_series(buf, &key.name, "", &key.labels, None);
                    let _ = writeln!(buf, " {}", c.get());
                }
                Handle::Gauge(g) => {
                    write_series(buf, &key.name, "", &key.labels, None);
                    let _ = writeln!(buf, " {}", g.get());
                }
                Handle::Histogram(h) => write_histogram(buf, key, h),
            }
        });
        &self.buf
    }
}

/// One-shot convenience: render `registry` into a fresh string.
pub fn prometheus_text(registry: &MetricsRegistry, at: Ts) -> String {
    let mut exporter = TextExporter::new();
    exporter.render(registry, at);
    exporter.buf
}

/// Append one self-describing sample — `# HELP` + `# TYPE` header plus a
/// single `name{labels} value` line. This is the hook for components that
/// expose a snapshot outside the registry (the legacy engine endpoint);
/// they pass their values here instead of formatting exposition text
/// themselves.
pub fn write_sample(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    labels: &[(&str, &str)],
    value: f64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            write_escaped(out, v);
            out.push('"');
        }
        out.push('}');
    }
    if value.fract() == 0.0 && value.abs() < 9e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value}");
    }
}

/// Write `name` + optional `suffix` + a `{…}` label block (labels in key
/// order, `extra` appended last), escaping label values inline.
fn write_series(
    buf: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) {
    buf.push_str(name);
    buf.push_str(suffix);
    if labels.is_empty() && extra.is_none() {
        return;
    }
    buf.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            buf.push(',');
        }
        first = false;
        buf.push_str(k);
        buf.push_str("=\"");
        write_escaped(buf, v);
        buf.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            buf.push(',');
        }
        buf.push_str(k);
        buf.push_str("=\"");
        write_escaped(buf, v);
        buf.push('"');
    }
    buf.push('}');
}

/// Escape a label value per the Prometheus rules (`\\`, `\"`, `\n`),
/// writing directly into `buf` — same semantics as
/// [`crate::registry::escape_label_value`] without the intermediate
/// allocation.
fn write_escaped(buf: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => buf.push_str("\\\\"),
            '"' => buf.push_str("\\\""),
            '\n' => buf.push_str("\\n"),
            _ => buf.push(c),
        }
    }
}

/// Render one histogram family: pinned quantiles, cumulative log₂
/// buckets, then `_count`/`_sum`/`_max`.
fn write_histogram(buf: &mut String, key: &MetricKey, h: &Histogram) {
    let name = &key.name;
    let snap = h.snapshot();
    for (q, v) in [("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)] {
        write_series(buf, name, "", &key.labels, Some(("quantile", q)));
        let _ = writeln!(buf, " {v}");
    }
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    let mut le = String::new();
    for (i, c) in counts.iter().enumerate() {
        cumulative += c;
        if *c == 0 {
            continue;
        }
        let Some(upper) = Histogram::bucket_upper_bound(i) else {
            // The open-ended last bucket is covered by the +Inf line.
            continue;
        };
        le.clear();
        let _ = write!(le, "{upper}");
        write_series(buf, name, "_bucket", &key.labels, Some(("le", &le)));
        let _ = writeln!(buf, " {cumulative}");
    }
    write_series(buf, name, "_bucket", &key.labels, Some(("le", "+Inf")));
    let _ = writeln!(buf, " {cumulative}");
    write_series(buf, name, "_count", &key.labels, None);
    let _ = writeln!(buf, " {}", snap.count);
    write_series(buf, name, "_sum", &key.labels, None);
    let _ = writeln!(buf, " {}", h.sum());
    write_series(buf, name, "_max", &key.labels, None);
    let _ = writeln!(buf, " {}", snap.max);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inverse of the exporter's label escaping, for round-trip checks.
    fn unescape(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => panic!("bad escape: \\{other:?}"),
            }
        }
        out
    }

    #[test]
    fn label_escaping_round_trips() {
        let ugly = "we\"ird\\lab\nel";
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("engine", ugly)]).inc();
        let text = prometheus_text(&reg, 0);
        let line = text.lines().find(|l| l.starts_with("c_total{")).unwrap();
        // No raw newline survives inside the label block.
        assert!(line.contains(r#"engine="we\"ird\\lab\nel""#), "got: {line}");
        let escaped = line.strip_prefix("c_total{engine=\"").unwrap();
        let escaped = escaped.strip_suffix("\"} 1").unwrap();
        assert_eq!(unescape(escaped), ugly);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ms", &[("joiner", "S1")]);
        for v in [0u64, 1, 2, 3, 4, 100, 100_000] {
            h.record(v);
        }
        let text = prometheus_text(&reg, 0);
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter(|l| l.starts_with("lat_ms_bucket{"))
            .map(|l| {
                let (key, v) = l.rsplit_once(' ').unwrap();
                let le = key.split("le=\"").nth(1).unwrap().trim_end_matches("\"}");
                (le.to_string(), v.parse().unwrap())
            })
            .collect();
        assert!(buckets.len() >= 4, "got: {buckets:?}");
        // Cumulative counts never decrease and +Inf closes at the total.
        for w in buckets.windows(2) {
            assert!(w[1].1 >= w[0].1, "non-monotone: {buckets:?}");
        }
        assert_eq!(buckets.last().unwrap(), &("+Inf".to_string(), 7));
        // Each finite bucket counts exactly the samples ≤ its upper edge.
        for (le, cum) in &buckets {
            if le == "+Inf" {
                continue;
            }
            let edge: u64 = le.parse().unwrap();
            let expect =
                [0u64, 1, 2, 3, 4, 100, 100_000].iter().filter(|v| **v <= edge).count() as u64;
            assert_eq!(*cum, expect, "le={le}");
        }
    }

    #[test]
    fn golden_exposition_text() {
        let reg = MetricsRegistry::new();
        reg.counter("acme_requests_total", &[("svc", "a")]).add(3);
        reg.gauge("acme_queue_depth", &[]).set(7);
        let h = reg.histogram("acme_lat_ms", &[("svc", "a")]);
        for v in [0u64, 1, 3, 100] {
            h.record(v);
        }
        let text = prometheus_text(&reg, 0);
        let expected = "\
# TYPE acme_lat_ms summary
acme_lat_ms{svc=\"a\",quantile=\"0.5\"} 2
acme_lat_ms{svc=\"a\",quantile=\"0.95\"} 100
acme_lat_ms{svc=\"a\",quantile=\"0.99\"} 100
acme_lat_ms_bucket{svc=\"a\",le=\"0\"} 1
acme_lat_ms_bucket{svc=\"a\",le=\"1\"} 2
acme_lat_ms_bucket{svc=\"a\",le=\"3\"} 3
acme_lat_ms_bucket{svc=\"a\",le=\"127\"} 4
acme_lat_ms_bucket{svc=\"a\",le=\"+Inf\"} 4
acme_lat_ms_count{svc=\"a\"} 4
acme_lat_ms_sum{svc=\"a\"} 104
acme_lat_ms_max{svc=\"a\"} 100
# TYPE acme_queue_depth gauge
acme_queue_depth 7
# TYPE acme_requests_total counter
acme_requests_total{svc=\"a\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exporter_reuses_its_buffer() {
        let reg = MetricsRegistry::new();
        for i in 0..64 {
            let unit = format!("u{i}");
            reg.counter("c_total", &[("unit", unit.as_str())]).add(i);
        }
        let mut exporter = TextExporter::new();
        let first = exporter.render(&reg, 0).to_string();
        let grown = exporter.buf.capacity();
        for _ in 0..8 {
            assert_eq!(exporter.render(&reg, 0), first);
        }
        assert_eq!(exporter.buf.capacity(), grown, "steady-state renders must not regrow");
    }

    #[test]
    fn write_sample_renders_help_type_and_value() {
        let mut out = String::new();
        write_sample(&mut out, "x_total", "things counted", "counter", &[("e", "a\"b")], 4.0);
        write_sample(&mut out, "y_ms", "a latency", "gauge", &[], 1.5);
        assert_eq!(
            out,
            "# HELP x_total things counted\n# TYPE x_total counter\nx_total{e=\"a\\\"b\"} 4\n\
             # HELP y_ms a latency\n# TYPE y_ms gauge\ny_ms 1.5\n"
        );
    }

    #[test]
    fn scrape_into_reuses_the_sample_buffer() {
        let reg = MetricsRegistry::new();
        for i in 0..32 {
            let unit = format!("u{i}");
            reg.counter("c_total", &[("unit", unit.as_str())]).inc();
        }
        let mut snap = crate::registry::RegistrySnapshot::default();
        reg.scrape_into(1, &mut snap);
        let cap = snap.samples.capacity();
        for t in 2..10 {
            reg.scrape_into(t, &mut snap);
            assert_eq!(snap.at, t);
            assert_eq!(snap.samples.len(), 32);
        }
        assert_eq!(snap.samples.capacity(), cap, "steady-state scrapes must not regrow");
    }
}
