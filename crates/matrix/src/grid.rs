//! The matrix grid: cells, tuple processing, memory accounting and
//! resize-with-migration.

use bistream_cluster::{CostModel, ResourceMeter};
use bistream_core::stats::{EngineSnapshot, EngineStats};
use bistream_index::{ChainedIndex, IndexKind};
use bistream_types::audit::Auditor;
use bistream_types::error::{Error, Result};
use bistream_types::metrics::Counter;
use bistream_types::predicate::{JoinPredicate, ProbePlan};
use bistream_types::registry::Observability;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::trace::{HopKind, Tracer};
use bistream_types::tuple::{JoinResult, Tuple};
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a join-matrix instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Matrix rows (R's partitioning axis).
    pub rows: usize,
    /// Matrix columns (S's partitioning axis).
    pub cols: usize,
    /// The join predicate.
    pub predicate: JoinPredicate,
    /// The window specification.
    pub window: WindowSpec,
    /// Archive period of the per-cell chained indexes, ms.
    pub archive_period_ms: Ts,
    /// Seed for row/column assignment.
    pub seed: u64,
}

impl MatrixConfig {
    /// A square `n × n` matrix for the given predicate and window.
    pub fn square(n: usize, predicate: JoinPredicate, window: WindowSpec) -> MatrixConfig {
        MatrixConfig { rows: n, cols: n, predicate, window, archive_period_ms: 1_000, seed: 0x3A7 }
    }

    /// Validate shape.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(Error::Config("matrix needs at least 1×1 cells".into()));
        }
        Ok(())
    }
}

/// One matrix cell: fragments of both relations plus a resource meter.
pub(crate) struct Cell {
    pub(crate) r_index: ChainedIndex,
    pub(crate) s_index: ChainedIndex,
    pub(crate) meter: Arc<ResourceMeter>,
    pub(crate) stored: u64,
}

impl Cell {
    fn new(config: &MatrixConfig) -> Cell {
        let kind = IndexKind::for_predicate(&config.predicate);
        Cell {
            r_index: ChainedIndex::new(kind, config.window, config.archive_period_ms),
            s_index: ChainedIndex::new(kind, config.window, config.archive_period_ms),
            meter: ResourceMeter::shared(),
            stored: 0,
        }
    }

    fn index_of(&mut self, side: Rel) -> &mut ChainedIndex {
        match side {
            Rel::R => &mut self.r_index,
            Rel::S => &mut self.s_index,
        }
    }

    fn bytes(&self) -> u64 {
        (self.r_index.stats().bytes + self.s_index.stats().bytes) as u64
    }

    /// Process one replicated tuple at this cell: store it in its own
    /// relation's fragment, expire the opposite fragment (Theorem 1),
    /// probe it, and emit matches. Shared by the synchronous engine and
    /// the threaded pipeline.
    pub(crate) fn process<F: FnMut(JoinResult)>(
        &mut self,
        tuple: &Tuple,
        predicate: &JoinPredicate,
        cost: &CostModel,
        emit: &mut F,
    ) -> Result<()> {
        self.meter.charge_cpu_us(cost.ingest_us);
        let key = key_of(predicate, tuple)?;
        self.index_of(tuple.rel()).insert(key, tuple.clone());
        self.stored += 1;
        self.meter.charge_cpu_us(cost.insert_us);

        let plan = predicate.probe_plan(tuple)?;
        let verify = matches!(
            (&plan, predicate),
            (ProbePlan::FullScan, _) | (_, JoinPredicate::Band { .. })
        );
        let opp = self.index_of(tuple.rel().opposite());
        let sub_before = opp.stats().expired_sub_indexes;
        opp.expire(tuple.ts());
        let sub_dropped = opp.stats().expired_sub_indexes - sub_before;
        if sub_dropped > 0 {
            self.meter.charge_cpu_us(cost.expire_subindex_us * sub_dropped as f64);
        }
        let mut matched: Vec<Tuple> = Vec::new();
        let pstats = self
            .index_of(tuple.rel().opposite())
            .probe(&plan, tuple.ts(), |stored| matched.push(stored.clone()));
        let mut results = 0usize;
        for stored in matched {
            if verify && !predicate.matches(&stored, tuple)? {
                continue;
            }
            results += 1;
            emit(JoinResult::of(stored, tuple.clone()));
        }
        self.meter.charge_cpu_us(cost.probe_cost_us(pstats.candidates, results));
        self.meter.set_memory_bytes(self.bytes());
        Ok(())
    }
}

/// What a matrix resize had to move.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MigrationReport {
    /// Tuples copied into newly created cells.
    pub tuples_moved: u64,
    /// Bytes copied into newly created cells.
    pub bytes_moved: u64,
    /// Cells created.
    pub cells_added: usize,
    /// Cells destroyed.
    pub cells_removed: usize,
}

/// The synchronous join-matrix engine.
pub struct JoinMatrix {
    config: MatrixConfig,
    cost: CostModel,
    /// Row-major `rows × cols` cells.
    cells: Vec<Cell>,
    rows: usize,
    cols: usize,
    rng: StdRng,
    stats: Arc<EngineStats>,
    capture: Option<Vec<JoinResult>>,
    obs: Option<Observability>,
    /// Per-cell replication counters, row-major, parallel to `cells`
    /// (empty until [`JoinMatrix::attach_obs`]).
    cell_replicated: Vec<Arc<Counter>>,
    /// Per-tuple tracer (disabled until [`JoinMatrix::attach_obs`] hands
    /// over an enabled one). The matrix has no router tier, so it stamps
    /// its own ingest counter as the trace id.
    tracer: Tracer,
    /// Ingest counter doubling as the trace sequence number.
    seq: u64,
    now: Ts,
    /// Protocol-invariant auditor: Theorem 1 discard checks on every cell
    /// fragment plus the output oracle (the matrix has no router tier, so
    /// the sequencing and ordering rules do not apply here).
    auditor: Option<Auditor>,
}

impl JoinMatrix {
    /// Build a matrix with the default cost model.
    pub fn new(config: MatrixConfig) -> Result<JoinMatrix> {
        Self::with_cost(config, CostModel::default())
    }

    /// Build a matrix charging `cost` to cell meters.
    pub fn with_cost(config: MatrixConfig, cost: CostModel) -> Result<JoinMatrix> {
        config.validate()?;
        let cells = (0..config.rows * config.cols).map(|_| Cell::new(&config)).collect();
        let mut matrix = JoinMatrix {
            rows: config.rows,
            cols: config.cols,
            rng: StdRng::seed_from_u64(config.seed),
            cells,
            cost,
            stats: EngineStats::shared(),
            capture: None,
            obs: None,
            cell_replicated: Vec::new(),
            tracer: Tracer::disabled(),
            seq: 0,
            now: 0,
            auditor: Auditor::new_if_debug(),
            config,
        };
        matrix.audit_cells();
        Ok(matrix)
    }

    /// Attach a specific auditor (debug builds self-arm one in
    /// [`JoinMatrix::with_cost`]; use this to share or to audit a release
    /// build). Re-hooks every cell fragment.
    pub fn set_auditor(&mut self, auditor: Auditor) {
        self.auditor = Some(auditor);
        self.audit_cells();
    }

    /// The auditor observing this matrix, if any.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.auditor.as_ref()
    }

    /// Point every cell fragment's discard hook at the current auditor.
    fn audit_cells(&mut self) {
        let Some(a) = self.auditor.clone() else { return };
        for (idx, cell) in self.cells.iter_mut().enumerate() {
            let label = format!("cell{}x{}", idx / self.cols, idx % self.cols);
            cell.r_index.set_auditor(a.clone(), format!("{label}.R"));
            cell.s_index.set_auditor(a.clone(), format!("{label}.S"));
        }
    }

    /// Attach the unified observability layer: engine-wide series under
    /// `engine="matrix"`, one `bistream_matrix_cell_replicated_total`
    /// counter per grid cell (label `cell="<row>x<col>"` — the
    /// replication-cost breakdown the biclique comparison reads), and
    /// every cell meter under `pod="cell<row>x<col>"`. A resize
    /// re-registers the new shape and drops the old cells' series.
    pub fn attach_obs(&mut self, obs: &Observability) {
        self.stats.register_into(&obs.registry, &[("engine", "matrix")]);
        self.tracer = obs.tracer.clone();
        self.obs = Some(obs.clone());
        self.register_cells();
    }

    fn register_cells(&mut self) {
        self.cell_replicated.clear();
        let Some(obs) = &self.obs else { return };
        for row in 0..self.rows {
            for col in 0..self.cols {
                let label = format!("{row}x{col}");
                self.cell_replicated.push(obs.registry.counter(
                    bistream_types::metric_names::MATRIX_CELL_REPLICATED_TOTAL,
                    &[("cell", &label)],
                ));
                let pod = format!("cell{label}");
                self.cells[row * self.cols + col]
                    .meter
                    .register_into(&obs.registry, &[("pod", &pod)]);
            }
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Engine-wide counters (same schema as the biclique engine's).
    pub fn stats(&self) -> EngineSnapshot {
        self.stats.snapshot()
    }

    /// Begin capturing emitted join results.
    pub fn capture_results(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Take captured results.
    pub fn take_captured(&mut self) -> Vec<JoinResult> {
        self.capture.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Total accounted bytes of live state across all cells — the
    /// replication cost the memory experiments compare against the
    /// biclique's.
    pub fn memory_bytes(&self) -> u64 {
        self.cells.iter().map(Cell::bytes).sum()
    }

    /// Per-cell stored-tuple counts (load-balance metrics).
    pub fn stored_per_cell(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.stored).collect()
    }

    /// Cell meters keyed by cell index (for utilization scraping).
    pub fn pod_meters(&self) -> Vec<(usize, Arc<ResourceMeter>)> {
        self.cells.iter().enumerate().map(|(i, c)| (i, Arc::clone(&c.meter))).collect()
    }

    #[inline]
    fn cell_index(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Ingest one tuple at virtual time `now`: replicate it across its
    /// assigned row (R) or column (S); every receiving cell stores it,
    /// expires the opposite fragment and probes it for matches.
    pub fn ingest(&mut self, tuple: &Tuple, now: Ts) -> Result<()> {
        self.now = self.now.max(now);
        self.stats.ingested.inc();
        if let Some(a) = &self.auditor {
            a.set_now(self.now);
            if a.oracle_enabled() {
                if let JoinPredicate::Equi { r_attr, s_attr } = &self.config.predicate {
                    let is_r = tuple.rel() == Rel::R;
                    let attr = if is_r { *r_attr } else { *s_attr };
                    if let Some(key) = tuple.get(attr) {
                        a.observe_input(is_r, tuple.ts(), key.to_string(), tuple.to_string());
                    }
                }
            }
        }
        self.seq += 1;
        let seq = self.seq;
        let targets: Vec<usize> = match tuple.rel() {
            Rel::R => {
                let row = self.rng.gen_range(0..self.rows);
                (0..self.cols).map(|c| self.cell_index(row, c)).collect()
            }
            Rel::S => {
                let col = self.rng.gen_range(0..self.cols);
                (0..self.rows).map(|r| self.cell_index(r, col)).collect()
            }
        };
        self.stats.copies.add(targets.len() as u64);
        if !self.cell_replicated.is_empty() {
            for &idx in &targets {
                self.cell_replicated[idx].inc();
            }
        }
        let tracer = self.tracer.clone();
        if tracer.sampled(seq) {
            // One branch per receiving cell; no queue tier in the
            // synchronous matrix, so the journey is route → store/probe.
            tracer.begin(seq, targets.len() as u32);
            tracer.span(seq, HopKind::Route, "matrix", now, now);
        }
        let cost = self.cost;
        let stats = Arc::clone(&self.stats);
        let auditor = self.auditor.clone();
        let cols = self.cols;
        for idx in targets {
            let capture = &mut self.capture;
            let mut cell_results = 0usize;
            self.cells[idx].process(tuple, &self.config.predicate, &cost, &mut |jr| {
                stats.results.inc();
                stats.latency_ms.record(now.saturating_sub(jr.ts));
                cell_results += 1;
                if let Some(a) = auditor.as_ref().filter(|a| a.oracle_enabled()) {
                    a.observe_output(&jr.r.to_string(), &jr.s.to_string());
                }
                if let Some(buf) = capture {
                    buf.push(jr);
                }
            })?;
            if tracer.sampled(seq) {
                let unit = format!("{}x{}", idx / cols, idx % cols);
                tracer.span(seq, HopKind::Store, &unit, now, now);
                tracer.span(seq, HopKind::Probe, &unit, now, now);
                if cell_results > 0 {
                    tracer.span(seq, HopKind::Emit, &unit, now, now);
                }
                tracer.end_branch(seq);
            }
        }
        Ok(())
    }

    /// Resize the matrix to `rows × cols`, migrating relation fragments
    /// into the new shape.
    ///
    /// The migration model is the textbook one: the whole matrix state is
    /// repartitioned — every surviving tuple lands in its newly assigned
    /// row/column replica set. The report charges a move for every tuple
    /// copy that must be installed into a cell that did not previously
    /// hold it; with random assignment the practical lower bound is
    /// "every live tuple moves at least once", which is what makes matrix
    /// scaling expensive next to the biclique's zero.
    pub fn resize(&mut self, rows: usize, cols: usize) -> Result<MigrationReport> {
        if rows == 0 || cols == 0 {
            return Err(Error::Scaling("matrix cannot shrink to zero".into()));
        }
        let (old_rows, old_cols) = (self.rows, self.cols);
        let mut report = MigrationReport {
            cells_added: (rows * cols).saturating_sub(self.rows * self.cols),
            cells_removed: (self.rows * self.cols).saturating_sub(rows * cols),
            ..MigrationReport::default()
        };

        // Collect every distinct live tuple (one copy per row/column
        // assignment, i.e. deduplicate the replicas: R tuples appear once
        // per column — take column 0 of each row; S once per row).
        let mut live: Vec<Tuple> = Vec::new();
        for row in 0..self.rows {
            let idx = self.cell_index(row, 0);
            self.cells[idx]
                .r_index
                .probe(&ProbePlan::FullScan, self.probe_everything_ts(), |t| live.push(t.clone()));
        }
        for col in 0..self.cols {
            let idx = self.cell_index(0, col);
            self.cells[idx]
                .s_index
                .probe(&ProbePlan::FullScan, self.probe_everything_ts(), |t| live.push(t.clone()));
        }

        // Rebuild the grid and reinstall the live tuples.
        self.rows = rows;
        self.cols = cols;
        self.cells = (0..rows * cols).map(|_| Cell::new(&self.config)).collect();
        self.audit_cells();
        for tuple in live {
            let key = key_of(&self.config.predicate, &tuple)?;
            let targets: Vec<usize> = match tuple.rel() {
                Rel::R => {
                    let row = self.rng.gen_range(0..self.rows);
                    (0..self.cols).map(|c| self.cell_index(row, c)).collect()
                }
                Rel::S => {
                    let col = self.rng.gen_range(0..self.cols);
                    (0..self.rows).map(|r| self.cell_index(r, col)).collect()
                }
            };
            for idx in targets {
                let cell = &mut self.cells[idx];
                cell.index_of(tuple.rel()).insert(key.clone(), tuple.clone());
                cell.stored += 1;
                report.tuples_moved += 1;
                report.bytes_moved += tuple.size_bytes() as u64;
            }
        }
        for cell in &mut self.cells {
            let b = cell.bytes();
            cell.meter.set_memory_bytes(b);
        }
        // Swap the scrape over to the new shape: the destroyed cells'
        // series go away; recreated cells restart from fresh counters
        // (their state was rebuilt, so frozen totals would mislead).
        if let Some(obs) = self.obs.clone() {
            for row in 0..old_rows {
                for col in 0..old_cols {
                    let label = format!("{row}x{col}");
                    obs.registry.unregister_labeled("cell", &label);
                    obs.registry.unregister_labeled("pod", &format!("cell{label}"));
                }
            }
            self.register_cells();
        }
        Ok(report)
    }

    /// A probe timestamp that keeps every live tuple in scope for the
    /// full-scan used by resize (mid-window "now").
    fn probe_everything_ts(&self) -> Ts {
        self.now
    }
}

/// Construct a standalone cell for the threaded pipeline.
pub(crate) fn cell_for(config: &MatrixConfig) -> Cell {
    Cell::new(config)
}

fn key_of(predicate: &JoinPredicate, tuple: &Tuple) -> Result<Value> {
    match predicate {
        JoinPredicate::Cross => Ok(Value::Null),
        _ => Ok(tuple.require(predicate.attr_of(tuple.rel()))?.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: Rel, ts: Ts, k: i64) -> Tuple {
        Tuple::new(rel, ts, vec![Value::Int(k)])
    }

    fn config(rows: usize, cols: usize) -> MatrixConfig {
        MatrixConfig {
            rows,
            cols,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(1_000),
            archive_period_ms: 100,
            seed: 5,
        }
    }

    #[test]
    fn each_pair_meets_in_exactly_one_cell() {
        let mut m = JoinMatrix::new(config(3, 3)).unwrap();
        m.capture_results();
        for i in 0..50i64 {
            let ts = i as Ts * 10;
            m.ingest(&t(Rel::R, ts, i), ts).unwrap();
            m.ingest(&t(Rel::S, ts + 1, i), ts + 1).unwrap();
        }
        let results = m.take_captured();
        assert_eq!(results.len(), 50, "exactly once, no protocol needed");
        assert_eq!(m.stats().results, 50);
    }

    #[test]
    fn results_match_brute_force_reference() {
        let mut m = JoinMatrix::new(config(2, 3)).unwrap();
        m.capture_results();
        let mut tuples = Vec::new();
        for i in 0..120i64 {
            let ts = i as Ts * 7;
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let tup = t(rel, ts, i % 9);
            m.ingest(&tup, ts).unwrap();
            tuples.push(tup);
        }
        let mut got: Vec<_> = m.take_captured().iter().map(|r| r.identity()).collect();
        got.sort();
        let mut expect = Vec::new();
        for a in tuples.iter().filter(|x| x.rel() == Rel::R) {
            for b in tuples.iter().filter(|x| x.rel() == Rel::S) {
                if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= 1_000 {
                    expect.push(JoinResult::of(a.clone(), b.clone()).identity());
                }
            }
        }
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn audited_run_with_oracle_is_clean() {
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        let auditor = Auditor::new();
        m.set_auditor(auditor.clone());
        auditor.enable_oracle(Some(1_000));
        for i in 0..60i64 {
            let ts = i as Ts * 9;
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            m.ingest(&t(rel, ts, i % 5), ts).unwrap();
        }
        // Expiry happened along the way (540ms of stream, 1s window kept
        // everything live; stretch it to force Theorem 1 discards too).
        for i in 0..10i64 {
            let ts = 5_000 + i as Ts;
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            m.ingest(&t(rel, ts, i % 5), ts).unwrap();
        }
        auditor.assert_clean();
    }

    #[test]
    fn replication_factor_shows_in_memory_and_copies() {
        let mut m = JoinMatrix::new(config(4, 4)).unwrap();
        for i in 0..100i64 {
            m.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
        }
        // R replicated across 4 columns → 4 copies per tuple.
        assert_eq!(m.stats().copies_per_tuple(), 4.0);
        let stored: u64 = m.stored_per_cell().iter().sum();
        assert_eq!(stored, 400);
    }

    #[test]
    fn window_expiry_bounds_memory() {
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        for i in 0..200i64 {
            let ts = i as Ts * 100;
            m.ingest(&t(Rel::R, ts, i), ts).unwrap();
            m.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        // Window is 1s = 10 ticks of 100ms; live state per relation is
        // bounded ≈ window/interval + archive slack, far below 200.
        let live_r: usize = (0..2).map(|row| m.cells[m.cell_index(row, 0)].r_index.len()).sum();
        assert!(live_r < 60, "expiry keeps fragments bounded, live {live_r}");
    }

    #[test]
    fn resize_migrates_live_state_and_keeps_joining() {
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        m.capture_results();
        for i in 0..40i64 {
            m.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
        }
        let report = m.resize(3, 3).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert!(report.tuples_moved >= 40, "every live tuple reinstalled");
        assert!(report.bytes_moved > 0);
        assert_eq!(report.cells_added, 5);
        // Joins still complete after the resize.
        for i in 0..40i64 {
            let ts = 50 + i as Ts;
            m.ingest(&t(Rel::S, ts, i), ts).unwrap();
        }
        assert_eq!(m.take_captured().len(), 40);
    }

    #[test]
    fn band_join_on_matrix() {
        let mut cfg = config(2, 2);
        cfg.predicate = JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 1.0 };
        let mut m = JoinMatrix::new(cfg).unwrap();
        m.capture_results();
        m.ingest(&t(Rel::R, 0, 10), 0).unwrap();
        m.ingest(&t(Rel::S, 1, 11), 1).unwrap();
        m.ingest(&t(Rel::S, 2, 12), 2).unwrap();
        let results = m.take_captured();
        assert_eq!(results.len(), 1, "only |10-11|<=1 matches");
    }

    #[test]
    fn meters_and_memory_accounting() {
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        m.ingest(&t(Rel::R, 0, 1), 0).unwrap();
        assert!(m.memory_bytes() > 0);
        assert_eq!(m.pod_meters().len(), 4);
        let busy: u64 = m.pod_meters().iter().map(|(_, meter)| meter.cpu_busy_us()).sum();
        assert!(busy > 0);
    }

    #[test]
    fn attached_registry_tracks_per_cell_replication_across_resize() {
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        let obs = Observability::new();
        m.attach_obs(&obs);
        for i in 0..10i64 {
            m.ingest(&t(Rel::R, i as Ts, i), i as Ts).unwrap();
        }
        let snap = obs.registry.scrape(10);
        // Each R tuple is replicated across its row's 2 cells → the
        // per-cell counters sum to the engine-wide copy count.
        let per_cell: u64 = ["0x0", "0x1", "1x0", "1x1"]
            .iter()
            .map(|c| {
                snap.counter(
                    bistream_types::metric_names::MATRIX_CELL_REPLICATED_TOTAL,
                    &[("cell", c)],
                )
                .unwrap()
            })
            .sum();
        assert_eq!(per_cell, 20);
        assert_eq!(
            snap.counter(
                bistream_types::metric_names::TUPLES_INGESTED_TOTAL,
                &[("engine", "matrix")]
            ),
            Some(10)
        );
        assert!(snap
            .get(bistream_types::metric_names::POD_CPU_BUSY_US_TOTAL, &[("pod", "cell0x0")])
            .is_some());

        m.resize(1, 3).unwrap();
        let snap = obs.registry.scrape(11);
        assert!(
            snap.get(
                bistream_types::metric_names::MATRIX_CELL_REPLICATED_TOTAL,
                &[("cell", "1x1")]
            )
            .is_none(),
            "destroyed cell's series dropped"
        );
        assert_eq!(
            snap.counter(
                bistream_types::metric_names::MATRIX_CELL_REPLICATED_TOTAL,
                &[("cell", "0x2")]
            ),
            Some(0),
            "new shape registered from zero"
        );
        m.ingest(&t(Rel::S, 20, 1), 20).unwrap();
        let snap = obs.registry.scrape(21);
        let post: u64 = ["0x0", "0x1", "0x2"]
            .iter()
            .map(|c| {
                snap.counter(
                    bistream_types::metric_names::MATRIX_CELL_REPLICATED_TOTAL,
                    &[("cell", c)],
                )
                .unwrap()
            })
            .sum();
        assert_eq!(post, 1, "S replicates across the single row's one column pick");
    }

    #[test]
    fn tracing_covers_every_cell_branch() {
        let mut m = JoinMatrix::new(config(2, 3)).unwrap();
        let obs = Observability::with_tracing(1);
        m.attach_obs(&obs);
        m.ingest(&t(Rel::R, 0, 7), 0).unwrap();
        m.ingest(&t(Rel::S, 1, 7), 1).unwrap();
        obs.tracer.flush_pending();
        let traces = obs.tracer.drain();
        assert_eq!(traces.len(), 2, "both ingests sampled at 1-in-1");
        for tr in &traces {
            assert!(tr.complete, "every cell branch closed synchronously");
            assert!(tr.has_hop(HopKind::Route));
            // R replicates across 3 columns, S across 2 rows.
            let stores = tr.spans.iter().filter(|s| s.kind == HopKind::Store).count();
            assert!(stores == 2 || stores == 3, "one store per receiving cell");
        }
        let emitted = traces.iter().filter(|tr| tr.has_hop(HopKind::Emit)).count();
        assert_eq!(emitted, 1, "only the probing S tuple emits the match");
        let snap = obs.registry.scrape(2);
        assert_eq!(snap.counter(bistream_types::metric_names::TRACE_COMPLETED_TOTAL, &[]), Some(2));
        assert!(snap
            .get(bistream_types::metric_names::TRACE_HOP_SERVICE_MS, &[("hop", "store")])
            .is_some());
    }

    #[test]
    fn zero_shape_rejected() {
        assert!(JoinMatrix::new(config(0, 2)).is_err());
        let mut m = JoinMatrix::new(config(2, 2)).unwrap();
        assert!(m.resize(0, 2).is_err());
    }
}
