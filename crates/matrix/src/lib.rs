//! The **join-matrix** baseline: the symmetric fragment-and-replicate
//! organisation (Stamos & Young 1993, revisited by Elseidy et al. 2014)
//! that the join-biclique model is evaluated against.
//!
//! A cluster of `rows × cols` units forms a matrix. An incoming `r ∈ R`
//! is assigned a random row and **replicated to every cell of that row**;
//! an `s ∈ S` is assigned a random column and replicated down it. Each
//! `(r, s)` pair meets in exactly one cell — the intersection — where the
//! later arrival probes the earlier one, so results are exactly-once
//! *without* any ordering protocol (an intrinsic advantage the evaluation
//! acknowledges). The intrinsic *disadvantages* are what the biclique
//! fixes and what the benchmarks measure:
//!
//! - **Memory**: every tuple is stored `cols` (for R) or `rows` (for S)
//!   times — the replication factor is `√p` on a square matrix, versus 1
//!   for the biclique.
//! - **Rigid scaling**: resizing the matrix must install full relation
//!   fragments into the new cells — [`grid::JoinMatrix::resize`] performs
//!   that migration and reports the bytes moved, versus zero for the
//!   biclique.
//!
//! Its communication cost, however, is *lower* than random-routed
//! biclique: `√p` copies per tuple versus `1 + p/2` (E11 quantifies the
//! trade).
//!
//! [`grid`] hosts the synchronous engine (used by the simulator-style
//! experiments); [`exec`] the threaded live pipeline mirroring
//! `bistream-core::exec` for wall-clock comparisons.

#![warn(missing_docs)]

pub mod exec;
pub mod grid;

pub use grid::{JoinMatrix, MatrixConfig, MigrationReport};
