//! The threaded live pipeline for the join-matrix baseline — the
//! counterpart of `bistream-core::exec`, so throughput/latency
//! comparisons run both models on identical substrates (same broker, same
//! thread-per-unit shape, same tuple codec).
//!
//! Topology: an **ingest** exchange feeds a competing-consumer group of
//! assigner threads (the matrix's "routers": they pick the random
//! row/column and replicate); a **cells** direct exchange fans copies to
//! one queue per cell; each cell thread runs [`crate::grid`]'s cell logic.
//! No ordering protocol is needed — each pair meets in exactly one cell,
//! whose queue serialises the two arrivals.

use crate::grid::MatrixConfig;
use bistream_broker::{Broker, ExchangeKind, Message, RecvError};
use bistream_cluster::CostModel;
use bistream_core::stats::{EngineSnapshot, EngineStats};
use bistream_types::batch::{BatchMessage, TupleBatch};
use bistream_types::error::{Error, Result};
use bistream_types::hash::FxHashMap;
use bistream_types::punct::{Purpose, SeqNo};
use bistream_types::rel::Rel;
use bistream_types::time::{Clock, Ts, WallClock};
use bistream_types::tuple::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const INGEST_EXCHANGE: &str = "matrix.ingest";
const INGEST_QUEUE: &str = "matrix.ingest.assigners";
const CELLS_EXCHANGE: &str = "matrix.cells";

/// Configuration of the live matrix pipeline.
#[derive(Debug, Clone)]
pub struct MatrixPipelineConfig {
    /// The matrix configuration.
    pub matrix: MatrixConfig,
    /// Assigner threads competing on the ingest queue.
    pub assigners: usize,
    /// Ingest queue bound.
    pub ingest_capacity: usize,
    /// Per-cell queue bound.
    pub cell_capacity: usize,
    /// Cost model charged to cell meters.
    pub cost: CostModel,
    /// Tuples per [`TupleBatch`] frame on every assigner→cell channel
    /// (default 1: per-tuple framing, matching `bistream-core::exec`).
    pub batch_size: usize,
}

impl MatrixPipelineConfig {
    /// Defaults: 1 assigner, 8K/4K bounds, per-tuple framing.
    pub fn new(matrix: MatrixConfig) -> MatrixPipelineConfig {
        MatrixPipelineConfig {
            matrix,
            assigners: 1,
            ingest_capacity: 8_192,
            cell_capacity: 4_096,
            cost: CostModel::default(),
            batch_size: 1,
        }
    }
}

/// A running live matrix pipeline.
pub struct MatrixPipeline {
    broker: Broker,
    stats: Arc<EngineStats>,
    clock: Arc<WallClock>,
    started: Instant,
    assigner_handles: Vec<JoinHandle<Result<()>>>,
    cell_handles: Vec<JoinHandle<Result<u64>>>,
    cell_queues: Vec<String>,
}

impl MatrixPipeline {
    /// Declare the topology and launch all threads.
    pub fn launch(config: MatrixPipelineConfig) -> Result<MatrixPipeline> {
        config.matrix.validate()?;
        let (rows, cols) = (config.matrix.rows, config.matrix.cols);
        let broker = Broker::new();
        broker.declare_exchange(INGEST_EXCHANGE, ExchangeKind::Topic)?;
        broker.declare_exchange(CELLS_EXCHANGE, ExchangeKind::Direct)?;
        broker.declare_queue(INGEST_QUEUE, config.ingest_capacity)?;
        broker.bind(INGEST_EXCHANGE, INGEST_QUEUE, "#")?;

        let stats = EngineStats::shared();
        let clock = Arc::new(WallClock::new());

        // Cell queues and threads.
        let mut cell_queues = Vec::new();
        let mut cell_handles = Vec::new();
        for idx in 0..rows * cols {
            let qname = format!("cell.{idx}");
            broker.declare_queue(&qname, config.cell_capacity)?;
            broker.bind(CELLS_EXCHANGE, &qname, &idx.to_string())?;
            cell_queues.push(qname.clone());
            let consumer = broker.subscribe(&qname)?;
            let mut cell = crate::grid::cell_for(&config.matrix);
            let predicate = config.matrix.predicate.clone();
            let cost = config.cost;
            let stats = Arc::clone(&stats);
            let clock = Arc::clone(&clock);
            cell_handles.push(std::thread::spawn(move || -> Result<u64> {
                let mut stored = 0u64;
                loop {
                    match consumer.recv_timeout(Duration::from_millis(50)) {
                        Ok(m) => {
                            let mut payload = m.payload;
                            // Cells decode each frame once and replay its
                            // entries; purpose/seq only key the framing.
                            match BatchMessage::decode(&mut payload)? {
                                BatchMessage::Batch(b) => {
                                    for e in b.into_entries() {
                                        cell.process(&e.tuple, &predicate, &cost, &mut |jr| {
                                            stats.results.inc();
                                            stats
                                                .latency_ms
                                                .record(clock.now().saturating_sub(jr.ts));
                                        })?;
                                        stored += 1;
                                    }
                                }
                                BatchMessage::Punct(_) => {}
                            }
                        }
                        Err(RecvError::Timeout) => continue,
                        Err(RecvError::Disconnected) => break,
                    }
                }
                Ok(stored)
            }));
        }

        // Assigner threads.
        let batch_size = config.batch_size.max(1);
        let mut assigner_handles = Vec::new();
        for a in 0..config.assigners.max(1) {
            let consumer = broker.subscribe(INGEST_QUEUE)?;
            let broker = broker.clone();
            let stats = Arc::clone(&stats);
            let mut rng = StdRng::seed_from_u64(config.matrix.seed ^ ((a as u64) << 24));
            assigner_handles.push(std::thread::spawn(move || -> Result<()> {
                // Framing convention: R copies travel as `Store`-purpose
                // entries, S copies as `Join` — cells ignore the purpose,
                // it only keeps each accumulating batch single-relation.
                let rid = a as u32;
                let mut seq: SeqNo = 0;
                let mut pending: FxHashMap<(usize, Purpose), TupleBatch> = FxHashMap::default();
                let flush = |pending: &mut FxHashMap<(usize, Purpose), TupleBatch>| -> Result<()> {
                    let mut keys: Vec<(usize, Purpose)> = pending.keys().copied().collect();
                    keys.sort_by_key(|&(idx, p)| (idx, p.as_byte()));
                    for key in keys {
                        let Some(batch) = pending.remove(&key) else { continue };
                        if batch.is_empty() {
                            continue;
                        }
                        broker.publish(
                            CELLS_EXCHANGE,
                            Message::new(key.0.to_string(), BatchMessage::Batch(batch).encode()?),
                        )?;
                    }
                    Ok(())
                };
                loop {
                    match consumer.recv_timeout(Duration::from_millis(50)) {
                        Ok(m) => {
                            let mut payload = m.payload.clone();
                            let tuple = Tuple::decode(&mut payload)?;
                            stats.ingested.inc();
                            seq += 1;
                            let (purpose, targets): (Purpose, Vec<usize>) = match tuple.rel() {
                                Rel::R => {
                                    let row = rng.gen_range(0..rows);
                                    (Purpose::Store, (0..cols).map(|c| row * cols + c).collect())
                                }
                                Rel::S => {
                                    let col = rng.gen_range(0..cols);
                                    (Purpose::Join, (0..rows).map(|r| r * cols + col).collect())
                                }
                            };
                            stats.copies.add(targets.len() as u64);
                            for idx in targets {
                                let batch = pending.entry((idx, purpose)).or_insert_with(|| {
                                    TupleBatch::with_capacity(rid, purpose, batch_size)
                                });
                                batch.push(seq, tuple.clone());
                                if batch.len() >= batch_size {
                                    let Some(full) = pending.remove(&(idx, purpose)) else {
                                        continue;
                                    };
                                    broker.publish(
                                        CELLS_EXCHANGE,
                                        Message::new(
                                            idx.to_string(),
                                            BatchMessage::Batch(full).encode()?,
                                        ),
                                    )?;
                                }
                            }
                        }
                        Err(RecvError::Timeout) => flush(&mut pending)?,
                        Err(RecvError::Disconnected) => {
                            flush(&mut pending)?;
                            return Ok(());
                        }
                    }
                }
            }));
        }

        Ok(MatrixPipeline {
            broker,
            stats,
            clock,
            started: Instant::now(),
            assigner_handles,
            cell_handles,
            cell_queues,
        })
    }

    /// Wall-clock "now" for stamping input tuples.
    pub fn now(&self) -> Ts {
        self.clock.now()
    }

    /// Feed one tuple (blocking on backpressure).
    pub fn ingest(&self, tuple: &Tuple) -> Result<()> {
        let key = format!("{}.in", tuple.rel());
        self.broker.publish(INGEST_EXCHANGE, Message::new(key, tuple.encode()))?;
        Ok(())
    }

    /// Live counters.
    pub fn stats(&self) -> EngineSnapshot {
        self.stats.snapshot()
    }

    /// Stop feeding, drain, join threads and report.
    pub fn finish(self) -> Result<MatrixReport> {
        self.broker.delete_queue(INGEST_QUEUE)?;
        for h in self.assigner_handles {
            h.join().map_err(|_| Error::Closed)??;
        }
        for q in &self.cell_queues {
            self.broker.delete_queue(q)?;
        }
        let mut stored_per_cell = Vec::new();
        for h in self.cell_handles {
            stored_per_cell.push(h.join().map_err(|_| Error::Closed)??);
        }
        Ok(MatrixReport {
            snapshot: self.stats.snapshot(),
            stored_per_cell,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
        })
    }
}

/// Final report of a matrix pipeline run.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Engine-wide counters.
    pub snapshot: EngineSnapshot,
    /// Tuple copies processed per cell.
    pub stored_per_cell: Vec<u64>,
    /// Wall-clock runtime, ms.
    pub elapsed_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::predicate::JoinPredicate;
    use bistream_types::value::Value;
    use bistream_types::window::WindowSpec;

    fn config() -> MatrixPipelineConfig {
        let mut c = MatrixPipelineConfig::new(MatrixConfig::square(
            2,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(60_000),
        ));
        c.assigners = 2;
        c
    }

    #[test]
    fn live_matrix_joins_exactly_once() {
        let p = MatrixPipeline::launch(config()).unwrap();
        for i in 0..300i64 {
            let now = p.now();
            p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)])).unwrap();
            p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)])).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 600);
        assert_eq!(report.snapshot.results, 300);
        // 2×2 square: 2 copies per tuple.
        assert_eq!(report.snapshot.copies_per_tuple(), 2.0);
        // All copies processed somewhere.
        assert_eq!(report.stored_per_cell.iter().sum::<u64>(), 1_200);
    }

    #[test]
    fn batched_matrix_joins_exactly_once() {
        let mut c = config();
        c.batch_size = 16;
        let p = MatrixPipeline::launch(c).unwrap();
        for i in 0..300i64 {
            let now = p.now();
            p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i)])).unwrap();
            p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i)])).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 300, "batching must not change results");
        assert_eq!(report.stored_per_cell.iter().sum::<u64>(), 1_200);
    }

    #[test]
    fn finish_without_feeding() {
        let p = MatrixPipeline::launch(config()).unwrap();
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 0);
    }
}
