//! Table rendering and result persistence for the experiment harness.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned-column table that prints like the rows the paper's
/// tables report, and serialises to JSON for post-processing.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of preformatted values.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, values: Vec<String>) {
        assert_eq!(values.len(), self.columns.len(), "row arity");
        self.rows.push(values);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                widths[i] = widths[i].max(v.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().enumerate().map(|(i, v)| format!("{:>w$}", v, w = widths[i])).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Print to stdout and persist as JSON under `results/<name>.json`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = self.save_json(name) {
            eprintln!("(warn) could not save results/{name}.json: {e}");
        }
    }

    fn save_json(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(self).expect("table is serialisable"))
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.5");
    }
}
