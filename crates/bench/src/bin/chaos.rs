//! The chaos exploration runner: sweep seeded fault plans per scenario,
//! ddmin-minimise every failure and write replayable artifacts.
//!
//! ```text
//! cargo run --release -p bistream-bench --bin chaos -- --seeds 32
//! cargo run --release -p bistream-bench --bin chaos -- --seeds 64 crash mixed
//! cargo run --release -p bistream-bench --bin chaos -- --bug skip_rehydrate crash
//! ```
//!
//! Every failing plan lands under `results/chaos/<scenario>-<seed>.json`
//! as a [`ChaosArtifact`](bistream_types::fault::ChaosArtifact); re-run
//! one with a plain `#[test]` via `bistream_core::chaos::replay`. Exit
//! status is non-zero when any trial failed (unless `--bug` seeded the
//! failure deliberately and it *was* found — then failure to find is the
//! error).

use bistream_core::chaos::{explore, SCENARIOS};
use bistream_types::fault::TrialSpec;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: u64 = 32;
    let mut spec = TrialSpec::default();
    let mut scenarios: Vec<String> = Vec::new();
    let mut out_dir = "results/chaos".to_owned();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = iter.next().and_then(|v| v.parse().ok()).expect("--seeds needs a u64");
            }
            "--pairs" => {
                spec.pairs = iter.next().and_then(|v| v.parse().ok()).expect("--pairs needs a u32");
            }
            "--bug" => {
                spec.bug = iter.next().expect("--bug needs a name").clone();
            }
            "--out" => {
                out_dir = iter.next().expect("--out needs a directory").clone();
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if SCENARIOS.contains(&other) => scenarios.push(other.to_owned()),
            other => {
                eprintln!("unknown argument `{other}` (scenarios: {})", SCENARIOS.join(", "));
                std::process::exit(2);
            }
        }
    }
    if scenarios.is_empty() {
        scenarios = SCENARIOS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "bistream chaos explorer — {seeds} seeds × {{{}}}, bug: {}\n",
        scenarios.join(", "),
        spec.bug
    );
    let mut total_failures = 0usize;
    for scenario in &scenarios {
        let exploration = explore(scenario, seeds, &spec, false);
        println!(
            "{scenario:<10} {} seeds run, {} failure(s)",
            exploration.seeds_run,
            exploration.failures.len()
        );
        for artifact in &exploration.failures {
            total_failures += 1;
            let dir = Path::new(&out_dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("(warn) could not create {}: {e}", dir.display());
                continue;
            }
            let path = dir.join(format!("{scenario}-{}.json", artifact.seed));
            match std::fs::write(&path, artifact.to_json()) {
                Ok(()) => println!(
                    "  seed {:>3}: {} event(s) after ddmin, first violation: {} -> {}",
                    artifact.seed,
                    artifact.plan.events.len(),
                    artifact.violations.first().map(String::as_str).unwrap_or("-"),
                    path.display()
                ),
                Err(e) => eprintln!("(warn) could not write {}: {e}", path.display()),
            }
        }
    }

    if spec.bug != "none" {
        // Seeded-bug mode: NOT finding the bug is the failure.
        if total_failures == 0 {
            eprintln!("\nseeded bug `{}` was NOT found within the seed budget", spec.bug);
            std::process::exit(1);
        }
        println!("\nseeded bug `{}` found, minimised and persisted", spec.bug);
    } else if total_failures > 0 {
        eprintln!("\n{total_failures} chaos failure(s) — replay the artifacts above");
        std::process::exit(1);
    } else {
        println!("\nall clear: every plan survived with the auditor armed");
    }
}

fn usage() {
    eprintln!(
        "usage: chaos [--seeds N] [--pairs N] [--bug NAME] [--out DIR] [scenario…]\n  scenarios: {} (default: all)",
        SCENARIOS.join(", ")
    );
}
