//! The experiment harness: regenerates every table and figure of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p bistream-bench --bin experiments -- all
//! cargo run --release -p bistream-bench --bin experiments -- e1 e7
//! cargo run --release -p bistream-bench --bin experiments -- --quick all
//! ```
//!
//! Results print as aligned tables and persist as JSON under `results/`.

use bistream_bench::experiments::{self, ExpCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpCtx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" | "-q" => ctx.quick = true,
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                ctx.seed = v.parse().expect("--seed needs a u64");
            }
            "--metrics-out" => {
                let v = iter.next().expect("--metrics-out needs a file path");
                ctx.metrics_out = Some(v.into());
            }
            "--trace-out" => {
                let v = iter.next().expect("--trace-out needs a file path");
                ctx.trace_out = Some(v.into());
            }
            "--telemetry-out" => {
                let v = iter.next().expect("--telemetry-out needs a file path");
                ctx.telemetry_out = Some(v.into());
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "bistream experiments — seed {:#x}{}\n",
        ctx.seed,
        if ctx.quick { ", quick mode" } else { "" }
    );
    for id in &ids {
        let started = bistream_types::time::Stopwatch::start();
        eprintln!(">> running {id}…");
        if !experiments::run(id, &ctx) {
            eprintln!("unknown experiment id `{id}` (known: {:?})", experiments::ALL);
            std::process::exit(2);
        }
        eprintln!(">> {id} done in {:.1}s\n", started.elapsed_secs_f64());
    }
}

fn usage() {
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--metrics-out FILE] [--trace-out FILE] [--telemetry-out FILE] <id>… | all\n  ids: {}",
        experiments::ALL.join(", ")
    );
}
