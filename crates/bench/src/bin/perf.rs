//! The pipeline throughput/latency harness behind `cargo xtask bench`.
//!
//! Drives the live threaded pipeline flat-out over the baseline matrix —
//! backend {broker, sharded} × micro-batch size {1, 64} × routing
//! {random, contrand, adaptive} on a 4×4 layout — and reports saturation
//! throughput plus result-latency percentiles.
//! When a baseline file exists the run is compared against it and any
//! case regressing past the threshold fails the process (the CI
//! `perf-smoke` gate).
//!
//! ```text
//! cargo xtask bench                      # measure + compare vs BENCH_pipeline.json
//! cargo xtask bench --quick              # smoke sizing (CI)
//! cargo xtask bench --update             # rewrite the baseline from this run
//! cargo xtask bench --telemetry-out m.prom   # dump a /metrics exposition snapshot
//! ```

use bistream_bench::baseline::{compare, BenchCase, BenchDoc, BASELINE_VERSION, DEFAULT_THRESHOLD};
use bistream_bench::experiments::common::engine_config;
use bistream_bench::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::exec::{Backend, Pipeline, PipelineConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use std::path::PathBuf;

/// One harness case: feed `pairs` matching pairs flat-out and measure.
/// `telemetry_out` (last case only) receives a pre-drain exposition dump.
fn run_case(
    seed: u64,
    backend: Backend,
    backend_name: &str,
    batch: u64,
    routing: RoutingStrategy,
    routing_name: &str,
    pairs: u64,
    telemetry_out: Option<&PathBuf>,
) -> BenchCase {
    let mut cfg = engine_config(
        routing,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(30_000),
        4,
        4,
        seed,
    );
    cfg.punctuation_interval_ms = 10;
    cfg.batch_size = batch as usize;
    let mut pipe_cfg = PipelineConfig::new(cfg);
    pipe_cfg.backend = backend;
    let pipe = Pipeline::launch(pipe_cfg).expect("launch");
    for i in 0..pairs {
        let now = pipe.now();
        pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 997)])).unwrap();
        pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 997)])).unwrap();
    }
    if let Some(path) = telemetry_out {
        match std::fs::write(path, pipe.telemetry_text()) {
            Ok(()) => eprintln!(">> telemetry written to {}", path.display()),
            Err(e) => eprintln!(">> could not write {}: {e}", path.display()),
        }
    }
    let report = pipe.finish().expect("finish");
    let l = report.snapshot.latency;
    BenchCase {
        name: format!("{backend_name}_batch{batch}_{routing_name}"),
        backend: backend_name.to_owned(),
        batch,
        routing: routing_name.to_owned(),
        pairs,
        throughput_tps: report.snapshot.ingested as f64
            / (report.elapsed_ms.max(1) as f64 / 1_000.0),
        p50_ms: l.p50,
        p95_ms: l.p95,
        p99_ms: l.p99,
        results: report.snapshot.results,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut update = false;
    let mut seed: u64 = 0xB15_7EA4;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut baseline_path = PathBuf::from("BENCH_pipeline.json");
    let mut out: Option<PathBuf> = None;
    let mut telemetry_out: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" | "-q" => quick = true,
            "--update" => update = true,
            "--seed" => {
                seed = iter.next().and_then(|v| v.parse().ok()).expect("--seed needs a u64");
            }
            "--threshold" => {
                threshold = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a float in (0, 1]");
            }
            "--baseline" => {
                baseline_path = iter.next().expect("--baseline needs a file path").into();
            }
            "--out" => {
                out = Some(iter.next().expect("--out needs a file path").into());
            }
            "--telemetry-out" => {
                telemetry_out = Some(iter.next().expect("--telemetry-out needs a file path").into());
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
                std::process::exit(2);
            }
        }
    }

    let pairs: u64 = if quick { 5_000 } else { 20_000 };
    let backends: &[(Backend, &str)] =
        &[(Backend::Broker, "broker"), (Backend::Sharded, "sharded")];
    let shapes: &[(u64, RoutingStrategy, &str)] = &[
        (1, RoutingStrategy::Random, "random"),
        (64, RoutingStrategy::Random, "random"),
        (1, RoutingStrategy::ContRand { subgroups: 2 }, "contrand"),
        (64, RoutingStrategy::ContRand { subgroups: 2 }, "contrand"),
        // Adaptive rides the contrand fast path until its tuner promotes
        // hot keys; the case exists so the perf gate starts tracking it
        // once the baseline is regenerated (`--update`). Until then the
        // extra case is measured but not compared (compare() only flags
        // baseline cases that regressed or went missing).
        (64, RoutingStrategy::Adaptive { subgroups: 2 }, "adaptive"),
    ];
    let matrix: Vec<(Backend, &str, u64, RoutingStrategy, &str)> = backends
        .iter()
        .flat_map(|&(backend, bname)| {
            shapes
                .iter()
                .map(move |&(batch, routing, rname)| (backend, bname, batch, routing, rname))
        })
        .collect();
    println!(
        "bistream pipeline bench — {pairs} pairs/case, seed {seed:#x}{}\n",
        if quick { ", quick mode" } else { "" }
    );
    let mut table = Table::new(
        format!("pipeline throughput baseline ({pairs} pairs flat-out, 4x4 layout)"),
        &["case", "thr_t/s", "p50_ms", "p95_ms", "p99_ms", "results"],
    );
    let mut cases = Vec::new();
    for (i, (backend, bname, batch, routing, rname)) in matrix.iter().enumerate() {
        let telemetry = if i + 1 == matrix.len() { telemetry_out.as_ref() } else { None };
        let case = run_case(seed, *backend, bname, *batch, *routing, rname, pairs, telemetry);
        table.row(vec![
            case.name.clone(),
            f(case.throughput_tps, 0),
            case.p50_ms.to_string(),
            case.p95_ms.to_string(),
            case.p99_ms.to_string(),
            case.results.to_string(),
        ]);
        cases.push(case);
    }
    table.emit("bench_pipeline");
    let doc = BenchDoc { version: BASELINE_VERSION, suite: "pipeline".into(), cases };

    if let Some(path) = &out {
        match std::fs::write(path, doc.to_json()) {
            Ok(()) => println!("results written to {}", path.display()),
            Err(e) => eprintln!("(warn) could not write {}: {e}", path.display()),
        }
    }
    if update {
        std::fs::write(&baseline_path, doc.to_json()).expect("write baseline");
        println!("baseline updated: {}", baseline_path.display());
        return;
    }

    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let baseline = match BenchDoc::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{}: schema error: {e}", baseline_path.display());
                    std::process::exit(2);
                }
            };
            if baseline.cases.iter().any(|b| doc.cases.iter().any(|c| {
                c.name == b.name && c.pairs != b.pairs
            })) {
                println!(
                    "note: workload size differs from the baseline (quick vs full run); \
                     throughput comparison is approximate"
                );
            }
            let regressions = compare(&baseline, &doc, threshold);
            if regressions.is_empty() {
                println!(
                    "no regression vs {} (threshold {:.0}%)",
                    baseline_path.display(),
                    threshold * 100.0
                );
            } else {
                eprintln!("{} regression(s) vs {}:", regressions.len(), baseline_path.display());
                for r in &regressions {
                    eprintln!("  {r}");
                }
                std::process::exit(1);
            }
        }
        Err(_) => {
            println!(
                "no baseline at {} — run with --update to create one",
                baseline_path.display()
            );
        }
    }
}

fn usage() {
    eprintln!(
        "usage: perf [--quick] [--seed N] [--threshold F] [--baseline FILE] [--out FILE] \
         [--telemetry-out FILE] [--update]"
    );
}
