//! Byte-stable codec and regression comparator for the pipeline
//! throughput baseline (`BENCH_pipeline.json`).
//!
//! The committed baseline pins the live pipeline's saturation throughput
//! and result-latency percentiles per `(backend, batch, routing)` case;
//! `cargo xtask bench` re-measures and fails when a case regresses past
//! the threshold. The emitter writes fields in a fixed order with fixed
//! float formatting so that re-encoding a parsed document reproduces it
//! byte for byte — diffs on the committed file are always real changes,
//! never formatting noise (same discipline as the chaos artifacts in
//! [`bistream_types::fault`]).

use std::fmt::Write as _;

/// Baseline format version; bumped on any incompatible schema change.
/// Version 2 added the execution-backend matrix axis (`backend` field,
/// backend-prefixed case names).
pub const BASELINE_VERSION: u32 = 2;

/// Default relative regression threshold (30 %).
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// One measured harness case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Case id, `<backend>_batch<k>_<routing>` (the comparison key).
    pub name: String,
    /// Execution backend label (`broker` / `sharded`).
    pub backend: String,
    /// Router→joiner micro-batch size.
    pub batch: u64,
    /// Routing strategy label (`random` / `contrand`).
    pub routing: String,
    /// Matching pairs fed flat-out.
    pub pairs: u64,
    /// Ingest throughput, tuples/s (one decimal in the encoding).
    pub throughput_tps: f64,
    /// Median result latency, ms.
    pub p50_ms: u64,
    /// 95th-percentile result latency, ms.
    pub p95_ms: u64,
    /// 99th-percentile result latency, ms.
    pub p99_ms: u64,
    /// Join results emitted (a correctness cross-check, not a perf axis).
    pub results: u64,
}

/// The whole baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Schema version ([`BASELINE_VERSION`]).
    pub version: u32,
    /// Suite id (`pipeline`).
    pub suite: String,
    /// Cases in emission order.
    pub cases: Vec<BenchCase>,
}

impl BenchDoc {
    /// Encode with fixed field order and fixed float formatting. The
    /// output ends with a newline so the committed file is POSIX-clean.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {},", self.version);
        let _ = writeln!(s, "  \"suite\": \"{}\",", self.suite);
        s.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"name\": \"{}\",", c.name);
            let _ = writeln!(s, "      \"backend\": \"{}\",", c.backend);
            let _ = writeln!(s, "      \"batch\": {},", c.batch);
            let _ = writeln!(s, "      \"routing\": \"{}\",", c.routing);
            let _ = writeln!(s, "      \"pairs\": {},", c.pairs);
            let _ = writeln!(s, "      \"throughput_tps\": {:.1},", c.throughput_tps);
            let _ = writeln!(s, "      \"p50_ms\": {},", c.p50_ms);
            let _ = writeln!(s, "      \"p95_ms\": {},", c.p95_ms);
            let _ = writeln!(s, "      \"p99_ms\": {},", c.p99_ms);
            let _ = writeln!(s, "      \"results\": {}", c.results);
            s.push_str(if i + 1 == self.cases.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse and schema-check a baseline document. Every field is
    /// required; unknown versions are rejected so a stale binary never
    /// silently "passes" against a future schema.
    pub fn from_json(text: &str) -> Result<BenchDoc, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = v.as_object().ok_or("top level must be an object")?;
        let version =
            obj.get("version").and_then(|v| v.as_u64()).ok_or("missing `version`")? as u32;
        if version != BASELINE_VERSION {
            return Err(format!("unsupported baseline version {version} (want {BASELINE_VERSION})"));
        }
        let suite =
            obj.get("suite").and_then(|v| v.as_str()).ok_or("missing `suite`")?.to_owned();
        let cases = obj.get("cases").and_then(|v| v.as_array()).ok_or("missing `cases`")?;
        let mut out = Vec::with_capacity(cases.len());
        for (i, c) in cases.iter().enumerate() {
            let c = c.as_object().ok_or_else(|| format!("case {i} must be an object"))?;
            let str_field = |k: &str| -> Result<String, String> {
                c.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_owned)
                    .ok_or_else(|| format!("case {i}: missing string `{k}`"))
            };
            let u64_field = |k: &str| -> Result<u64, String> {
                c.get(k).and_then(|v| v.as_u64()).ok_or_else(|| format!("case {i}: missing `{k}`"))
            };
            out.push(BenchCase {
                name: str_field("name")?,
                backend: str_field("backend")?,
                batch: u64_field("batch")?,
                routing: str_field("routing")?,
                pairs: u64_field("pairs")?,
                throughput_tps: c
                    .get("throughput_tps")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("case {i}: missing `throughput_tps`"))?,
                p50_ms: u64_field("p50_ms")?,
                p95_ms: u64_field("p95_ms")?,
                p99_ms: u64_field("p99_ms")?,
                results: u64_field("results")?,
            });
        }
        Ok(BenchDoc { version, suite, cases: out })
    }
}

/// One detected regression (or coverage gap) against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Case id.
    pub case: String,
    /// Regressed axis: `throughput_tps`, `p99_ms` or `missing`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value (0 for a missing case).
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.1} -> {:.1}",
            self.case, self.metric, self.baseline, self.current
        )
    }
}

/// Compare a fresh measurement against the baseline. A case regresses
/// when throughput drops by more than `threshold` (relative), or when p99
/// latency grows by more than `threshold` *and* by more than 5 ms (the
/// absolute guard keeps 1 ms → 2 ms jitter from tripping a 30 % gate).
/// Baseline cases absent from `current` are reported as `missing`.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, threshold: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for b in &baseline.cases {
        let Some(c) = current.cases.iter().find(|c| c.name == b.name) else {
            out.push(Regression {
                case: b.name.clone(),
                metric: "missing".into(),
                baseline: b.throughput_tps,
                current: 0.0,
            });
            continue;
        };
        if c.throughput_tps < b.throughput_tps * (1.0 - threshold) {
            out.push(Regression {
                case: b.name.clone(),
                metric: "throughput_tps".into(),
                baseline: b.throughput_tps,
                current: c.throughput_tps,
            });
        }
        let p99_limit = (b.p99_ms as f64 * (1.0 + threshold)).max(b.p99_ms as f64 + 5.0);
        if c.p99_ms as f64 > p99_limit {
            out.push(Regression {
                case: b.name.clone(),
                metric: "p99_ms".into(),
                baseline: b.p99_ms as f64,
                current: c.p99_ms as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> BenchDoc {
        BenchDoc {
            version: BASELINE_VERSION,
            suite: "pipeline".into(),
            cases: vec![
                BenchCase {
                    name: "broker_batch1_random".into(),
                    backend: "broker".into(),
                    batch: 1,
                    routing: "random".into(),
                    pairs: 20_000,
                    throughput_tps: 150_000.0,
                    p50_ms: 1,
                    p95_ms: 4,
                    p99_ms: 9,
                    results: 20_000,
                },
                BenchCase {
                    name: "sharded_batch64_random".into(),
                    backend: "sharded".into(),
                    batch: 64,
                    routing: "random".into(),
                    pairs: 20_000,
                    throughput_tps: 400_000.5,
                    p50_ms: 2,
                    p95_ms: 8,
                    p99_ms: 15,
                    results: 20_000,
                },
            ],
        }
    }

    #[test]
    fn encoding_round_trips_byte_for_byte() {
        let text = doc().to_json();
        let parsed = BenchDoc::from_json(&text).unwrap();
        assert_eq!(parsed, doc());
        assert_eq!(parsed.to_json(), text, "re-encoding must be byte-stable");
    }

    #[test]
    fn golden_encoding_shape() {
        let text = doc().to_json();
        assert!(text.starts_with("{\n  \"version\": 2,\n  \"suite\": \"pipeline\",\n"));
        assert!(text.contains("      \"backend\": \"broker\",\n"));
        assert!(text.contains("      \"backend\": \"sharded\",\n"));
        assert!(text.contains("      \"throughput_tps\": 150000.0,\n"));
        assert!(text.contains("      \"throughput_tps\": 400000.5,\n"));
        assert!(text.ends_with("  ]\n}\n"));
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(BenchDoc::from_json("[]").is_err());
        assert!(BenchDoc::from_json("{\"version\": 99, \"suite\": \"p\", \"cases\": []}")
            .unwrap_err()
            .contains("version"));
        // Version-1 documents (no backend axis) are rejected, not guessed at.
        assert!(BenchDoc::from_json("{\"version\": 1, \"suite\": \"p\", \"cases\": []}")
            .unwrap_err()
            .contains("version"));
        let no_p99 = "{\"version\": 2, \"suite\": \"p\", \"cases\": [{\"name\": \"x\", \
                      \"backend\": \"broker\", \"batch\": 1, \"routing\": \"random\", \
                      \"pairs\": 1, \"throughput_tps\": 1.0, \"p50_ms\": 1, \"p95_ms\": 1, \
                      \"results\": 1}]}";
        assert!(BenchDoc::from_json(no_p99).unwrap_err().contains("p99_ms"));
        let no_backend = "{\"version\": 2, \"suite\": \"p\", \"cases\": [{\"name\": \"x\", \
                      \"batch\": 1, \"routing\": \"random\", \"pairs\": 1, \
                      \"throughput_tps\": 1.0, \"p50_ms\": 1, \"p95_ms\": 1, \"p99_ms\": 1, \
                      \"results\": 1}]}";
        assert!(BenchDoc::from_json(no_backend).unwrap_err().contains("backend"));
    }

    #[test]
    fn compare_flags_throughput_drop_and_p99_growth() {
        let base = doc();
        let mut cur = doc();
        cur.cases[0].throughput_tps = 90_000.0; // -40 %
        cur.cases[1].p99_ms = 40; // +166 % and > +5 ms
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert_eq!(regs[0].metric, "throughput_tps");
        assert_eq!(regs[1].metric, "p99_ms");
    }

    #[test]
    fn compare_tolerates_noise_within_threshold() {
        let base = doc();
        let mut cur = doc();
        cur.cases[0].throughput_tps = 120_000.0; // -20 % < 30 %
        cur.cases[0].p99_ms = 12; // +3 ms, under the absolute guard
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn compare_reports_missing_cases() {
        let base = doc();
        let mut cur = doc();
        cur.cases.remove(1);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "missing");
        assert_eq!(regs[0].case, "sharded_batch64_random");
    }
}
