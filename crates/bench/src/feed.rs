//! Adapter between the workload generators and the simulator's feed
//! trait.

use bistream_core::sim::TupleFeed;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_workload::source::{Interleaver, StreamSource};

/// A [`TupleFeed`] over the workload crate's two-relation interleaver,
/// bounded by a virtual end time.
#[derive(Debug)]
pub struct ScenarioFeed {
    inner: Interleaver,
    until_ms: Ts,
}

impl ScenarioFeed {
    /// Interleave `r` and `s` until virtual time `until_ms`.
    pub fn new(r: StreamSource, s: StreamSource, until_ms: Ts) -> ScenarioFeed {
        ScenarioFeed { inner: Interleaver::new(r, s), until_ms }
    }
}

impl TupleFeed for ScenarioFeed {
    fn peek_ts(&self) -> Option<Ts> {
        let ts = self.inner.peek_ts();
        (ts < self.until_ms).then_some(ts)
    }

    fn next_tuple(&mut self) -> Option<Tuple> {
        (self.inner.peek_ts() < self.until_ms).then(|| self.inner.next_tuple())
    }
}

/// A two-relation feed whose per-relation rate follows a
/// [`bistream_workload::schedule::RateSchedule`], with optional
/// per-tuple payload padding and paired
/// keys (consecutive R/S arrivals share a key so equi joins match).
///
/// Used by the dynamic-scaling experiments (E1/E2) and the autoscaling
/// example; `scale` compresses the schedule's time axis for quick runs.
#[derive(Debug)]
pub struct ProfileFeed {
    schedule: bistream_workload::schedule::RateSchedule,
    scale: f64,
    /// Next arrival instants in fractional ms (exact rates need
    /// sub-millisecond accumulation; 300 t/s is a 3.33 ms gap).
    next: (f64, f64),
    k: i64,
    until: Ts,
    n_keys: i64,
    payload: Option<String>,
}

impl ProfileFeed {
    /// A feed over `schedule`, time-compressed by `scale`, ending at
    /// `until` ms, drawing keys from `0..n_keys`, padding each tuple with
    /// `payload_bytes` bytes of string payload (0 = none).
    pub fn new(
        schedule: bistream_workload::schedule::RateSchedule,
        scale: f64,
        until: Ts,
        n_keys: i64,
        payload_bytes: usize,
    ) -> ProfileFeed {
        ProfileFeed {
            schedule,
            scale,
            next: (0.0, 0.0),
            k: 0,
            until,
            n_keys: n_keys.max(1),
            payload: (payload_bytes > 0).then(|| "x".repeat(payload_bytes)),
        }
    }

    fn gap(&self, at: f64) -> f64 {
        // Query the profile in unscaled time.
        let unscaled = (at / self.scale) as Ts;
        1_000.0 / self.schedule.rate_at(unscaled)
    }
}

impl TupleFeed for ProfileFeed {
    fn peek_ts(&self) -> Option<Ts> {
        let ts = self.next.0.min(self.next.1) as Ts;
        (ts < self.until).then_some(ts)
    }

    fn next_tuple(&mut self) -> Option<Tuple> {
        use bistream_types::rel::Rel;
        use bistream_types::value::Value;
        let ts = self.peek_ts()?;
        let rel = if self.next.0 <= self.next.1 { Rel::R } else { Rel::S };
        match rel {
            Rel::R => self.next.0 += self.gap(self.next.0),
            Rel::S => self.next.1 += self.gap(self.next.1),
        }
        // Consecutive arrivals pair R/S on one key so equi joins match.
        let key = (self.k / 2) % self.n_keys;
        self.k += 1;
        let mut values = vec![Value::Int(key)];
        if let Some(p) = &self.payload {
            values.push(Value::Str(p.clone()));
        }
        Some(Tuple::new(rel, ts, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::rel::Rel;
    use bistream_workload::arrival::ArrivalProcess;
    use bistream_workload::keys::KeyDist;

    fn src(rel: Rel) -> StreamSource {
        StreamSource::new(
            rel,
            ArrivalProcess::Constant { rate: 100.0 },
            KeyDist::Uniform { n: 10 },
            0,
            1,
        )
    }

    #[test]
    fn profile_feed_tracks_schedule_and_pairs_keys() {
        use bistream_workload::schedule::RateSchedule;
        let sched = RateSchedule::new(vec![(0, 100.0), (1_000, 400.0)]);
        let mut feed = ProfileFeed::new(sched, 1.0, 2_000, 50, 8);
        let mut first_phase = 0;
        let mut second_phase = 0;
        let mut tuples = Vec::new();
        while let Some(t) = feed.next_tuple() {
            if t.ts() < 1_000 {
                first_phase += 1;
            } else {
                second_phase += 1;
            }
            tuples.push(t);
        }
        // 100/s then 400/s, both relations: ~200 then ~800 tuples.
        assert!((180..=220).contains(&first_phase), "{first_phase}");
        assert!((720..=880).contains(&second_phase), "{second_phase}");
        // Consecutive R/S pairs share a key; payload attached.
        assert_eq!(tuples[0].get(0), tuples[1].get(0));
        assert_eq!(tuples[0].get(1).unwrap().as_str().unwrap().len(), 8);
    }

    #[test]
    fn feed_is_bounded_and_ordered() {
        let mut feed = ScenarioFeed::new(src(Rel::R), src(Rel::S), 1_000);
        let mut last = 0;
        let mut n = 0;
        while let Some(t) = feed.next_tuple() {
            assert!(t.ts() >= last);
            assert!(t.ts() < 1_000);
            last = t.ts();
            n += 1;
        }
        assert_eq!(feed.peek_ts(), None);
        // Two 100 t/s sources over 1 s ≈ 200 tuples.
        assert!((190..=210).contains(&n), "{n}");
    }
}
