//! **E4 — Memory footprint vs. cluster size** (reconstructed: the
//! replication-cost analysis of the evaluation).
//!
//! Identical workload, window and cost model; the only variable is the
//! architecture and the unit count `p`. The biclique stores every tuple
//! exactly once, so its total live memory is flat in `p` (≈ the window
//! volume); the join-matrix replicates R over `√p` columns and S over
//! `√p` rows, so its footprint grows as `√p` — the factor the paper's
//! memory plots report.

use super::common::{drive_engine, drive_matrix, engine_config, feed};
use super::ExpCtx;
use crate::report::{f, mib, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::window::WindowSpec;

/// Run E4.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 4_000 } else { 12_000 };
    let rate = 1_000.0;
    let window = WindowSpec::sliding(5_000);
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    let payload = 128;

    let mut table = Table::new(
        "E4: live memory vs total units p (same workload & window)",
        &["p", "biclique_MiB", "matrix_MiB", "matrix/biclique", "analytic_sqrt(p)"],
    );
    for &p in &[4usize, 16, 36, 64] {
        let cfg = engine_config(
            RoutingStrategy::Random,
            predicate.clone(),
            window,
            p / 2,
            p / 2,
            ctx.seed,
        );
        let mut engine = BicliqueEngine::new(cfg).expect("valid");
        let mut f1 = feed(rate, 100_000, None, payload, ctx.seed, horizon_ms);
        drive_engine(&mut engine, &mut f1).expect("runs");
        let bic_bytes = engine.memory_bytes(Rel::R) + engine.memory_bytes(Rel::S);

        let side = (p as f64).sqrt() as usize;
        let mcfg = MatrixConfig {
            rows: side,
            cols: side,
            predicate: predicate.clone(),
            window,
            archive_period_ms: 250,
            seed: ctx.seed,
        };
        let mut matrix = JoinMatrix::new(mcfg).expect("valid");
        let mut f2 = feed(rate, 100_000, None, payload, ctx.seed, horizon_ms);
        drive_matrix(&mut matrix, &mut f2).expect("runs");
        let mat_bytes = matrix.memory_bytes();

        table.row(vec![
            p.to_string(),
            mib(bic_bytes),
            mib(mat_bytes),
            f(mat_bytes as f64 / bic_bytes.max(1) as f64, 2),
            f((p as f64).sqrt(), 1),
        ]);
    }
    table.emit("e4_memory_footprint");
}
