//! One module per experiment of EXPERIMENTS.md.
//!
//! Each experiment exposes `run(ctx)` and prints its table(s) through
//! [`crate::report::Table`], persisting JSON under `results/`. `ctx.quick`
//! shortens horizons for smoke runs (used by `--quick` and the
//! integration tests); the default parameters regenerate the figures at
//! full scale.

pub mod common;
pub mod e01_scaling_cpu;
pub mod e02_scaling_memory;
pub mod e03_capacity;
pub mod e04_memory_footprint;
pub mod e05_routing_skew;
pub mod e06_archive_period;
pub mod e07_ordering;
pub mod e08_window_sweep;
pub mod e09_elasticity;
pub mod e10_latency;
pub mod e11_communication;
pub mod e12_full_history;
pub mod e13_router_elasticity;
pub mod e14_recovery;
pub mod e15_trace_breakdown;
pub mod e16_batch_sweep;
pub mod e17_fault_sweep;
pub mod e18_perf_model;
pub mod e19_slo_chaos;

/// Experiment context.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Shorten horizons (smoke mode).
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Dump the observability output of instrumented experiments (the
    /// sampler's per-tick registry scrapes plus the drained event
    /// journal) to this JSON file (`--metrics-out`).
    pub metrics_out: Option<std::path::PathBuf>,
    /// Dump the per-tuple causal traces of tracing-instrumented
    /// experiments as Chrome `trace_event` JSON to this file
    /// (`--trace-out`); open in `chrome://tracing` or Perfetto.
    pub trace_out: Option<std::path::PathBuf>,
    /// Dump a point-in-time Prometheus text exposition of the
    /// experiment's registry to this file (`--telemetry-out`) — the
    /// payload a `/metrics` endpoint would serve.
    pub telemetry_out: Option<std::path::PathBuf>,
}

impl Default for ExpCtx {
    fn default() -> Self {
        ExpCtx {
            quick: false,
            seed: 0xB15_7EA4,
            metrics_out: None,
            trace_out: None,
            telemetry_out: None,
        }
    }
}

/// Write the `--metrics-out` dump: one JSON object holding the sampled
/// registry time-series (`series`, one full scrape per sample tick) and
/// the structured event journal (`events`, virtual-time stamped).
pub fn dump_metrics(
    path: &std::path::Path,
    series: &[bistream_types::registry::RegistrySnapshot],
    events: &[bistream_types::journal::Event],
) {
    let doc = serde_json::json!({ "series": series, "events": events });
    let text = serde_json::to_string_pretty(&doc).expect("metrics serialize");
    match std::fs::write(path, text) {
        Ok(()) => eprintln!(">> metrics written to {}", path.display()),
        Err(e) => eprintln!(">> could not write {}: {e}", path.display()),
    }
}

/// Write the `--trace-out` dump: the collected per-tuple causal traces
/// rendered as Chrome `trace_event` JSON (one timeline row per trace).
pub fn dump_traces(path: &std::path::Path, traces: &[bistream_types::trace::Trace]) {
    let text = bistream_types::trace::chrome_trace_json(traces);
    match std::fs::write(path, text) {
        Ok(()) => eprintln!(">> traces written to {}", path.display()),
        Err(e) => eprintln!(">> could not write {}: {e}", path.display()),
    }
}

/// Write the `--telemetry-out` dump: a Prometheus text exposition
/// rendered by [`bistream_types::telemetry`].
pub fn dump_telemetry(path: &std::path::Path, text: &str) {
    match std::fs::write(path, text) {
        Ok(()) => eprintln!(">> telemetry written to {}", path.display()),
        Err(e) => eprintln!(">> could not write {}: {e}", path.display()),
    }
}

/// All experiment ids in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19",
];

/// Dispatch by id; returns false for unknown ids.
pub fn run(id: &str, ctx: &ExpCtx) -> bool {
    match id {
        "e1" => e01_scaling_cpu::run(ctx),
        "e2" => e02_scaling_memory::run(ctx),
        "e3" => e03_capacity::run(ctx),
        "e4" => e04_memory_footprint::run(ctx),
        "e5" => e05_routing_skew::run(ctx),
        "e6" => e06_archive_period::run(ctx),
        "e7" => e07_ordering::run(ctx),
        "e8" => e08_window_sweep::run(ctx),
        "e9" => e09_elasticity::run(ctx),
        "e10" => e10_latency::run(ctx),
        "e11" => e11_communication::run(ctx),
        "e12" => e12_full_history::run(ctx),
        "e13" => e13_router_elasticity::run(ctx),
        "e14" => e14_recovery::run(ctx),
        "e15" => e15_trace_breakdown::run(ctx),
        "e16" => e16_batch_sweep::run(ctx),
        "e17" => e17_fault_sweep::run(ctx),
        "e18" => e18_perf_model::run(ctx),
        "e19" => e19_slo_chaos::run(ctx),
        _ => return false,
    }
    true
}
