//! **E18 — Utilization vs offered load: queueing-model validation**
//! (reconstructed: capacity-planning check for the observability layer).
//!
//! Drives the 2×2 equi-join at stepped offered loads under the thesis
//! cost model (no autoscaling: the layout stays fixed so per-unit load is
//! stationary) and compares the perf analyzer's *predicted* per-unit
//! utilization — arrival rate λ from the evaluation half of the scrape
//! series times the service time Ŝ estimated on the calibration half —
//! against the *observed* busy-CPU fraction. Under steady load the two
//! must agree (the estimate transfers across windows); the integration
//! test `tests/perf.rs` pins the agreement at ≤ 10 %. Expected shape:
//! ρ grows linearly with the offered rate while Ŝ stays flat.

use super::common::{engine_config, feed};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_cluster::{CostModel, HpaConfig};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::{run_dynamic_scaling, SimConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::registry::Observability;
use bistream_types::time::SECOND;
use bistream_types::window::WindowSpec;

/// Run E18.
pub fn run(ctx: &ExpCtx) {
    let horizon_s: u64 = if ctx.quick { 4 } else { 10 };
    let rates = [100.0, 200.0, 400.0, 800.0];
    let mut table = Table::new(
        format!("E18: predicted vs observed utilization ({horizon_s}s per rate, 2x2, no scaling)"),
        &["rate_t/s", "unit", "lambda_t/s", "S_us", "rho_pred", "rho_obs", "err_%"],
    );
    for (i, &rate) in rates.iter().enumerate() {
        let cfg = engine_config(
            RoutingStrategy::Hash,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(2 * SECOND),
            2,
            2,
            ctx.seed,
        );
        let obs = Observability::new();
        let engine = BicliqueEngine::builder(cfg)
            .cost_model(CostModel::thesis_operating_point())
            .observability(obs.clone())
            .build()
            .expect("valid config");
        let mut f1 = feed(rate, 5_000, None, 0, ctx.seed, horizon_s * SECOND);
        let sim = SimConfig {
            duration_ms: horizon_s * SECOND,
            sample_interval_ms: SECOND,
            scale_r: false,
            scale_s: false,
            pod_startup_delay_ms: 0,
            ..Default::default()
        };
        let out = run_dynamic_scaling(engine, &mut f1, HpaConfig::thesis_cpu(), &sim)
            .expect("simulation runs");
        for u in &out.perf.units {
            let err = if u.utilization_observed > 0.0 {
                (u.utilization_predicted - u.utilization_observed).abs() / u.utilization_observed
                    * 100.0
            } else {
                0.0
            };
            table.row(vec![
                f(rate, 0),
                u.unit.clone(),
                f(u.arrival_rate_tps, 0),
                f(u.service_us_per_item, 1),
                f(u.utilization_predicted, 3),
                f(u.utilization_observed, 3),
                f(err, 1),
            ]);
        }
        // Dumps cover the highest (most interesting) rate.
        if i + 1 == rates.len() {
            if let Some(path) = &ctx.metrics_out {
                super::dump_metrics(path, &out.metric_series, &out.events);
            }
            if let Some(path) = &ctx.telemetry_out {
                super::dump_telemetry(
                    path,
                    &bistream_types::telemetry::prometheus_text(&obs.registry, horizon_s * SECOND),
                );
            }
        }
    }
    table.emit("e18_perf_model");
}
