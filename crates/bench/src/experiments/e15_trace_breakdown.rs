//! **E15 — Ordering-protocol latency attribution via per-tuple traces**
//! (reconstructed: BiStream eval axis — the source text reports the
//! protocol's buffering delay only as end-to-end p50/p99 shifts; causal
//! traces break that overhead down per hop).
//!
//! The same workload runs twice through traced engines — ordering protocol
//! ON (order-consistent results) and OFF (raw pairwise-FIFO delivery) —
//! sampling every tuple. Each trace attributes its end-to-end latency to
//! queue wait (enqueue → dequeue gap) and ordering wait (dequeue →
//! store/probe gap, i.e. time parked in the reorder buffer awaiting the
//! punctuation watermark). With the protocol ON the ordering wait tracks
//! the punctuation interval; OFF it collapses to zero — isolating exactly
//! what the protocol costs and where.
//!
//! With `--trace-out FILE`, the ordering-ON run's traces are exported as
//! Chrome `trace_event` JSON (open in `chrome://tracing` or Perfetto).

use super::common::engine_config;
use super::{dump_traces, ExpCtx};
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_types::predicate::JoinPredicate;
use bistream_types::registry::Observability;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::trace::{HopKind, Trace};
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

const WINDOW_MS: Ts = 1_000;

fn workload(n: usize, seed: u64) -> Vec<Tuple> {
    let mut tuples = Vec::with_capacity(n);
    let mut state = seed | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % 40) as i64;
        tuples.push(Tuple::new(rel, (i as Ts) * 3, vec![Value::Int(key)]));
    }
    tuples
}

fn run_traced(tuples: &[Tuple], ordering: bool, punct_ms: Ts, seed: u64) -> Vec<Trace> {
    let mut cfg = engine_config(
        RoutingStrategy::Random,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(WINDOW_MS),
        2,
        2,
        seed,
    );
    cfg.ordering = ordering;
    cfg.punctuation_interval_ms = punct_ms;
    let mut engine = BicliqueEngine::builder(cfg)
        .observability(Observability::with_tracing(1))
        .build()
        .expect("valid");
    let mut next_punct = punct_ms;
    let mut last_t = 0;
    for t in tuples {
        while next_punct <= t.ts() {
            engine.punctuate(next_punct).expect("punctuate");
            next_punct += punct_ms;
        }
        engine.ingest(t, t.ts()).expect("ingest");
        last_t = t.ts();
    }
    engine.punctuate(last_t + punct_ms).expect("punctuate");
    engine.flush().expect("flush");
    let tracer = engine.observability().tracer.clone();
    tracer.flush_pending();
    let mut traces = tracer.drain();
    traces.sort_by_key(|t| t.id);
    traces
}

struct Breakdown {
    traces: usize,
    complete: usize,
    mean_queue_wait: f64,
    mean_order_wait: f64,
    p50_e2e: Ts,
    p99_e2e: Ts,
}

fn breakdown(traces: &[Trace]) -> Breakdown {
    let complete: Vec<&Trace> = traces.iter().filter(|t| t.complete).collect();
    let (mut queue_wait, mut queue_n) = (0u64, 0u64);
    let (mut order_wait, mut order_n) = (0u64, 0u64);
    let mut e2e: Vec<Ts> = Vec::with_capacity(complete.len());
    for tr in &complete {
        e2e.push(tr.end_to_end());
        for hop in tr.hop_timings() {
            match hop.kind {
                // Gap behind a dequeue = time the copy sat in a queue.
                HopKind::Dequeue => {
                    queue_wait += hop.wait;
                    queue_n += 1;
                }
                // Gap behind store/probe = time in the reorder buffer.
                HopKind::Store | HopKind::Probe => {
                    order_wait += hop.wait;
                    order_n += 1;
                }
                _ => {}
            }
        }
    }
    e2e.sort_unstable();
    let pct = |p: f64| -> Ts {
        if e2e.is_empty() {
            0
        } else {
            e2e[(((e2e.len() - 1) as f64) * p) as usize]
        }
    };
    Breakdown {
        traces: traces.len(),
        complete: complete.len(),
        mean_queue_wait: if queue_n > 0 { queue_wait as f64 / queue_n as f64 } else { 0.0 },
        mean_order_wait: if order_n > 0 { order_wait as f64 / order_n as f64 } else { 0.0 },
        p50_e2e: pct(0.50),
        p99_e2e: pct(0.99),
    }
}

/// Run E15.
pub fn run(ctx: &ExpCtx) {
    // Every tuple is sampled, so keep the stream under the tracer's
    // bounded completed-store capacity (4 096) — no silent eviction.
    let n = if ctx.quick { 1_000 } else { 4_000 };
    let tuples = workload(n, ctx.seed);

    let mut table = Table::new(
        "E15: per-hop latency attribution — ordering protocol on vs. off",
        &[
            "protocol",
            "punct_ms",
            "traces",
            "complete",
            "mean_queue_wait_ms",
            "mean_order_wait_ms",
            "p50_e2e_ms",
            "p99_e2e_ms",
        ],
    );
    let mut export: Vec<Trace> = Vec::new();
    for &punct_ms in &[20u64, 100] {
        for ordering in [true, false] {
            let traces = run_traced(&tuples, ordering, punct_ms, ctx.seed);
            let b = breakdown(&traces);
            table.row(vec![
                if ordering { "on" } else { "off" }.into(),
                punct_ms.to_string(),
                b.traces.to_string(),
                b.complete.to_string(),
                f(b.mean_queue_wait, 2),
                f(b.mean_order_wait, 2),
                b.p50_e2e.to_string(),
                b.p99_e2e.to_string(),
            ]);
            if ordering && punct_ms == 20 {
                export = traces;
            }
        }
    }
    table.emit("e15_trace_breakdown");

    if let Some(path) = &ctx.trace_out {
        dump_traces(path, &export);
    }
}
