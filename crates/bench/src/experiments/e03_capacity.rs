//! **E3 — Throughput (capacity) vs. number of processing units**,
//! biclique vs. join-matrix (reconstructed: the BiStream scalability
//! evaluation).
//!
//! Both models run the band-join workload at a fixed offered rate under
//! the *same* per-operation cost model; capacity is extrapolated from the
//! hottest unit's utilisation (`capacity = offered / max_util`). On this
//! single-core host the threaded runtimes cannot demonstrate parallel
//! speed-up physically, so the capacity estimator is the honest
//! instrument — see EXPERIMENTS.md for the substitution note. A 2×2 live
//! pipeline run is included as a wall-clock sanity anchor.
//!
//! Two workload classes are compared, because they crown different
//! winners and that split is the substance of the paper's claim:
//!
//! - **equi-join**: the biclique routes content-sensitively (ContRand),
//!   so per-unit work shrinks ~`1/p`; the matrix cannot (random row and
//!   column assignment is its skew-resilience), so every tuple is still
//!   replicated `√p`-fold and probes `√p` whole-fragment... the biclique
//!   wins increasingly with `p`.
//! - **band join**: both models pay the full Cartesian-candidate probe
//!   work; per-unit CPU ends up comparable (the matrix's lower `√p`
//!   fan-out even gives it a small per-message edge). The biclique's win
//!   here is **memory** — the same capacity at `1/√p` the state (memory
//!   column; E4 quantifies) — plus elasticity (E9), matching the paper's
//!   "comparable throughput, significantly less memory" framing for
//!   theta joins.

use super::common::{capacity_from_meters, drive_engine, drive_matrix, engine_config, feed};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::window::WindowSpec;

struct Regime {
    name: &'static str,
    predicate: JoinPredicate,
    routing: fn(usize) -> RoutingStrategy,
    window_ms: u64,
    n_keys: u64,
    offered: f64,
}

/// Run E3.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 5_000 } else { 20_000 };
    let regimes = [
        Regime {
            // Subgroup count grows with the cluster (constant subgroup
            // width 2), as the paper tunes d with the fleet: fan-out
            // stays 1 + 2 while skew is still diluted within a subgroup.
            name: "equi-join (biclique routes ContRand, width-2 subgroups)",
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            routing: |p| RoutingStrategy::ContRand { subgroups: (p / 4).max(1) },
            window_ms: 10_000,
            n_keys: 10_000,
            offered: 1_000.0,
        },
        Regime {
            name: "band join (biclique routes Random)",
            predicate: JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 50.0 },
            routing: |_p| RoutingStrategy::Random,
            window_ms: 10_000,
            n_keys: 10_000,
            offered: 1_000.0,
        },
    ];

    for regime in &regimes {
        let window = WindowSpec::sliding(regime.window_ms);
        let mut table = Table::new(
            format!("E3 — {}: capacity & memory vs total units p", regime.name),
            &[
                "p",
                "bic_cap_t/s",
                "bic_MiB",
                "mat_cap_t/s",
                "mat_MiB",
                "cap_winner",
                "mem_ratio_mat/bic",
            ],
        );

        for &p in &[4usize, 16, 36, 64] {
            let cfg = engine_config(
                (regime.routing)(p),
                regime.predicate.clone(),
                window,
                p / 2,
                p / 2,
                ctx.seed,
            );
            let mut engine = BicliqueEngine::new(cfg).expect("valid");
            let mut f1 = feed(regime.offered, regime.n_keys, None, 0, ctx.seed, horizon_ms);
            drive_engine(&mut engine, &mut f1).expect("runs");
            let mut meters = engine.pod_meters(Rel::R);
            meters.extend(engine.pod_meters(Rel::S));
            let bic = capacity_from_meters(&meters, horizon_ms, regime.offered);
            let bic_mem = engine.memory_bytes(Rel::R) + engine.memory_bytes(Rel::S);

            // Matrix: √p × √p.
            let side = (p as f64).sqrt() as usize;
            let mcfg = MatrixConfig {
                rows: side,
                cols: side,
                predicate: regime.predicate.clone(),
                window,
                archive_period_ms: regime.window_ms / 20,
                seed: ctx.seed,
            };
            let mut matrix = JoinMatrix::new(mcfg).expect("valid");
            let mut f2 = feed(regime.offered, regime.n_keys, None, 0, ctx.seed, horizon_ms);
            drive_matrix(&mut matrix, &mut f2).expect("runs");
            let mat = capacity_from_meters(&matrix.pod_meters(), horizon_ms, regime.offered);
            let mat_mem = matrix.memory_bytes();

            table.row(vec![
                p.to_string(),
                f(bic.capacity, 0),
                crate::report::mib(bic_mem),
                f(mat.capacity, 0),
                crate::report::mib(mat_mem),
                if bic.capacity >= mat.capacity { "biclique" } else { "matrix" }.to_string(),
                f(mat_mem as f64 / bic_mem.max(1) as f64, 1),
            ]);
        }
        let tag = if regime.predicate.is_equi() { "equi" } else { "band" };
        table.emit(&format!("e3_capacity_{tag}"));
    }

    // Wall-clock sanity anchor: small live pipelines of both models.
    live_anchor(ctx);
}

fn live_anchor(ctx: &ExpCtx) {
    use bistream_core::exec::{Pipeline, PipelineConfig};
    use bistream_matrix::exec::{MatrixPipeline, MatrixPipelineConfig};
    use bistream_types::tuple::Tuple;
    use bistream_types::value::Value;

    let n = if ctx.quick { 5_000 } else { 20_000 };
    let window = WindowSpec::sliding(60_000);

    // Biclique 2×2 hash equi-join.
    let mut ecfg = engine_config(
        RoutingStrategy::Hash,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window,
        2,
        2,
        ctx.seed,
    );
    ecfg.punctuation_interval_ms = 5;
    let pipe = Pipeline::launch(PipelineConfig::new(ecfg)).expect("launch");
    for i in 0..n {
        let now = pipe.now();
        pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 997)])).unwrap();
        pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 997)])).unwrap();
    }
    let breport = pipe.finish().expect("finish");
    let btput = breport.snapshot.ingested as f64 / (breport.elapsed_ms.max(1) as f64 / 1_000.0);

    // Matrix 2×2 equi-join.
    let mcfg = MatrixPipelineConfig::new(MatrixConfig::square(
        2,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        window,
    ));
    let mpipe = MatrixPipeline::launch(mcfg).expect("launch");
    for i in 0..n {
        let now = mpipe.now();
        mpipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 997)])).unwrap();
        mpipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 997)])).unwrap();
    }
    let mreport = mpipe.finish().expect("finish");
    let mtput = mreport.snapshot.ingested as f64 / (mreport.elapsed_ms.max(1) as f64 / 1_000.0);

    let mut t = Table::new(
        "E3b: live wall-clock anchor (2x2 units, 1-core host)",
        &["model", "tuples", "elapsed_ms", "throughput_t/s", "results"],
    );
    t.row(vec![
        "biclique".into(),
        breport.snapshot.ingested.to_string(),
        breport.elapsed_ms.to_string(),
        f(btput, 0),
        breport.snapshot.results.to_string(),
    ]);
    t.row(vec![
        "matrix".into(),
        mreport.snapshot.ingested.to_string(),
        mreport.elapsed_ms.to_string(),
        f(mtput, 0),
        mreport.snapshot.results.to_string(),
    ]);
    t.emit("e3b_live_anchor");
}
