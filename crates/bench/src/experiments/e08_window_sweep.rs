//! **E8 — Window-size sweep** (reconstructed: the window-scaling
//! evaluation).
//!
//! Fixed workload and topology; the window `W` sweeps over an order of
//! magnitude. Reported per model: live memory at the end of the run
//! (∝ `W`, with the matrix paying its replication factor on top), the
//! per-unit CPU load (probe cost grows with the window volume under a
//! fixed key universe), and the result count (∝ `W` for the equi
//! workload). Both models must degrade smoothly — no cliff — which is
//! the property the paper's window plots establish.

use super::common::{capacity_from_meters, drive_engine, drive_matrix, engine_config, feed};
use super::ExpCtx;
use crate::report::{f, mib, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::window::WindowSpec;

/// Run E8.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 6_000 } else { 24_000 };
    let rate = 500.0;
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };

    let mut table = Table::new(
        "E8: window sweep (rate 500 t/s per relation, 4+4 biclique units vs 2x2 matrix)",
        &[
            "window_ms",
            "bic_MiB",
            "bic_max_util",
            "bic_results",
            "mat_MiB",
            "mat_max_util",
            "mat_results",
        ],
    );

    for &w in &[500u64, 1_000, 2_000, 4_000, 8_000] {
        let window = WindowSpec::sliding(w);
        let cfg = engine_config(RoutingStrategy::Hash, predicate.clone(), window, 4, 4, ctx.seed);
        let mut engine = BicliqueEngine::new(cfg).expect("valid");
        let mut f1 = feed(rate, 2_000, None, 64, ctx.seed, horizon_ms);
        drive_engine(&mut engine, &mut f1).expect("runs");
        let mut meters = engine.pod_meters(Rel::R);
        meters.extend(engine.pod_meters(Rel::S));
        let bic_cap = capacity_from_meters(&meters, horizon_ms, rate);
        let bic_mem = engine.memory_bytes(Rel::R) + engine.memory_bytes(Rel::S);
        let bic_results = engine.stats().results;

        let mcfg = MatrixConfig {
            rows: 2,
            cols: 2,
            predicate: predicate.clone(),
            window,
            archive_period_ms: (w / 20).max(1),
            seed: ctx.seed,
        };
        let mut matrix = JoinMatrix::new(mcfg).expect("valid");
        let mut f2 = feed(rate, 2_000, None, 64, ctx.seed, horizon_ms);
        drive_matrix(&mut matrix, &mut f2).expect("runs");
        let mat_cap = capacity_from_meters(&matrix.pod_meters(), horizon_ms, rate);

        table.row(vec![
            w.to_string(),
            mib(bic_mem),
            f(bic_cap.max_utilization, 3),
            bic_results.to_string(),
            mib(matrix.memory_bytes()),
            f(mat_cap.max_utilization, 3),
            matrix.stats().results.to_string(),
        ]);
    }
    table.emit("e8_window_sweep");
}
