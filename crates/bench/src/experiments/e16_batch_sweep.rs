//! **E16 — Micro-batch size sweep** (reconstructed: BiStream eval axis).
//!
//! The router→joiner channels carry [`bistream_types::TupleBatch`] frames;
//! `batch_size` sets how many same-destination, same-purpose tuples share
//! one frame (1 = the per-tuple framing of the original system). The live
//! threaded pipeline is driven flat-out at each batch size to measure the
//! framing's effect on saturation throughput and end-to-end latency.
//! Expected shape: throughput rises with the batch size as per-frame
//! publish/decode overhead amortises, while p99 latency grows once frames
//! wait noticeably long to fill (bounded by the punctuation interval,
//! which flushes every pending batch).

use super::common::engine_config;
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::exec::{Pipeline, PipelineConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

/// Feed `n` matching pairs flat-out at one batch size; return
/// (throughput t/s, p50, p95, p99, results).
fn run_at(ctx: &ExpCtx, batch: usize, n: usize) -> (f64, u64, u64, u64, u64) {
    let mut cfg = engine_config(
        RoutingStrategy::Hash,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(30_000),
        2,
        2,
        ctx.seed,
    );
    cfg.punctuation_interval_ms = 10;
    cfg.batch_size = batch;
    let pipe = Pipeline::launch(PipelineConfig::new(cfg)).expect("launch");
    for i in 0..n {
        let now = pipe.now();
        pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 997)])).unwrap();
        pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 997)])).unwrap();
    }
    let report = pipe.finish().expect("finish");
    let throughput = report.snapshot.ingested as f64 / (report.elapsed_ms.max(1) as f64 / 1_000.0);
    let l = report.snapshot.latency;
    (throughput, l.p50, l.p95, l.p99, report.snapshot.results)
}

/// Run E16.
pub fn run(ctx: &ExpCtx) {
    let n = if ctx.quick { 10_000 } else { 50_000 };
    let mut table = Table::new(
        format!("E16: micro-batch size sweep ({n} pairs flat-out, hash routing)"),
        &["batch", "thr_t/s", "p50_ms", "p95_ms", "p99_ms", "results"],
    );
    for &batch in &[1usize, 4, 16, 64, 256] {
        let (thr, p50, p95, p99, results) = run_at(ctx, batch, n);
        table.row(vec![
            batch.to_string(),
            f(thr, 0),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
            results.to_string(),
        ]);
    }
    table.emit("e16_batch_sweep");
}
