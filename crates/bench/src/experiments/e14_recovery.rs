//! **E14 — Unit recovery** (reconstructed: the original systems inherit
//! fault tolerance from their platform — Storm replay / Kubernetes pod
//! restarts; the biclique's independent-unit property makes recovery
//! purely local).
//!
//! A loaded engine snapshots every R-unit, "crashes" them (each unit is
//! rebuilt from scratch) and restores from the snapshots; the probe phase
//! then measures result completeness. The control row restores from an
//! empty snapshot, quantifying what an unrecovered crash costs. Snapshot
//! size and wall-clock cost are reported per window volume.

use super::common::engine_config;
use super::ExpCtx;
use crate::report::{f, mib, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Stopwatch;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

fn engine(ctx: &ExpCtx) -> BicliqueEngine {
    let cfg = engine_config(
        RoutingStrategy::Hash,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(60_000),
        3,
        3,
        ctx.seed,
    );
    let mut e = BicliqueEngine::new(cfg).expect("valid");
    e.capture_results();
    e
}

fn load(engine: &mut BicliqueEngine, n: i64, payload: &str) -> Ts {
    let mut last = 0;
    for i in 0..n {
        last = i as Ts;
        engine
            .ingest(
                &Tuple::new(Rel::R, last, vec![Value::Int(i), Value::Str(payload.into())]),
                last,
            )
            .expect("ingest");
    }
    engine.punctuate(last + 100).expect("punctuate");
    last
}

fn probe_all(engine: &mut BicliqueEngine, n: i64, from: Ts) -> usize {
    for i in 0..n {
        let ts = from + i as Ts;
        engine
            .ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i), Value::Null]), ts)
            .expect("ingest");
    }
    engine.punctuate(from + n as Ts + 100).expect("punctuate");
    engine.flush().expect("flush");
    engine.take_captured().len()
}

/// Run E14.
pub fn run(ctx: &ExpCtx) {
    let n: i64 = if ctx.quick { 10_000 } else { 50_000 };
    let payload = "x".repeat(64);

    let mut table = Table::new(
        "E14: unit recovery via snapshot/restore (all 3 R-units crash)",
        &[
            "mode",
            "stored",
            "snapshot_MiB",
            "snapshot_ms",
            "restore_ms",
            "results",
            "completeness_%",
        ],
    );

    // Baseline: no crash.
    let mut base = engine(ctx);
    let last = load(&mut base, n, &payload);
    let expected = probe_all(&mut base, n, last + 1);

    // Crash + restore from snapshots.
    let mut e = engine(ctx);
    let last = load(&mut e, n, &payload);
    let units: Vec<_> = e.layout().units(Rel::R).to_vec();
    let snap_started = Stopwatch::start();
    let snapshots: Vec<_> =
        units.iter().map(|&id| (id, e.snapshot_unit(id).expect("snapshot"))).collect();
    let snapshot_ms = snap_started.elapsed_ms_f64();
    let snapshot_bytes: usize = snapshots.iter().map(|(_, b)| b.len()).sum();
    let restore_started = Stopwatch::start();
    let mut restored = 0;
    for (id, blob) in snapshots {
        restored += e.restore_unit(id, blob).expect("restore");
    }
    let restore_ms = restore_started.elapsed_ms_f64();
    let results = probe_all(&mut e, n, last + 1);
    table.row(vec![
        "snapshot+restore".into(),
        restored.to_string(),
        mib(snapshot_bytes as u64),
        f(snapshot_ms, 1),
        f(restore_ms, 1),
        results.to_string(),
        f(results as f64 / expected as f64 * 100.0, 1),
    ]);

    // Control: crash without recovery (empty snapshots).
    let mut e = engine(ctx);
    let last = load(&mut e, n, &payload);
    let units: Vec<_> = e.layout().units(Rel::R).to_vec();
    let empty = bistream_index::snapshot(&bistream_index::ChainedIndex::new(
        bistream_index::IndexKind::Hash,
        WindowSpec::sliding(60_000),
        3_000,
    ));
    for &id in &units {
        e.restore_unit(id, empty.clone()).expect("restore empty");
    }
    let results = probe_all(&mut e, n, last + 1);
    table.row(vec![
        "crash, no recovery".into(),
        "0".into(),
        "0.0".into(),
        "-".into(),
        "-".into(),
        results.to_string(),
        f(results as f64 / expected as f64 * 100.0, 1),
    ]);

    table.emit("e14_recovery");
}
