//! **E17 — Fault sweep** (reconstructed: BiStream eval axis —
//! elasticity/failure; the original outsources fault handling to Storm
//! replay, so the paper reports no failure experiment).
//!
//! The chaos explorer sweeps seeded fault plans per scenario against the
//! crash/recover trial workload with the protocol auditor armed. A
//! healthy engine must survive every scenario with zero violations; a
//! deliberately seeded recovery bug (`skip_rehydrate`: restart without
//! snapshot re-hydration) must be caught, and the table reports how small
//! ddmin makes the culprit plan.

use super::ExpCtx;
use crate::report::Table;
use bistream_core::chaos::{explore, SCENARIOS};
use bistream_types::fault::TrialSpec;

/// Run E17.
pub fn run(ctx: &ExpCtx) {
    let seeds: u64 = if ctx.quick { 4 } else { 32 };
    let spec = TrialSpec { engine_seed: ctx.seed, ..TrialSpec::default() };

    let mut table = Table::new(
        "E17: chaos exploration — seeded fault plans vs the crash/recover trial",
        &["scenario", "bug", "seeds", "failures", "min_events", "first_violation"],
    );

    for scenario in SCENARIOS {
        let exploration = explore(scenario, seeds, &spec, false);
        table.row(vec![
            (*scenario).into(),
            "none".into(),
            exploration.seeds_run.to_string(),
            exploration.failures.len().to_string(),
            "-".into(),
            "-".into(),
        ]);
    }

    // The seeded recovery bug: the explorer must find and minimise it.
    // `stop_at_first` keeps this cheap, so grant a generous seed floor —
    // the sweep stops at the first failing seed anyway.
    let mut buggy = spec.clone();
    buggy.bug = "skip_rehydrate".to_owned();
    let exploration = explore("crash", seeds.max(16), &buggy, true);
    let (min_events, first) = match exploration.failures.first() {
        Some(a) => (
            a.plan.events.len().to_string(),
            a.violations.first().cloned().unwrap_or_else(|| "-".into()),
        ),
        None => ("-".into(), "NOT FOUND".into()),
    };
    table.row(vec![
        "crash".into(),
        "skip_rehydrate".into(),
        exploration.seeds_run.to_string(),
        exploration.failures.len().to_string(),
        min_events,
        first,
    ]);

    table.emit("e17_fault_sweep");
}
