//! **E10 — Result latency vs. offered load** (reconstructed: the latency
//! evaluation).
//!
//! The live threaded pipeline is first driven flat-out to measure its
//! saturation throughput on this host, then re-run at fixed fractions of
//! that rate while sampling the end-to-end result latency (ingest stamp →
//! emit) histogram. Expected shape: flat latency dominated by the
//! punctuation interval at low load, rising sharply as the offered rate
//! approaches saturation (queueing delay takes over).

use super::common::engine_config;
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::exec::{Pipeline, PipelineConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Stopwatch;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use std::time::Duration;

fn launch(ctx: &ExpCtx) -> Pipeline {
    let mut cfg = engine_config(
        RoutingStrategy::Hash,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(30_000),
        2,
        2,
        ctx.seed,
    );
    cfg.punctuation_interval_ms = 10;
    Pipeline::launch(PipelineConfig::new(cfg)).expect("launch")
}

/// Measure saturation throughput: feed `n` pairs as fast as possible.
fn saturation(ctx: &ExpCtx, n: usize) -> f64 {
    let pipe = launch(ctx);
    for i in 0..n {
        let now = pipe.now();
        pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 997)])).unwrap();
        pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 997)])).unwrap();
    }
    let report = pipe.finish().expect("finish");
    report.snapshot.ingested as f64 / (report.elapsed_ms.max(1) as f64 / 1_000.0)
}

/// Run at `rate` tuples/s (total) for `secs`, return latency percentiles.
fn paced_run(ctx: &ExpCtx, rate: f64, secs: f64) -> (u64, u64, u64, u64) {
    let pipe = launch(ctx);
    let gap = Duration::from_secs_f64(2.0 / rate); // per pair
    let start = Stopwatch::start();
    let mut i = 0i64;
    while start.elapsed_secs_f64() < secs {
        let now = pipe.now();
        pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i % 997)])).unwrap();
        pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i % 997)])).unwrap();
        i += 1;
        // Pace: sleep until the next pair is due.
        let due = gap.mul_f64(i as f64);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }
    // Let punctuation flush before closing.
    std::thread::sleep(Duration::from_millis(50));
    let report = pipe.finish().expect("finish");
    let l = report.snapshot.latency;
    (l.p50, l.p95, l.p99, report.snapshot.results)
}

/// Run E10.
pub fn run(ctx: &ExpCtx) {
    let sat = saturation(ctx, if ctx.quick { 20_000 } else { 60_000 });
    let secs = if ctx.quick { 1.0 } else { 3.0 };

    let mut table = Table::new(
        format!("E10: latency vs offered load (saturation ≈ {} t/s on this host)", f(sat, 0)),
        &["load_%", "rate_t/s", "p50_ms", "p95_ms", "p99_ms", "results"],
    );
    for &frac in &[0.25f64, 0.5, 0.75, 0.9] {
        let rate = sat * frac;
        let (p50, p95, p99, results) = paced_run(ctx, rate, secs);
        table.row(vec![
            f(frac * 100.0, 0),
            f(rate, 0),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
            results.to_string(),
        ]);
    }
    table.emit("e10_latency");
}
