//! **E7 — The ordering protocol: correctness under adversarial delivery
//! and the punctuation-interval trade-off** (reconstructed: the
//! completeness evaluation; the race scenarios are the source text's
//! Fig. 8 c/d).
//!
//! Part 1 (correctness): the same tuple stream is delivered through the
//! shuffled pairwise-FIFO network with the protocol ON and OFF, and the
//! emitted result multiset is compared against the brute-force reference
//! join. ON must be *exactly-once*; OFF exhibits the missed- and
//! duplicate-result races.
//!
//! Part 2 (overhead): sweeping the punctuation interval shows the
//! protocol's latency cost — results wait for the watermark, so p50
//! latency tracks the interval — and its message overhead (punctuations
//! per data tuple).

use super::common::engine_config;
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::delivery::DeliveryMode;
use bistream_core::engine::BicliqueEngine;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::{JoinResult, Tuple};
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use std::collections::HashMap;

const WINDOW_MS: Ts = 1_000;

fn workload(n: usize, seed: u64) -> Vec<Tuple> {
    // Deterministic pseudo-random key stream with both relations mixed.
    let mut tuples = Vec::with_capacity(n);
    let mut state = seed | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % 40) as i64;
        tuples.push(Tuple::new(rel, (i as Ts) * 3, vec![Value::Int(key)]));
    }
    tuples
}

fn reference_join(tuples: &[Tuple]) -> Vec<(Ts, Vec<Value>, Ts, Vec<Value>)> {
    let mut expect = Vec::new();
    for a in tuples.iter().filter(|x| x.rel() == Rel::R) {
        for b in tuples.iter().filter(|x| x.rel() == Rel::S) {
            if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= WINDOW_MS {
                expect.push(JoinResult::of(a.clone(), b.clone()).identity());
            }
        }
    }
    expect.sort();
    expect
}

struct RunOutcome {
    results: usize,
    missed: usize,
    duplicated: usize,
}

fn run_once(tuples: &[Tuple], ordering: bool, shuffle_seed: u64, punct_ms: Ts) -> RunOutcome {
    let mut cfg = engine_config(
        RoutingStrategy::Random,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(WINDOW_MS),
        3,
        3,
        7,
    );
    cfg.ordering = ordering;
    cfg.punctuation_interval_ms = punct_ms;
    // Shuffled delivery with batching: tuples pile up in the network and
    // are delivered in adversarial cross-channel order.
    let mut engine = BicliqueEngine::builder(cfg)
        .routers(2)
        .delivery(DeliveryMode::Shuffled { seed: shuffle_seed })
        .manual_pump()
        .build()
        .expect("valid");
    engine.capture_results();
    let mut next_punct = punct_ms;
    let mut last_t = 0;
    for t in tuples {
        if t.ts() >= next_punct {
            engine.punctuate(next_punct).expect("punctuate");
            engine.pump().expect("pump");
            next_punct += punct_ms;
        }
        engine.ingest(t, t.ts()).expect("ingest");
        last_t = t.ts();
    }
    engine.punctuate(last_t + punct_ms).expect("punctuate");
    engine.pump().expect("pump");
    engine.flush().expect("flush");

    let got: Vec<_> = engine.take_captured().iter().map(|r| r.identity()).collect();
    let expect = reference_join(tuples);

    // Multiset compare.
    let mut counts: HashMap<_, i64> = HashMap::new();
    for e in &expect {
        *counts.entry(e.clone()).or_default() += 1;
    }
    let mut duplicated = 0usize;
    for g in &got {
        match counts.get_mut(g) {
            Some(c) if *c > 0 => *c -= 1,
            _ => duplicated += 1,
        }
    }
    let missed = counts.values().filter(|&&c| c > 0).map(|&c| c as usize).sum();
    RunOutcome { results: got.len(), missed, duplicated }
}

/// Run E7.
pub fn run(ctx: &ExpCtx) {
    let n = if ctx.quick { 2_000 } else { 8_000 };
    let tuples = workload(n, ctx.seed);
    let expect = reference_join(&tuples).len();

    let mut correctness = Table::new(
        "E7a: exactly-once under adversarial (shuffled, pairwise-FIFO) delivery",
        &["protocol", "shuffle_seed", "expected", "emitted", "missed", "duplicated"],
    );
    for seed in [1u64, 2, 3] {
        for ordering in [true, false] {
            let out = run_once(&tuples, ordering, seed, 20);
            correctness.row(vec![
                if ordering { "on" } else { "off" }.into(),
                seed.to_string(),
                expect.to_string(),
                out.results.to_string(),
                out.missed.to_string(),
                out.duplicated.to_string(),
            ]);
        }
    }
    correctness.emit("e7a_ordering_correctness");

    // Part 2: punctuation-interval sweep (protocol on, in-order net) —
    // latency follows the interval; punctuation traffic follows 1/interval.
    let mut sweep = Table::new(
        "E7b: punctuation interval sweep (protocol on)",
        &["interval_ms", "p50_latency_ms", "p99_latency_ms", "punct_msgs_per_tuple"],
    );
    for &interval in &[5u64, 20, 50, 100, 250] {
        let mut cfg = engine_config(
            RoutingStrategy::Random,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(WINDOW_MS),
            2,
            2,
            7,
        );
        cfg.punctuation_interval_ms = interval;
        let mut engine = BicliqueEngine::new(cfg).expect("valid");
        let mut next_punct = interval;
        let mut last_t = 0;
        for t in &tuples {
            while next_punct <= t.ts() {
                engine.punctuate(next_punct).expect("punctuate");
                next_punct += interval;
            }
            engine.ingest(t, t.ts()).expect("ingest");
            last_t = t.ts();
        }
        engine.punctuate(last_t + interval).expect("punctuate");
        let snap = engine.stats();
        sweep.row(vec![
            interval.to_string(),
            snap.latency.p50.to_string(),
            snap.latency.p99.to_string(),
            f(snap.punctuations as f64 / snap.ingested as f64, 2),
        ]);
    }
    sweep.emit("e7b_punctuation_sweep");
}
