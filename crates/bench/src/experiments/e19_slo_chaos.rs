//! **E19 — SLO under chaos: availability grading of seeded fault drills**
//! (reconstructed: ties PR-5's chaos harness to the SLO engine).
//!
//! Two drill families, one availability table:
//!
//! - **Sim trials** replay seeded delay/partition/crash/stall plans
//!   through the virtual-time two-phase workload
//!   ([`bistream_core::chaos::slo::run_graded_trial`]). Faults defer or
//!   replay work but never park ingest, so a correct engine holds its
//!   objectives — the rows document availability *under* faults, with the
//!   auditor still guarding correctness.
//! - **The live broker-stall drill**
//!   ([`bistream_core::chaos::slo::run_broker_stall_drill`]) parks
//!   publishers on the ingest queue for a seeded window; the
//!   activity-gated throughput floor breaches, the multi-window burn
//!   alert pages, and the flight recorder dumps a byte-stable breach
//!   bundle — persisted under `results/` so CI can upload it as an
//!   artifact.

use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::chaos::slo::{run_broker_stall_drill, run_graded_trial};
use bistream_types::fault::TrialSpec;
use bistream_types::slo::SloSpec;
use bistream_types::watchdog::WatchdogConfig;

/// Where the live drill's breach bundle lands (CI uploads this).
const BUNDLE_PATH: &str = "results/e19_breach_bundle.json";

/// Run E19.
pub fn run(ctx: &ExpCtx) {
    let seeds: u64 = if ctx.quick { 2 } else { 4 };
    let spec = TrialSpec { pairs: if ctx.quick { 24 } else { 48 }, ..TrialSpec::default() };
    let slo = SloSpec::new().min_ingest_tps(20.0).p99_latency_ms(5_000);
    let watchdog = WatchdogConfig::default();
    let mut table = Table::new(
        format!("E19: SLO under chaos ({seeds} seeds/scenario + live broker-stall drill)"),
        &["scenario", "mode", "seed", "results", "viol", "alerts", "stalls", "avail_%", "breached"],
    );

    for scenario in ["delay", "partition", "crash", "stall"] {
        for seed in 0..seeds {
            let trial = run_graded_trial(scenario, seed, &spec, &slo, &watchdog);
            let alerts =
                trial.health.slo.as_ref().map(|s| s.alerts.len()).unwrap_or(0);
            table.row(vec![
                scenario.to_owned(),
                "sim".to_owned(),
                seed.to_string(),
                trial.results.to_string(),
                trial.violations.len().to_string(),
                alerts.to_string(),
                trial.health.stalls.len().to_string(),
                f(trial.availability_pct(), 1),
                if trial.health.breached() { "yes" } else { "no" }.to_owned(),
            ]);
        }
    }

    // The live drill: wall-clock pacing, seeded stall window on the
    // ingest queue. A modest floor keeps the healthy intervals green on
    // loaded CI machines; the stalled intervals ingest nothing at all.
    let (intervals, interval_ms) = if ctx.quick { (8, 40) } else { (12, 60) };
    let drill_slo = SloSpec::new().min_ingest_tps(50.0);
    match run_broker_stall_drill(ctx.seed, intervals, interval_ms, drill_slo, watchdog.clone()) {
        Ok(drill) => {
            let health = &drill.report.health;
            let alerts = health.slo.as_ref().map(|s| s.alerts.len()).unwrap_or(0);
            let avail =
                health.slo.as_ref().map(|s| s.availability_pct()).unwrap_or(100.0);
            table.row(vec![
                "broker_stall".to_owned(),
                "live".to_owned(),
                ctx.seed.to_string(),
                drill.report.snapshot.results.to_string(),
                "0".to_owned(),
                alerts.to_string(),
                health.stalls.len().to_string(),
                f(avail, 1),
                if health.breached() { "yes" } else { "no" }.to_owned(),
            ]);
            if let Some(bundle) = &health.bundle {
                if std::fs::create_dir_all("results").is_ok() {
                    match std::fs::write(BUNDLE_PATH, bundle.to_json()) {
                        Ok(()) => eprintln!(">> breach bundle written to {BUNDLE_PATH}"),
                        Err(e) => eprintln!(">> could not write {BUNDLE_PATH}: {e}"),
                    }
                }
            } else {
                eprintln!(">> live drill raised no breach (no bundle written)");
            }
        }
        Err(e) => {
            eprintln!(">> live broker-stall drill failed: {e}");
            table.row(vec![
                "broker_stall".to_owned(),
                "live".to_owned(),
                ctx.seed.to_string(),
                "0".to_owned(),
                "1".to_owned(),
                "0".to_owned(),
                "0".to_owned(),
                f(0.0, 1),
                "error".to_owned(),
            ]);
        }
    }

    table.emit("e19_slo_chaos");
}
