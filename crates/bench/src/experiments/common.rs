//! Shared drivers for the experiment modules.

use crate::feed::ScenarioFeed;
use bistream_cluster::CostModel;
use bistream_core::config::{EngineConfig, RoutingStrategy};
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::TupleFeed;
use bistream_matrix::JoinMatrix;
use bistream_types::error::Result;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::window::WindowSpec;
use bistream_workload::arrival::ArrivalProcess;
use bistream_workload::keys::KeyDist;
use bistream_workload::source::StreamSource;

/// Build an engine config with sensible experiment defaults.
pub fn engine_config(
    routing: RoutingStrategy,
    predicate: JoinPredicate,
    window: WindowSpec,
    r_joiners: usize,
    s_joiners: usize,
    seed: u64,
) -> EngineConfig {
    EngineConfig {
        r_joiners,
        s_joiners,
        predicate,
        window,
        routing,
        archive_period_ms: window.size().map(|w| (w / 20).max(1)).unwrap_or(1_000),
        punctuation_interval_ms: 20,
        ordering: true,
        seed,
        batch_size: 1,
        adaptive: Default::default(),
    }
}

/// A constant-rate two-relation feed (rate per relation, uniform or Zipf
/// keys) bounded at `until_ms`.
pub fn feed(
    rate_per_sec: f64,
    n_keys: u64,
    zipf_theta: Option<f64>,
    payload_bytes: usize,
    seed: u64,
    until_ms: Ts,
) -> ScenarioFeed {
    let keys = match zipf_theta {
        Some(theta) => KeyDist::Zipf { n: n_keys, theta },
        None => KeyDist::Uniform { n: n_keys },
    };
    feed_dist(rate_per_sec, keys, payload_bytes, seed, until_ms)
}

/// A constant-rate two-relation feed over an arbitrary key distribution
/// (the shifting-Zipf ablations need [`KeyDist::ShiftingZipf`], which the
/// theta-only [`feed`] signature cannot express).
pub fn feed_dist(
    rate_per_sec: f64,
    keys: KeyDist,
    payload_bytes: usize,
    seed: u64,
    until_ms: Ts,
) -> ScenarioFeed {
    let arrivals = ArrivalProcess::Constant { rate: rate_per_sec };
    ScenarioFeed::new(
        StreamSource::new(Rel::R, arrivals.clone(), keys.clone(), payload_bytes, seed),
        StreamSource::new(Rel::S, arrivals, keys, payload_bytes, seed),
        until_ms,
    )
}

/// Drive a synchronous biclique engine through `feed`, punctuating on the
/// configured interval, until the feed ends; then flush.
pub fn drive_engine(engine: &mut BicliqueEngine, feed: &mut dyn TupleFeed) -> Result<()> {
    let punct_every = engine.config().punctuation_interval_ms;
    let mut next_punct = punct_every;
    let mut last_t = 0;
    while let Some(t) = feed.peek_ts() {
        while next_punct <= t {
            engine.punctuate(next_punct)?;
            next_punct += punct_every;
        }
        let tuple = feed.next_tuple().expect("peeked");
        engine.ingest(&tuple, t)?;
        last_t = t;
    }
    engine.punctuate(last_t + punct_every)?;
    engine.flush()
}

/// Drive a synchronous join-matrix through `feed` (no punctuation needed).
pub fn drive_matrix(matrix: &mut JoinMatrix, feed: &mut dyn TupleFeed) -> Result<()> {
    while let Some(tuple) = feed.next_tuple() {
        let t = tuple.ts();
        matrix.ingest(&tuple, t)?;
    }
    Ok(())
}

/// Estimate system capacity from per-unit CPU accounting: run at
/// `offered_rate` for the feed's horizon, read each unit's busy time, and
/// scale the offered rate by the hottest unit's utilisation —
/// `capacity ≈ offered / max_util`. Both models use the same
/// [`CostModel`], so the comparison isolates the architecture.
pub fn capacity_from_meters(
    meters: &[(usize, std::sync::Arc<bistream_cluster::ResourceMeter>)],
    horizon_ms: Ts,
    offered_rate: f64,
) -> CapacityEstimate {
    let horizon_us = (horizon_ms * 1_000) as f64;
    let utils: Vec<f64> = meters.iter().map(|(_, m)| m.cpu_busy_us() as f64 / horizon_us).collect();
    let max = utils.iter().copied().fold(0.0f64, f64::max);
    let mean = if utils.is_empty() { 0.0 } else { utils.iter().sum::<f64>() / utils.len() as f64 };
    CapacityEstimate {
        offered_rate,
        max_utilization: max,
        mean_utilization: mean,
        capacity: if max > 0.0 { offered_rate / max } else { f64::INFINITY },
    }
}

/// Result of [`capacity_from_meters`].
#[derive(Debug, Clone, Copy)]
pub struct CapacityEstimate {
    /// The rate the run was driven at (per relation, t/s).
    pub offered_rate: f64,
    /// Hottest unit's busy fraction.
    pub max_utilization: f64,
    /// Mean busy fraction.
    pub mean_utilization: f64,
    /// Estimated saturating rate (per relation, t/s).
    pub capacity: f64,
}

/// Default cost model for capacity comparisons.
pub fn cost() -> CostModel {
    CostModel::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_engine_produces_results() {
        let cfg = engine_config(
            RoutingStrategy::Hash,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(2_000),
            2,
            2,
            1,
        );
        let mut engine = BicliqueEngine::new(cfg).unwrap();
        let mut f = feed(200.0, 20, None, 0, 1, 3_000);
        drive_engine(&mut engine, &mut f).unwrap();
        let snap = engine.stats();
        assert!(snap.ingested > 1_000);
        assert!(snap.results > 0);
    }

    #[test]
    fn drive_matrix_produces_results() {
        let cfg = bistream_matrix::MatrixConfig::square(
            2,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(2_000),
        );
        let mut m = JoinMatrix::new(cfg).unwrap();
        let mut f = feed(200.0, 20, None, 0, 1, 3_000);
        drive_matrix(&mut m, &mut f).unwrap();
        assert!(m.stats().results > 0);
    }

    #[test]
    fn capacity_estimate_scales_with_utilisation() {
        let m = bistream_cluster::ResourceMeter::shared();
        m.charge_cpu_us(500_000.0); // 0.5s busy over a 1s horizon
        let est = capacity_from_meters(&[(0, m)], 1_000, 100.0);
        assert!((est.max_utilization - 0.5).abs() < 1e-9);
        assert!((est.capacity - 200.0).abs() < 1e-9);
    }
}
