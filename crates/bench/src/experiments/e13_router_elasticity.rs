//! **E13 — Router-tier elasticity and ordering-protocol overhead vs.
//! router count** (reconstructed: the router tier is stateless and
//! scaled as a competing-consumer group in both original systems; this
//! experiment quantifies what that costs the ordering protocol).
//!
//! Part 1: fixed workload, router count swept 1→4. More routers means
//! more punctuation traffic (every router punctuates every unit) and
//! deeper reorder buffers (the watermark is the *minimum* over router
//! frontiers), while results must stay exactly-once — all three columns
//! are reported.
//!
//! Part 2: routers are added and removed *mid-stream*; the result count
//! must equal the reference join exactly across the transitions
//! (deregistration must release, not strand, buffered tuples).

use super::common::engine_config;
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

const WINDOW_MS: Ts = 1_000;

fn workload(n: usize, seed: u64) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(n);
    let mut state = seed | 1;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
        let rel = if state & 1 == 0 { Rel::R } else { Rel::S };
        let key = ((state >> 33) % 60) as i64;
        out.push(Tuple::new(rel, (i as Ts) * 2, vec![Value::Int(key)]));
    }
    out
}

fn reference_count(tuples: &[Tuple]) -> usize {
    let mut n = 0;
    for a in tuples.iter().filter(|t| t.rel() == Rel::R) {
        for b in tuples.iter().filter(|t| t.rel() == Rel::S) {
            if a.get(0) == b.get(0) && a.ts().abs_diff(b.ts()) <= WINDOW_MS {
                n += 1;
            }
        }
    }
    n
}

/// Run E13.
pub fn run(ctx: &ExpCtx) {
    let n = if ctx.quick { 4_000 } else { 16_000 };
    let tuples = workload(n, ctx.seed);
    let expect = reference_count(&tuples);

    let mut table = Table::new(
        "E13a: ordering-protocol overhead vs router count (4+4 units)",
        &["routers", "punct_msgs/tuple", "max_reorder_depth", "results", "exactly_once"],
    );
    for routers in [1usize, 2, 4] {
        let cfg = engine_config(
            RoutingStrategy::Random,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(WINDOW_MS),
            4,
            4,
            ctx.seed,
        );
        let mut engine = BicliqueEngine::builder(cfg).routers(routers).build().expect("valid");
        engine.capture_results();
        drive(&mut engine, &tuples, &[]);
        let snap = engine.stats();
        let got = engine.take_captured().len();
        table.row(vec![
            routers.to_string(),
            f(snap.punctuations as f64 / snap.ingested as f64, 2),
            engine.max_reorder_depth().to_string(),
            got.to_string(),
            (got == expect).to_string(),
        ]);
    }
    table.emit("e13a_router_overhead");

    // Part 2: scale the router tier mid-stream.
    let mut timeline = Table::new(
        "E13b: router add/remove mid-stream (results must equal reference)",
        &["event", "at_tuple", "routers_after"],
    );
    let cfg = engine_config(
        RoutingStrategy::Random,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(WINDOW_MS),
        4,
        4,
        ctx.seed,
    );
    let mut engine = BicliqueEngine::new(cfg).expect("valid");
    engine.capture_results();
    let plan: Vec<(usize, bool)> = vec![(n / 4, true), (n / 2, true), (3 * n / 4, false)];
    drive_with_router_plan(&mut engine, &tuples, &plan, &mut timeline);
    let got = engine.take_captured().len();
    timeline.row(vec![
        format!("final results {got} (expected {expect})"),
        "-".into(),
        engine.routers().to_string(),
    ]);
    assert_eq!(got, expect, "router elasticity must not corrupt output");
    timeline.emit("e13b_router_scaling");
}

fn drive(engine: &mut BicliqueEngine, tuples: &[Tuple], _plan: &[(usize, bool)]) {
    let punct = engine.config().punctuation_interval_ms;
    let mut next_punct = punct;
    let mut last = 0;
    for t in tuples {
        while next_punct <= t.ts() {
            engine.punctuate(next_punct).expect("punctuate");
            next_punct += punct;
        }
        engine.ingest(t, t.ts()).expect("ingest");
        last = t.ts();
    }
    engine.punctuate(last + punct).expect("punctuate");
    engine.flush().expect("flush");
}

fn drive_with_router_plan(
    engine: &mut BicliqueEngine,
    tuples: &[Tuple],
    plan: &[(usize, bool)],
    timeline: &mut Table,
) {
    let punct = engine.config().punctuation_interval_ms;
    let mut next_punct = punct;
    let mut step = 0;
    let mut last = 0;
    for (i, t) in tuples.iter().enumerate() {
        while next_punct <= t.ts() {
            engine.punctuate(next_punct).expect("punctuate");
            next_punct += punct;
        }
        if step < plan.len() && i >= plan[step].0 {
            let (at, add) = plan[step];
            if add {
                engine.add_router();
            } else {
                engine.remove_router().expect("remove router");
            }
            timeline.row(vec![
                if add { "add_router" } else { "remove_router" }.into(),
                at.to_string(),
                engine.routers().to_string(),
            ]);
            step += 1;
        }
        engine.ingest(t, t.ts()).expect("ingest");
        last = t.ts();
    }
    engine.punctuate(last + punct).expect("punctuate");
    engine.flush().expect("flush");
}
