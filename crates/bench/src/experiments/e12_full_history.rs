//! **E12 — Full-history join** (reconstructed: BiStream's support for
//! joins over the complete stream history, not just a window).
//!
//! The engine runs with `WindowSpec::FullHistory`: nothing ever expires,
//! the chained index keeps archiving sub-indexes, and every incoming
//! tuple joins against the entire opposite history. Sampled per interval:
//! state growth (must be linear in the input — no replication, no leak
//! beyond the accounted payload) and the probe cost per tuple (for an
//! equi join over a fixed key universe this grows linearly too, since
//! each key's match list keeps growing — the expected, documented
//! behaviour).

use super::common::{engine_config, feed};
use super::ExpCtx;
use crate::report::{f, mib, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::TupleFeed;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::SECOND;
use bistream_types::window::WindowSpec;

/// Run E12.
pub fn run(ctx: &ExpCtx) {
    let horizon_s: u64 = if ctx.quick { 6 } else { 20 };
    let rate = 500.0;
    let cfg = engine_config(
        RoutingStrategy::Hash,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::FullHistory,
        2,
        2,
        ctx.seed,
    );
    let mut engine = BicliqueEngine::new(cfg).expect("valid");
    let mut f1 = feed(rate, 2_000, None, 32, ctx.seed, horizon_s * SECOND);

    let mut table = Table::new(
        "E12: full-history join — state growth and cumulative results",
        &["t_s", "stored_tuples", "state_MiB", "results", "candidates/probe"],
    );
    let punct = 20u64;
    let mut next_punct = punct;
    let mut next_sample = SECOND;
    while let Some(t) = f1.peek_ts() {
        while next_punct <= t {
            engine.punctuate(next_punct).expect("punctuate");
            next_punct += punct;
        }
        if t >= next_sample {
            let totals = engine.joiner_totals();
            let mem = engine.memory_bytes(Rel::R) + engine.memory_bytes(Rel::S);
            table.row(vec![
                (next_sample / SECOND).to_string(),
                totals.stored.to_string(),
                mib(mem),
                totals.results.to_string(),
                f(totals.candidates as f64 / totals.probes.max(1) as f64, 2),
            ]);
            next_sample += SECOND;
        }
        let tuple = f1.next_tuple().expect("peeked");
        engine.ingest(&tuple, t).expect("ingest");
    }
    engine.flush().expect("flush");
    let totals = engine.joiner_totals();
    assert_eq!(totals.expired, 0, "full history must never expire");
    table.emit("e12_full_history");
}
