//! **E5 — Routing strategies under key skew** (reconstructed: the
//! ContRand evaluation).
//!
//! Equi-join on an 8×8 biclique with Zipf-distributed keys, sweeping the
//! skew exponent θ and the routing strategy. Reported per cell: the
//! load-imbalance ratio (hottest unit's stored tuples over the mean) and
//! the communication cost (copies per tuple). Expected shape:
//!
//! - **Random** — imbalance ≈ 1 regardless of θ, but pays `1 + m` copies;
//! - **Hash** — 2 copies, but imbalance explodes as θ → 1 (the hot key
//!   pins one unit);
//! - **ContRand(d)** — copies `1 + m/d`, imbalance bounded by the
//!   subgroup width: the paper's middle ground.

use super::common::{drive_engine, engine_config, feed};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::window::WindowSpec;

fn imbalance(stored: &[u64]) -> f64 {
    let max = *stored.iter().max().unwrap_or(&0) as f64;
    let mean = stored.iter().sum::<u64>() as f64 / stored.len().max(1) as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

/// Run E5.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 3_000 } else { 10_000 };
    let units = 8usize;
    let strategies: &[(&str, RoutingStrategy)] = &[
        ("random", RoutingStrategy::Random),
        ("hash", RoutingStrategy::Hash),
        ("contrand(d=2)", RoutingStrategy::ContRand { subgroups: 2 }),
        ("contrand(d=4)", RoutingStrategy::ContRand { subgroups: 4 }),
    ];

    let mut table = Table::new(
        "E5: routing strategies under Zipf skew (8x8 units, equi join)",
        &["theta", "strategy", "copies/tuple", "imbalance(max/mean)", "results"],
    );

    for &theta in &[0.0f64, 0.5, 0.8, 0.99] {
        for (name, strategy) in strategies {
            let cfg = engine_config(
                *strategy,
                JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
                WindowSpec::sliding(2_000),
                units,
                units,
                ctx.seed,
            );
            let mut engine = BicliqueEngine::new(cfg).expect("valid");
            let zipf = (theta > 0.0).then_some(theta);
            let mut f1 = feed(1_000.0, 10_000, zipf, 0, ctx.seed, horizon_ms);
            drive_engine(&mut engine, &mut f1).expect("runs");
            let mut stored = engine.stored_per_joiner(Rel::R);
            stored.extend(engine.stored_per_joiner(Rel::S));
            let snap = engine.stats();
            table.row(vec![
                f(theta, 2),
                name.to_string(),
                f(snap.copies_per_tuple(), 2),
                f(imbalance(&stored), 2),
                snap.results.to_string(),
            ]);
        }
    }
    table.emit("e5_routing_skew");
}
