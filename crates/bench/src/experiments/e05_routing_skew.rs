//! **E5 — Routing strategies under key skew** (reconstructed: the
//! ContRand evaluation, extended with the skew-adaptive router).
//!
//! Part 1 — stationary Zipf sweep. Equi-join on an 8×8 biclique with
//! Zipf-distributed keys, sweeping the skew exponent θ and the routing
//! strategy. Reported per cell: the load-imbalance ratio (hottest unit's
//! stored tuples over the mean) and the communication cost (copies per
//! tuple). Expected shape:
//!
//! - **Random** — imbalance ≈ 1 regardless of θ, but pays `1 + m` copies;
//! - **Hash** — 2 copies, but imbalance explodes as θ → 1 (the hot key
//!   pins one unit);
//! - **ContRand(d)** — copies `1 + m/d`, imbalance bounded by the
//!   subgroup width: the paper's middle ground;
//! - **Adaptive** — starts as ContRand, detects the hot keys online and
//!   gives only those full fan-out: near-random imbalance at near-ContRand
//!   cost.
//!
//! Part 2 — shifting-Zipf ablation. The adversarial workload for the
//! adaptive router: exact Zipf at θ ≥ 1.2 whose hot-key identities rotate
//! every period. A static strategy is either expensive everywhere
//! (Random), collapsed (Hash), or bounded-but-stuck (ContRand); the
//! adaptive router must re-detect the hot set after every rotation.
//! Reported per cell: copies, the *peak* per-period imbalance (sampled at
//! each period boundary — cumulative averages would wash the rotation
//! out), the committed strategy switches, and the audit verdict.
//!
//! Part 3 — live ablation. The same contest on the threaded
//! [`Pipeline`] (broker backend) with an explicitly armed auditor:
//! adaptive vs static ContRand, flat-out, hot set rotating in wall time.

use super::common::{drive_engine, engine_config, feed, feed_dist};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::exec::{Pipeline, PipelineConfig};
use bistream_core::sim::TupleFeed;
use bistream_types::audit::Auditor;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use bistream_workload::keys::{KeyDist, ShiftingZipf};

fn imbalance(stored: &[u64]) -> f64 {
    let max = *stored.iter().max().unwrap_or(&0) as f64;
    let mean = stored.iter().sum::<u64>() as f64 / stored.len().max(1) as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

fn strategies() -> Vec<(&'static str, RoutingStrategy)> {
    vec![
        ("random", RoutingStrategy::Random),
        ("hash", RoutingStrategy::Hash),
        ("contrand(d=2)", RoutingStrategy::ContRand { subgroups: 2 }),
        ("contrand(d=4)", RoutingStrategy::ContRand { subgroups: 4 }),
        ("adaptive(d0=2)", RoutingStrategy::Adaptive { subgroups: 2 }),
    ]
}

/// Part 1: the stationary sweep.
fn stationary_sweep(ctx: &ExpCtx, horizon_ms: u64, units: usize) {
    let mut table = Table::new(
        "E5: routing strategies under Zipf skew (8x8 units, equi join)",
        &["theta", "strategy", "copies/tuple", "imbalance(max/mean)", "results", "switches"],
    );

    for &theta in &[0.0f64, 0.5, 0.8, 0.99] {
        for (name, strategy) in strategies() {
            let cfg = engine_config(
                strategy,
                JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
                WindowSpec::sliding(2_000),
                units,
                units,
                ctx.seed,
            );
            let mut engine = BicliqueEngine::new(cfg).expect("valid");
            let zipf = (theta > 0.0).then_some(theta);
            let mut f1 = feed(1_000.0, 10_000, zipf, 0, ctx.seed, horizon_ms);
            drive_engine(&mut engine, &mut f1).expect("runs");
            let mut stored = engine.stored_per_joiner(Rel::R);
            stored.extend(engine.stored_per_joiner(Rel::S));
            let snap = engine.stats();
            let switches = engine
                .adaptive_state()
                .map(|a| a.switches().to_string())
                .unwrap_or_else(|| "-".to_string());
            table.row(vec![
                f(theta, 2),
                name.to_string(),
                f(snap.copies_per_tuple(), 2),
                f(imbalance(&stored), 2),
                snap.results.to_string(),
                switches,
            ]);
        }
    }
    table.emit("e5_routing_skew");
}

/// Drive the sim engine over `feed`, punctuating on the configured
/// interval, and sample the per-unit stored imbalance at every
/// `period_ms` boundary (just after expiry catches up). Returns the
/// per-boundary imbalance series.
fn drive_sampling_periods(
    engine: &mut BicliqueEngine,
    feed: &mut dyn TupleFeed,
    period_ms: u64,
) -> Vec<f64> {
    let punct_every = engine.config().punctuation_interval_ms;
    let mut next_punct = punct_every;
    let mut next_period = period_ms;
    let mut series = Vec::new();
    let mut last_t = 0;
    while let Some(t) = feed.peek_ts() {
        while next_punct <= t {
            engine.punctuate(next_punct).expect("punctuate");
            if next_punct >= next_period {
                let mut stored = engine.stored_per_joiner(Rel::R);
                stored.extend(engine.stored_per_joiner(Rel::S));
                series.push(imbalance(&stored));
                next_period += period_ms;
            }
            next_punct += punct_every;
        }
        let tuple = feed.next_tuple().expect("peeked");
        engine.ingest(&tuple, t).expect("ingest");
        last_t = t;
    }
    engine.punctuate(last_t + punct_every).expect("punctuate");
    engine.flush().expect("flush");
    series
}

/// Part 2: the deterministic shifting-Zipf ablation.
fn shifting_ablation(ctx: &ExpCtx, horizon_ms: u64, units: usize) {
    let period_ms = horizon_ms / 4; // four hot-set rotations per run
    let mut table = Table::new(
        format!(
            "E5b: shifting-Zipf ablation (8x8 units, hot set rotates every {period_ms} ms)"
        ),
        &["theta", "strategy", "copies/tuple", "peak_imbalance", "results", "switches", "audit"],
    );

    for &theta in &[1.2f64, 1.5] {
        for (name, strategy) in strategies() {
            let cfg = engine_config(
                strategy,
                JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
                WindowSpec::sliding(period_ms.min(2_000)),
                units,
                units,
                ctx.seed,
            );
            let mut engine =
                BicliqueEngine::builder(cfg).auditor(Auditor::new()).build().expect("valid");
            let dist = KeyDist::ShiftingZipf { n: 10_000, theta, period_ms };
            let mut f1 = feed_dist(1_000.0, dist, 0, ctx.seed, horizon_ms);
            let series = drive_sampling_periods(&mut engine, &mut f1, period_ms);
            let peak = series.iter().copied().fold(0.0f64, f64::max);
            let snap = engine.stats();
            let switches = engine
                .adaptive_state()
                .map(|a| a.switches().to_string())
                .unwrap_or_else(|| "-".to_string());
            let audit = engine
                .auditor()
                .map(|a| a.finish().len().to_string())
                .unwrap_or_else(|| "-".to_string());
            table.row(vec![
                f(theta, 2),
                name.to_string(),
                f(snap.copies_per_tuple(), 2),
                f(peak, 2),
                snap.results.to_string(),
                switches,
                audit,
            ]);
        }
    }
    table.emit("e5_adaptive_ablation");
}

/// Part 3: the live threaded contest, adaptive vs static ContRand.
fn live_ablation(ctx: &ExpCtx, units: usize) {
    let pairs = if ctx.quick { 8_000 } else { 40_000 };
    let shift = ShiftingZipf::new(10_000, 1.2, 250); // wall-clock periods
    let mut table = Table::new(
        format!("E5c: live ablation, broker backend ({pairs} pairs flat-out, shifting theta=1.2)"),
        &["strategy", "thr_t/s", "copies/tuple", "results", "switches", "audit"],
    );

    for (name, strategy) in [
        ("contrand(d=2)", RoutingStrategy::ContRand { subgroups: 2 }),
        ("adaptive(d0=2)", RoutingStrategy::Adaptive { subgroups: 2 }),
    ] {
        let mut cfg = engine_config(
            strategy,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(5_000),
            units,
            units,
            ctx.seed,
        );
        cfg.punctuation_interval_ms = 10;
        let mut pcfg = PipelineConfig::new(cfg);
        pcfg.auditor = Some(Auditor::new());
        let pipe = Pipeline::launch(pcfg).expect("launch");
        let t0 = pipe.now();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(ctx.seed);
        for _ in 0..pairs {
            let now = pipe.now();
            let key = shift.sample_at(&mut rng, now.saturating_sub(t0)) as i64;
            pipe.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(key)])).expect("ingest");
            pipe.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(key)])).expect("ingest");
        }
        let switches = pipe
            .adaptive_state()
            .map(|a| a.switches().to_string())
            .unwrap_or_else(|| "-".to_string());
        let report = pipe.finish().expect("finish");
        let thr =
            report.snapshot.ingested as f64 / (report.elapsed_ms.max(1) as f64 / 1_000.0);
        let audit = report
            .auditor
            .as_ref()
            .map(|a| a.finish().len().to_string())
            .unwrap_or_else(|| "-".to_string());
        table.row(vec![
            name.to_string(),
            f(thr, 0),
            f(report.snapshot.copies_per_tuple(), 2),
            report.snapshot.results.to_string(),
            switches,
            audit,
        ]);
    }
    table.emit("e5_adaptive_live");
}

/// Run E5.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 3_000 } else { 10_000 };
    let units = 8usize;
    stationary_sweep(ctx, horizon_ms, units);
    // The ablation needs at least a few rotations; keep four periods in
    // both modes (quick: 4×1500 ms, full: 4×2500 ms at 1000 t/s/side).
    let ablation_horizon = if ctx.quick { 6_000 } else { 10_000 };
    shifting_ablation(ctx, ablation_horizon, units);
    live_ablation(ctx, units);
}
