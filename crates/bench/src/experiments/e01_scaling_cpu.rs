//! **E1 — Dynamic scaling on CPU utilization** (thesis Fig. 20).
//!
//! A 60-minute run of the equi-join workload whose per-relation rate
//! steps 300 → 400 (10') → 200 (40') → 300 (50') t/s, over a 10-minute
//! window, with one joiner per side initially. The Kubernetes-style HPA
//! targets 80 % mean CPU with 1–3 replicas per side. Expected shape (per
//! the source figure): the opening 300 t/s drives one joiner far above
//! target (≈ 145 %) so a second pod launches immediately; the 400 t/s
//! step adds a third; the 200 t/s step eventually releases pods; the
//! closing 300 t/s stabilises near target.

use super::common::engine_config;
use super::ExpCtx;
use crate::feed::ProfileFeed;
use crate::report::{f, Table};
use bistream_cluster::{CostModel, HpaConfig};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::{run_dynamic_scaling, SimConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::time::{Ts, MINUTE};
use bistream_types::window::WindowSpec;
use bistream_workload::schedule::RateSchedule;

/// Run E1.
pub fn run(ctx: &ExpCtx) {
    // Quick mode compresses the hour to 6 minutes of virtual time (the
    // window and HPA periods compress with it).
    let scale = if ctx.quick { 0.1 } else { 1.0 };
    let duration = (60.0 * MINUTE as f64 * scale) as Ts;
    let window = (10.0 * MINUTE as f64 * scale) as Ts;

    let mut cfg = engine_config(
        RoutingStrategy::Random,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(window),
        1,
        1,
        ctx.seed,
    );
    // Punctuate sparsely: the hour-long horizon doesn't need 20 ms
    // punctuation granularity and the run is dominated by it otherwise.
    cfg.punctuation_interval_ms = 200;
    let engine = BicliqueEngine::builder(cfg)
        .cost_model(CostModel::thesis_operating_point())
        .build()
        .expect("valid config");

    let mut hpa = HpaConfig::thesis_cpu();
    hpa.period_ms = (hpa.period_ms as f64 * scale) as Ts;
    hpa.scale_down_stabilization_ms = (hpa.scale_down_stabilization_ms as f64 * scale) as Ts;

    let sim = SimConfig {
        duration_ms: duration,
        sample_interval_ms: (MINUTE as f64 * scale) as Ts,
        scale_r: true,
        scale_s: true,
        // Pods boot in ~15 s on the thesis cluster (image pull + JVM).
        pod_startup_delay_ms: 15_000,
        ..Default::default()
    };
    let mut feed_profile =
        ProfileFeed::new(RateSchedule::thesis_profile(), scale, duration, 100_000, 0);
    let out = run_dynamic_scaling(engine, &mut feed_profile, hpa, &sim).expect("simulation runs");

    if let Some(path) = &ctx.metrics_out {
        super::dump_metrics(path, &out.metric_series, &out.events);
    }

    let mut table = Table::new(
        "E1: dynamic scaling on CPU utilization (thesis Fig. 20)",
        &["t_min", "rate_t/s", "R_pods", "S_pods", "R_cpu%", "S_cpu%", "results"],
    );
    for s in &out.samples {
        table.row(vec![
            f(s.t_ms as f64 / MINUTE as f64 / scale, 0),
            f(s.ingest_rate / 2.0, 0), // per relation
            s.r_replicas.to_string(),
            s.s_replicas.to_string(),
            f(s.r_cpu * 100.0, 0),
            f(s.s_cpu * 100.0, 0),
            s.results.to_string(),
        ]);
    }
    table.emit("e1_scaling_cpu");

    let mut events = Table::new("E1: scale events", &["t_min", "side", "before", "after"]);
    for (t, side, before, after) in &out.scale_events {
        events.row(vec![
            f(*t as f64 / MINUTE as f64 / scale, 1),
            side.to_string(),
            before.to_string(),
            after.to_string(),
        ]);
    }
    events.emit("e1_scale_events");
}
