//! **E11 — Per-tuple communication cost: measured vs. analytic**
//! (reconstructed from the model-comparison analysis, Sec. 2.4.1 of the
//! source text).
//!
//! For `p` total units the analytic per-tuple fan-outs are:
//!
//! | organisation        | copies per tuple      |
//! |---------------------|-----------------------|
//! | biclique + random   | `1 + p/2`             |
//! | biclique + hash     | `2`                   |
//! | biclique + ContRand | `1 + p/(2d)`          |
//! | matrix (√p × √p)    | `√p`                  |
//!
//! The experiment measures each configuration's copies-per-tuple counter
//! and prints it next to the analytic value — they must agree exactly
//! (the counters are the routing fan-out, not an approximation).

use super::common::{drive_engine, drive_matrix, engine_config, feed};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::window::WindowSpec;

/// Run E11.
pub fn run(ctx: &ExpCtx) {
    let horizon_ms: u64 = if ctx.quick { 1_000 } else { 4_000 };
    let window = WindowSpec::sliding(1_000);
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };

    let mut table = Table::new(
        "E11: communication cost — measured vs analytic copies per tuple",
        &["p", "organisation", "measured", "analytic"],
    );

    for &p in &[4usize, 16, 64] {
        let m = p / 2;
        let configs: Vec<(String, RoutingStrategy, f64)> = vec![
            ("biclique random".into(), RoutingStrategy::Random, 1.0 + m as f64),
            ("biclique hash".into(), RoutingStrategy::Hash, 2.0),
            (
                "biclique contrand(d=2)".into(),
                RoutingStrategy::ContRand { subgroups: 2 },
                1.0 + m as f64 / 2.0,
            ),
        ];
        for (name, routing, analytic) in configs {
            let cfg = engine_config(routing, predicate.clone(), window, m, m, ctx.seed);
            let mut engine = BicliqueEngine::new(cfg).expect("valid");
            let mut f1 = feed(500.0, 10_000, None, 0, ctx.seed, horizon_ms);
            drive_engine(&mut engine, &mut f1).expect("runs");
            table.row(vec![
                p.to_string(),
                name,
                f(engine.stats().copies_per_tuple(), 2),
                f(analytic, 2),
            ]);
        }

        let side = (p as f64).sqrt() as usize;
        let mcfg = MatrixConfig {
            rows: side,
            cols: side,
            predicate: predicate.clone(),
            window,
            archive_period_ms: 100,
            seed: ctx.seed,
        };
        let mut matrix = JoinMatrix::new(mcfg).expect("valid");
        let mut f2 = feed(500.0, 10_000, None, 0, ctx.seed, horizon_ms);
        drive_matrix(&mut matrix, &mut f2).expect("runs");
        table.row(vec![
            p.to_string(),
            "matrix".into(),
            f(matrix.stats().copies_per_tuple(), 2),
            f((p as f64).sqrt(), 2),
        ]);
    }
    table.emit("e11_communication");
}
