//! **E2 — Dynamic scaling on memory load** (thesis Fig. 21).
//!
//! Same 60-minute rate profile as E1 (300→400→200→300 t/s per relation,
//! 10-minute window), but the HPA targets **memory**: 85 % of a per-pod
//! limit (the thesis tuned its JVMs so the trigger sat at ≈ 520 MB).
//! Per-tuple payload inflates the window state so memory — not CPU — is
//! the binding resource. Expected shape: memory climbs for one window
//! length then plateaus (expiry balances arrivals); the 400 t/s step
//! pushes the mean past the trigger and a second joiner spawns, halving
//! the per-pod accumulation rate; the rate drops let pods retire after
//! the stabilization window.
//!
//! The memory axis is scaled 1:4 against the thesis hardware (153 MB
//! limit instead of 612 MB, 640 B payloads) so the simulation does not
//! allocate gigabytes; the *shape* is scale-free.

use super::common::engine_config;
use super::ExpCtx;
use crate::feed::ProfileFeed;
use crate::report::{f, mib, Table};
use bistream_cluster::{CostModel, HpaConfig, MetricTarget};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::{run_dynamic_scaling, SimConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::time::{Ts, MINUTE};
use bistream_types::window::WindowSpec;
use bistream_workload::schedule::RateSchedule;

/// Run E2.
pub fn run(ctx: &ExpCtx) {
    let scale = if ctx.quick { 0.1 } else { 1.0 };
    let duration = (60.0 * MINUTE as f64 * scale) as Ts;
    let window = (10.0 * MINUTE as f64 * scale) as Ts;
    // 1:4 thesis scale; quick mode also shrinks tuples with the horizon.
    let limit_bytes: u64 = (153.0 * 1024.0 * 1024.0 * scale) as u64;
    let payload_bytes = 640;

    let mut cfg = engine_config(
        RoutingStrategy::Random,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(window),
        1,
        1,
        ctx.seed,
    );
    cfg.punctuation_interval_ms = 200;
    let engine = BicliqueEngine::builder(cfg)
        .cost_model(CostModel::default()) // CPU must NOT be the trigger here
        .build()
        .expect("valid config");

    let hpa = HpaConfig {
        min_replicas: 1,
        max_replicas: 3,
        target: MetricTarget::MemoryUtilization { fraction: 0.85, limit_bytes },
        period_ms: (30_000.0 * scale) as Ts,
        tolerance: 0.1,
        scale_down_stabilization_ms: (5.0 * MINUTE as f64 * scale) as Ts,
    };

    let sim = SimConfig {
        duration_ms: duration,
        sample_interval_ms: (MINUTE as f64 * scale) as Ts,
        scale_r: true,
        scale_s: true,
        // Pods boot in ~15 s on the thesis cluster (image pull + JVM).
        pod_startup_delay_ms: 15_000,
        ..Default::default()
    };
    let mut feed =
        ProfileFeed::new(RateSchedule::thesis_profile(), scale, duration, 100_000, payload_bytes);
    let out = run_dynamic_scaling(engine, &mut feed, hpa, &sim).expect("simulation runs");

    let mut table = Table::new(
        format!(
            "E2: dynamic scaling on memory load (thesis Fig. 21; limit {} MiB, trigger 85%)",
            mib(limit_bytes)
        ),
        &["t_min", "rate_t/s", "R_pods", "S_pods", "R_mem_MiB", "S_mem_MiB", "results"],
    );
    for s in &out.samples {
        table.row(vec![
            f(s.t_ms as f64 / MINUTE as f64 / scale, 0),
            f(s.ingest_rate / 2.0, 0),
            s.r_replicas.to_string(),
            s.s_replicas.to_string(),
            mib(s.r_mem_mean),
            mib(s.s_mem_mean),
            s.results.to_string(),
        ]);
    }
    table.emit("e2_scaling_memory");

    let mut events = Table::new("E2: scale events", &["t_min", "side", "before", "after"]);
    for (t, side, before, after) in &out.scale_events {
        events.row(vec![
            f(*t as f64 / MINUTE as f64 / scale, 1),
            side.to_string(),
            before.to_string(),
            after.to_string(),
        ]);
    }
    events.emit("e2_scale_events");
}
