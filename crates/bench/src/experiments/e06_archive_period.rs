//! **E6 — Archive-period sweep for the chained index** (reconstructed:
//! the chained-index design evaluation), plus the single-index ablation.
//!
//! One joiner's storage, driven directly: insert a window's worth of
//! keyed tuples interleaved with probes and expiry, sweeping the archive
//! period `P` from `W/256` up to `W`. Reported: wall time (real
//! microbench), peak sub-index count, and peak accounted memory. The
//! naive single-index with per-tuple eviction runs as the ablation
//! baseline. Expected shape: tiny `P` pays per-sub-index overhead (many
//! chain links to walk); `P` near `W` holds expired tuples up to one
//! extra period (memory overshoot); the sweet spot sits in between — and
//! every chained configuration beats per-tuple eviction on discard cost.

use super::ExpCtx;
use crate::report::{f, mib, Table};
use bistream_index::{ChainedIndex, IndexKind, NaiveWindowIndex};
use bistream_types::predicate::ProbePlan;
use bistream_types::rel::Rel;
use bistream_types::time::Stopwatch;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;

const WINDOW_MS: Ts = 4_000;

struct SweepResult {
    wall_ms: f64,
    peak_sub_indexes: usize,
    peak_bytes: usize,
    matches: u64,
}

fn drive_chained(period: Ts, tuples: usize, n_keys: i64) -> SweepResult {
    let mut index = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW_MS), period);
    let started = Stopwatch::start();
    let mut peak_sub = 0usize;
    let mut peak_bytes = 0usize;
    let mut matches = 0u64;
    for i in 0..tuples {
        let ts = i as Ts; // 1 tuple/ms
        let key = Value::Int(i as i64 % n_keys);
        index.insert(key.clone(), Tuple::new(Rel::R, ts, vec![key.clone()]));
        // Opposite-side arrival: expire + probe.
        index.expire(ts);
        index.probe(&ProbePlan::ExactKey(key), ts, |_| matches += 1);
        let stats = index.stats();
        peak_sub = peak_sub.max(stats.sub_indexes);
        peak_bytes = peak_bytes.max(stats.bytes);
    }
    SweepResult {
        wall_ms: started.elapsed_ms_f64(),
        peak_sub_indexes: peak_sub,
        peak_bytes,
        matches,
    }
}

fn drive_naive(tuples: usize, n_keys: i64) -> SweepResult {
    let mut index = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW_MS));
    let started = Stopwatch::start();
    let mut peak_bytes = 0usize;
    let mut matches = 0u64;
    for i in 0..tuples {
        let ts = i as Ts;
        let key = Value::Int(i as i64 % n_keys);
        index.insert(key.clone(), Tuple::new(Rel::R, ts, vec![key.clone()]));
        index.expire(ts);
        index.probe(&ProbePlan::ExactKey(key), ts, |_| matches += 1);
        peak_bytes = peak_bytes.max(index.bytes());
    }
    SweepResult { wall_ms: started.elapsed_ms_f64(), peak_sub_indexes: 1, peak_bytes, matches }
}

/// Run E6.
///
/// Two key-duplication regimes are swept. Measured outcome (recorded in
/// EXPERIMENTS.md): under *steady* tuple-at-a-time eviction the naive
/// index is actually the fastest — per-tuple hash removal is cheap in
/// Rust — and the chained index approaches it as `P` grows (small `P`
/// pays per-link probe overhead). The chained design's real win is the
/// E6b burst test: discarding a full window in one arrival costs the
/// naive index a per-tuple O(window) maintenance storm (a latency
/// spike), while the chained index drops a handful of links — an order
/// of magnitude difference. This matches the paper's motivation: the
/// chain bounds the *worst case* of discarding, it is not a steady-state
/// speed-up.
pub fn run(ctx: &ExpCtx) {
    let tuples = if ctx.quick { 40_000 } else { 400_000 };

    let mut table = Table::new(
        "E6: archive period P sweep (window 4s, 1 tuple/ms, chained vs naive index)",
        &["n_keys", "P_ms", "wall_ms", "peak_subindexes", "peak_MiB", "matches"],
    );
    for &n_keys in &[16i64, 1_000] {
        for &period in &[WINDOW_MS / 256, WINDOW_MS / 64, WINDOW_MS / 16, WINDOW_MS / 4, WINDOW_MS]
        {
            let r = drive_chained(period, tuples, n_keys);
            table.row(vec![
                n_keys.to_string(),
                period.to_string(),
                f(r.wall_ms, 1),
                r.peak_sub_indexes.to_string(),
                mib(r.peak_bytes as u64),
                r.matches.to_string(),
            ]);
        }
        let naive = drive_naive(tuples, n_keys);
        table.row(vec![
            n_keys.to_string(),
            "naive".into(),
            f(naive.wall_ms, 1),
            naive.peak_sub_indexes.to_string(),
            mib(naive.peak_bytes as u64),
            naive.matches.to_string(),
        ]);
    }
    table.emit("e6_archive_period");

    // The design's headline case: a *burst* discard. Fill a full window,
    // then let a single far-future opposite-side tuple expire all of it
    // in one call. The naive index removes every tuple individually
    // (O(window) hash maintenance inside one arrival — a latency spike);
    // the chained index dereferences a handful of sub-indexes.
    let fill = if ctx.quick { 100_000usize } else { 1_000_000 };
    let mut burst = Table::new(
        "E6b: burst discard of a full window (single arrival expires everything)",
        &["index", "tuples_expired", "discard_µs"],
    );
    for &(label, period) in &[("chained P=W/16", WINDOW_MS / 16), ("chained P=W/4", WINDOW_MS / 4)]
    {
        let mut index = ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW_MS), period);
        for i in 0..fill {
            let ts = (i as Ts * WINDOW_MS) / fill as Ts;
            let key = Value::Int(i as i64 % 1_000);
            index.insert(key.clone(), Tuple::new(Rel::R, ts, vec![key]));
        }
        let started = Stopwatch::start();
        let dropped = index.expire(10 * WINDOW_MS);
        burst.row(vec![label.to_string(), dropped.to_string(), f(started.elapsed_us_f64(), 0)]);
    }
    {
        let mut index = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW_MS));
        for i in 0..fill {
            let ts = (i as Ts * WINDOW_MS) / fill as Ts;
            let key = Value::Int(i as i64 % 1_000);
            index.insert(key.clone(), Tuple::new(Rel::R, ts, vec![key]));
        }
        let started = Stopwatch::start();
        let dropped = index.expire(10 * WINDOW_MS);
        burst.row(vec!["naive".into(), dropped.to_string(), f(started.elapsed_us_f64(), 0)]);
    }
    burst.emit("e6b_burst_discard");
}
