//! **E9 — Elastic scale-out/in without migration** (reconstructed: the
//! BiStream elasticity evaluation).
//!
//! A steady equi-join run in which the R side scales 2 → 4 mid-run and
//! back 4 → 2 later. Per second we sample the result rate and the
//! communication cost; the migration column reports bytes moved by the
//! scaling operation — identically zero for the biclique (old state
//! expires in place; joins keep covering it via draining/historical
//! routing), versus the full live-state reinstall the join-matrix must
//! perform for the same transition. The result-rate column demonstrates
//! that correctness and output continuity hold through both transitions.

use super::common::{engine_config, feed};
use super::ExpCtx;
use crate::report::{f, Table};
use bistream_core::config::RoutingStrategy;
use bistream_core::engine::BicliqueEngine;
use bistream_core::sim::TupleFeed;
use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::time::{Ts, SECOND};
use bistream_types::window::WindowSpec;

/// Run E9.
pub fn run(ctx: &ExpCtx) {
    let horizon_s: u64 = if ctx.quick { 10 } else { 20 };
    let rate = 800.0;
    let window = WindowSpec::sliding(2 * SECOND);
    let predicate = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    let scale_out_at = (horizon_s / 4) * SECOND;
    let scale_in_at = (3 * horizon_s / 4) * SECOND;

    let cfg = engine_config(
        RoutingStrategy::ContRand { subgroups: 2 },
        predicate.clone(),
        window,
        2,
        2,
        ctx.seed,
    );
    let mut engine = BicliqueEngine::new(cfg).expect("valid");
    let mut f1 = feed(rate, 5_000, None, 0, ctx.seed, horizon_s * SECOND);

    let mut table = Table::new(
        "E9: biclique elastic scaling timeline (R side 2→4→2, zero migration)",
        &["t_s", "r_units", "draining", "results/s", "copies/tuple", "migrated_bytes"],
    );
    let punct = 20u64;
    let mut next_punct = punct;
    let mut next_sample = SECOND;
    let mut last_results = 0u64;
    let mut scaled_out = false;
    let mut scaled_in = false;
    while let Some(t) = f1.peek_ts() {
        while next_punct <= t {
            engine.punctuate(next_punct).expect("punctuate");
            next_punct += punct;
        }
        if !scaled_out && t >= scale_out_at {
            engine.scale_to(Rel::R, 4, t).expect("scale out");
            scaled_out = true;
        }
        if !scaled_in && t >= scale_in_at {
            engine.scale_to(Rel::R, 2, t).expect("scale in");
            scaled_in = true;
        }
        if t >= next_sample {
            let snap = engine.stats();
            table.row(vec![
                (next_sample / SECOND).to_string(),
                engine.replicas(Rel::R).to_string(),
                engine.draining_units().to_string(),
                (snap.results - last_results).to_string(),
                f(snap.copies_per_tuple(), 2),
                "0".into(),
            ]);
            last_results = snap.results;
            next_sample += SECOND;
        }
        let tuple = f1.next_tuple().expect("peeked");
        engine.ingest(&tuple, t).expect("ingest");
    }
    engine.flush().expect("flush");
    table.emit("e9_biclique_timeline");

    // Matrix counterpart: the same logical transition (grow the grid by
    // one row, then shrink back) costs a live-state migration each time.
    let mcfg = MatrixConfig {
        rows: 2,
        cols: 2,
        predicate,
        window,
        archive_period_ms: 100,
        seed: ctx.seed,
    };
    let mut matrix = JoinMatrix::new(mcfg).expect("valid");
    let mut f2 = feed(rate, 5_000, None, 0, ctx.seed, horizon_s * SECOND);
    let mut out_report = None;
    let mut in_report = None;
    while let Some(tuple) = f2.next_tuple() {
        let t: Ts = tuple.ts();
        if out_report.is_none() && t >= scale_out_at {
            out_report = Some(matrix.resize(3, 2).expect("resize"));
        }
        if in_report.is_none() && t >= scale_in_at {
            in_report = Some(matrix.resize(2, 2).expect("resize"));
        }
        matrix.ingest(&tuple, t).expect("ingest");
    }
    let out_r = out_report.expect("scaled out");
    let in_r = in_report.expect("scaled in");
    let mut mtable = Table::new(
        "E9b: matrix resize migration cost for the same transitions",
        &["transition", "tuples_moved", "bytes_moved", "cells_added", "cells_removed"],
    );
    mtable.row(vec![
        "2x2 -> 3x2".into(),
        out_r.tuples_moved.to_string(),
        out_r.bytes_moved.to_string(),
        out_r.cells_added.to_string(),
        out_r.cells_removed.to_string(),
    ]);
    mtable.row(vec![
        "3x2 -> 2x2".into(),
        in_r.tuples_moved.to_string(),
        in_r.bytes_moved.to_string(),
        in_r.cells_added.to_string(),
        in_r.cells_removed.to_string(),
    ]);
    mtable.emit("e9b_matrix_migration");
}
