//! Micro-benchmarks for the chained in-memory index, including the
//! ablations DESIGN.md calls out: chained vs naive (single-index,
//! per-tuple eviction) and hash vs ordered sub-index flavours.

use bistream_index::{ChainedIndex, IndexKind, NaiveWindowIndex};
use bistream_types::predicate::ProbePlan;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use std::ops::Bound;

const WINDOW: Ts = 10_000;
const PERIOD: Ts = 500;
const N: usize = 20_000;
const KEYS: i64 = 1_000;

fn tuple(i: usize) -> (Value, Tuple) {
    let key = Value::Int(i as i64 % KEYS);
    (key.clone(), Tuple::new(Rel::R, i as Ts, vec![key]))
}

fn filled_chained(kind: IndexKind, period: Ts) -> ChainedIndex {
    let mut ix = ChainedIndex::new(kind, WindowSpec::sliding(WINDOW), period);
    for i in 0..N {
        let (k, t) = tuple(i);
        ix.insert(k, t);
    }
    ix
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_insert_1k");
    g.bench_function("chained_hash", |b| {
        b.iter_batched(
            || ChainedIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW), PERIOD),
            |mut ix| {
                for i in 0..1_000 {
                    let (k, t) = tuple(i);
                    ix.insert(k, t);
                }
                ix
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("chained_ordered", |b| {
        b.iter_batched(
            || ChainedIndex::new(IndexKind::Ordered, WindowSpec::sliding(WINDOW), PERIOD),
            |mut ix| {
                for i in 0..1_000 {
                    let (k, t) = tuple(i);
                    ix.insert(k, t);
                }
                ix
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("naive_hash", |b| {
        b.iter_batched(
            || NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW)),
            |mut ix| {
                for i in 0..1_000 {
                    let (k, t) = tuple(i);
                    ix.insert(k, t);
                }
                ix
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_probe");
    let hash = filled_chained(IndexKind::Hash, PERIOD);
    g.bench_function("chained_hash_exact", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            hash.probe(&ProbePlan::ExactKey(Value::Int(7)), N as Ts, |_| hits += 1);
            black_box(hits)
        })
    });
    let ordered = filled_chained(IndexKind::Ordered, PERIOD);
    let range = ProbePlan::Range {
        lo: Bound::Included(Value::Int(100)),
        hi: Bound::Included(Value::Int(110)),
    };
    g.bench_function("chained_ordered_range", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            ordered.probe(&range, N as Ts, |_| hits += 1);
            black_box(hits)
        })
    });
    // Single monolithic index ablation: everything in one sub-index.
    let mono = filled_chained(IndexKind::Hash, Ts::MAX / 2);
    g.bench_function("monolithic_hash_exact_ablation", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            mono.probe(&ProbePlan::ExactKey(Value::Int(7)), N as Ts, |_| hits += 1);
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_expire(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_expire_full_window");
    g.bench_function("chained", |b| {
        b.iter_batched(
            || filled_chained(IndexKind::Hash, PERIOD),
            |mut ix| black_box(ix.expire(10 * WINDOW)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("naive_per_tuple", |b| {
        b.iter_batched(
            || {
                let mut ix = NaiveWindowIndex::new(IndexKind::Hash, WindowSpec::sliding(WINDOW));
                for i in 0..N {
                    let (k, t) = tuple(i);
                    ix.insert(k, t);
                }
                ix
            },
            |mut ix| black_box(ix.expire(10 * WINDOW)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insert, bench_probe, bench_expire
}
criterion_main!(benches);
