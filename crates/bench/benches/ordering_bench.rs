//! Micro-benchmarks for the order-consistent protocol: reorder-buffer
//! throughput and the joiner-level cost of running with the protocol on
//! vs off (the exactly-once tax).

use bistream_cluster::CostModel;
use bistream_core::joiner::JoinerCore;
use bistream_core::layout::JoinerId;
use bistream_core::ordering::ReorderBuffer;
use bistream_types::predicate::JoinPredicate;
use bistream_types::punct::{Punctuation, Purpose, StreamMessage};
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn data(seq: u64, k: i64) -> StreamMessage {
    StreamMessage::Data {
        router: 0,
        seq,
        purpose: Purpose::Store,
        tuple: Tuple::new(Rel::R, seq, vec![Value::Int(k)]),
    }
}

fn bench_reorder_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorder_buffer");
    // Buffer 1000 data messages then release them with one punctuation.
    g.bench_function("offer_1k_release_on_punct", |b| {
        b.iter_batched(
            || {
                let mut buf = ReorderBuffer::new();
                buf.register_router(0, 0);
                buf
            },
            |mut buf| {
                let mut out = Vec::with_capacity(1_000);
                for seq in 1..=1_000u64 {
                    buf.offer(data(seq, seq as i64), &mut out);
                }
                buf.offer(StreamMessage::Punct(Punctuation { router: 0, seq: 1_000 }), &mut out);
                black_box(out.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn joiner(ordering: bool) -> JoinerCore {
    JoinerCore::new(
        JoinerId(0),
        Rel::R,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(5_000),
        250,
        ordering,
        &[(0, 0)],
        CostModel::default(),
    )
}

fn bench_joiner_protocol_tax(c: &mut Criterion) {
    let mut g = c.benchmark_group("joiner_protocol_tax");
    for (name, ordering) in [("ordering_on", true), ("ordering_off", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || joiner(ordering),
                |mut j| {
                    let mut results = 0u64;
                    for seq in 1..=500u64 {
                        let purpose = if seq % 2 == 0 { Purpose::Join } else { Purpose::Store };
                        let rel = if purpose == Purpose::Store { Rel::R } else { Rel::S };
                        let msg = StreamMessage::Data {
                            router: 0,
                            seq,
                            purpose,
                            tuple: Tuple::new(rel, seq, vec![Value::Int((seq as i64) % 50)]),
                        };
                        j.handle(msg, &mut |_| results += 1).unwrap();
                        if ordering && seq % 20 == 0 {
                            j.handle(
                                StreamMessage::Punct(Punctuation { router: 0, seq }),
                                &mut |_| results += 1,
                            )
                            .unwrap();
                        }
                    }
                    j.flush(&mut |_| results += 1).unwrap();
                    black_box(results)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_reorder_buffer, bench_joiner_protocol_tax
}
criterion_main!(benches);
