//! Micro-benchmarks for the AMQP-model broker substrate: routing-table
//! evaluation, publish→consume round-trips per exchange kind, and topic
//! pattern matching (the ablation axis for queue bounds lives in
//! pipeline_bench where backpressure matters).

use bistream_broker::{Broker, ExchangeKind, Message};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn roundtrip(kind: ExchangeKind, pattern: &str, key: &str) -> (Broker, bistream_broker::Consumer) {
    let b = Broker::new();
    b.declare_exchange("x", kind).unwrap();
    b.declare_queue("q", 1_024).unwrap();
    b.bind("x", "q", pattern).unwrap();
    let c = b.subscribe("q").unwrap();
    // Warm the route once so declaration cost is out of the loop.
    b.publish("x", Message::new(key, vec![0u8])).unwrap();
    c.try_recv().unwrap();
    (b, c)
}

fn bench_publish_consume(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_publish_consume");
    let payload = vec![0u8; 64];
    for (name, kind, pattern, key) in [
        ("direct", ExchangeKind::Direct, "k", "k"),
        ("topic_literal", ExchangeKind::Topic, "a.b.c", "a.b.c"),
        ("topic_wildcard", ExchangeKind::Topic, "a.*.#", "a.b.c.d"),
        ("fanout", ExchangeKind::Fanout, "", "k"),
    ] {
        let (broker, consumer) = roundtrip(kind, pattern, key);
        g.bench_function(name, |b| {
            b.iter(|| {
                broker.publish("x", Message::new(key, payload.clone())).unwrap();
                black_box(consumer.try_recv().unwrap())
            })
        });
    }
    g.finish();
}

fn bench_fanout_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_fanout_width");
    for width in [1usize, 8, 32] {
        let b = Broker::new();
        b.declare_exchange("x", ExchangeKind::Fanout).unwrap();
        let mut consumers = Vec::new();
        for i in 0..width {
            let q = format!("q{i}");
            b.declare_queue(&q, 1_024).unwrap();
            b.bind("x", &q, "").unwrap();
            consumers.push(b.subscribe(&q).unwrap());
        }
        g.bench_function(format!("width_{width}"), |bench| {
            bench.iter(|| {
                b.publish("x", Message::new("k", vec![0u8; 32])).unwrap();
                for c in &consumers {
                    black_box(c.try_recv().unwrap());
                }
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_publish_consume, bench_fanout_width
}
criterion_main!(benches);
