//! Micro-benchmarks for the observability layer: the hot-path cost of a
//! registered counter bump / histogram record against the unregistered
//! primitives, plus the scrape cost at a realistic registry size.
//!
//! Registration must be (nearly) free per-event — handles are plain
//! `Arc<Counter>` / `Arc<Histogram>` and the registry lock is only taken
//! at registration and scrape time, so the registered and unregistered
//! rows should be indistinguishable.

use bistream_types::metrics::{Counter, Histogram};
use bistream_types::registry::{MetricsRegistry, RegistrySnapshot};
use bistream_types::telemetry::TextExporter;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_counter");
    let bare = Counter::shared();
    g.bench_function("bump_unregistered", |b| {
        b.iter(|| {
            bare.inc();
            black_box(())
        })
    });
    let reg = MetricsRegistry::new();
    let registered = reg.counter("bistream_bench_counter", &[("joiner", "R0")]);
    g.bench_function("bump_registered", |b| {
        b.iter(|| {
            registered.inc();
            black_box(())
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_histogram");
    let bare = Histogram::shared();
    let mut v = 0u64;
    g.bench_function("record_unregistered", |b| {
        b.iter(|| {
            v = v.wrapping_add(7) % 10_000;
            bare.record(v);
            black_box(())
        })
    });
    let reg = MetricsRegistry::new();
    let registered = reg.histogram("bistream_bench_latency_ms", &[("joiner", "R0")]);
    g.bench_function("record_registered", |b| {
        b.iter(|| {
            v = v.wrapping_add(7) % 10_000;
            registered.record(v);
            black_box(())
        })
    });
    g.finish();
}

fn bench_scrape(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_scrape");
    // A registry the size of a mid-size deployment: 16 joiners × 8 series
    // + 4 routers × 4 series + 20 queues × 5 series ≈ 250 keys.
    let reg = MetricsRegistry::new();
    let mut handles: Vec<Arc<Counter>> = Vec::new();
    for j in 0..16 {
        let joiner = format!("R{j}");
        for series in ["stored", "probes", "candidates", "results", "expired"] {
            let name = format!("bistream_joiner_{series}_total");
            handles.push(reg.counter(&name, &[("joiner", &joiner)]));
        }
        reg.gauge("bistream_joiner_stored_tuples", &[("joiner", &joiner)]);
        reg.gauge("bistream_joiner_frontier_lag", &[("joiner", &joiner)]);
        reg.histogram("bistream_joiner_result_latency_ms", &[("joiner", &joiner)]).record(j as u64);
    }
    for r in 0..4 {
        let router = format!("r{r}");
        for series in ["route_decisions", "copies", "punctuations", "tuples"] {
            let name = format!("bistream_router_{series}_total");
            handles.push(reg.counter(&name, &[("router", &router), ("strategy", "hash")]));
        }
    }
    for q in 0..20 {
        let queue = format!("unit.{q}");
        for series in ["published", "delivered", "redelivered", "blocks", "acks"] {
            let name = format!("bistream_queue_{series}_total");
            handles.push(reg.counter(&name, &[("queue", &queue)]));
        }
    }
    for h in &handles {
        h.add(3);
    }
    g.bench_function(format!("scrape_{}_series", reg.len()), |b| {
        b.iter(|| black_box(reg.scrape(42).samples.len()))
    });
    // Allocation-churn fix: the reused snapshot keeps its samples Vec, so
    // steady-state scraping only clones the Arc'd keys — this row should
    // beat `scrape_*_series` once the buffer has warmed up.
    let mut snap = RegistrySnapshot::default();
    g.bench_function("scrape_into_reused_snapshot", |b| {
        b.iter(|| {
            reg.scrape_into(42, &mut snap);
            black_box(snap.samples.len())
        })
    });
    g.bench_function("prometheus_text", |b| b.iter(|| black_box(reg.prometheus_text(42).len())));
    // Same discipline for the exporter: one buffer reused across renders.
    let mut exporter = TextExporter::new();
    g.bench_function("exporter_reused_buffer", |b| {
        b.iter(|| black_box(exporter.render(&reg, 42).len()))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_counter, bench_histogram, bench_scrape
}
criterion_main!(benches);
