//! Micro-benchmarks for the join-matrix baseline: per-tuple ingest cost
//! across grid sizes (the replication tax) and the resize migration.

use bistream_matrix::{JoinMatrix, MatrixConfig};
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn config(n: usize) -> MatrixConfig {
    MatrixConfig::square(
        n,
        JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
        WindowSpec::sliding(5_000),
    )
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix_ingest_1k_pairs");
    for n in [2usize, 4, 8] {
        g.bench_function(format!("{n}x{n}"), |b| {
            b.iter_batched(
                || JoinMatrix::new(config(n)).unwrap(),
                |mut m| {
                    for i in 0..1_000i64 {
                        let ts = i as u64;
                        m.ingest(&Tuple::new(Rel::R, ts, vec![Value::Int(i % 100)]), ts).unwrap();
                        m.ingest(&Tuple::new(Rel::S, ts, vec![Value::Int(i % 100)]), ts).unwrap();
                    }
                    black_box(m.stats().results)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_resize(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix_resize_migration");
    g.bench_function("2x2_to_4x4_with_10k_live", |b| {
        b.iter_batched(
            || {
                let mut m = JoinMatrix::new(config(2)).unwrap();
                for i in 0..10_000i64 {
                    let ts = i as u64;
                    let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
                    m.ingest(&Tuple::new(rel, ts, vec![Value::Int(i % 5_000)]), ts).unwrap();
                }
                m
            },
            |mut m| black_box(m.resize(4, 4).unwrap().tuples_moved),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config_c() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config_c();
    targets = bench_ingest, bench_resize
}
criterion_main!(benches);
