//! End-to-end throughput of the live threaded pipelines (biclique and
//! join-matrix) on small topologies, plus the queue-bound ablation
//! (backpressure point) DESIGN.md calls out.
//!
//! Criterion measures the wall time of pushing a fixed batch through
//! launch→feed→finish; on a single-core host this is a serialised
//! end-to-end cost measurement, not a parallel-scaling claim.

use bistream_core::config::{EngineConfig, RoutingStrategy};
use bistream_core::exec::{Pipeline, PipelineConfig};
use bistream_matrix::exec::{MatrixPipeline, MatrixPipelineConfig};
use bistream_matrix::MatrixConfig;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const PAIRS: usize = 5_000;

fn engine_cfg(routing: RoutingStrategy) -> EngineConfig {
    let mut cfg = EngineConfig::default_equi();
    cfg.routing = routing;
    cfg.window = WindowSpec::sliding(60_000);
    cfg.punctuation_interval_ms = 5;
    cfg
}

fn run_biclique(cfg: PipelineConfig) -> u64 {
    let p = Pipeline::launch(cfg).unwrap();
    for i in 0..PAIRS {
        let now = p.now();
        p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 499)])).unwrap();
        p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 499)])).unwrap();
    }
    p.finish().unwrap().snapshot.results
}

fn bench_live_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("live_pipeline_5k_pairs");
    g.sample_size(10);
    g.bench_function("biclique_hash_2x2", |b| {
        b.iter(|| black_box(run_biclique(PipelineConfig::new(engine_cfg(RoutingStrategy::Hash)))))
    });
    g.bench_function("biclique_random_2x2", |b| {
        b.iter(|| black_box(run_biclique(PipelineConfig::new(engine_cfg(RoutingStrategy::Random)))))
    });
    g.bench_function("matrix_2x2", |b| {
        b.iter(|| {
            let cfg = MatrixPipelineConfig::new(MatrixConfig::square(
                2,
                JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
                WindowSpec::sliding(60_000),
            ));
            let p = MatrixPipeline::launch(cfg).unwrap();
            for i in 0..PAIRS {
                let now = p.now();
                p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64 % 499)])).unwrap();
                p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64 % 499)])).unwrap();
            }
            black_box(p.finish().unwrap().snapshot.results)
        })
    });
    g.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_size_ablation");
    g.sample_size(10);
    for batch in [1usize, 8, 64] {
        g.bench_function(format!("biclique_hash_batch_{batch}"), |b| {
            b.iter(|| {
                let mut engine = engine_cfg(RoutingStrategy::Hash);
                engine.batch_size = batch;
                black_box(run_biclique(PipelineConfig::new(engine)))
            })
        });
    }
    g.finish();
}

fn bench_queue_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_bound_ablation");
    g.sample_size(10);
    for capacity in [256usize, 4_096, 32_768] {
        g.bench_function(format!("unit_capacity_{capacity}"), |b| {
            b.iter(|| {
                let mut cfg = PipelineConfig::new(engine_cfg(RoutingStrategy::Hash));
                cfg.unit_capacity = capacity;
                black_box(run_biclique(cfg))
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_live_pipelines, bench_batch_sizes, bench_queue_bounds
}
criterion_main!(benches);
