//! Micro-benchmarks for the routing core: per-tuple routing decision cost
//! per strategy and layout size, including the ContRand subgroup-count
//! ablation.

use bistream_core::config::RoutingStrategy;
use bistream_core::layout::Layout;
use bistream_core::router::RouterCore;
use bistream_types::predicate::JoinPredicate;
use bistream_types::rel::Rel;
use bistream_types::tuple::Tuple;
use bistream_types::value::Value;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_route");
    let pred = JoinPredicate::Equi { r_attr: 0, s_attr: 0 };
    for (name, strategy, subgroups) in [
        ("random", RoutingStrategy::Random, 1usize),
        ("hash", RoutingStrategy::Hash, 1),
        ("contrand_d2", RoutingStrategy::ContRand { subgroups: 2 }, 2),
        ("contrand_d8", RoutingStrategy::ContRand { subgroups: 8 }, 8),
    ] {
        for units in [8usize, 32] {
            let layout = Layout::new(units, units, subgroups).unwrap();
            let mut router = RouterCore::standalone(0, strategy, pred.clone(), 7);
            let mut out = Vec::with_capacity(units + 1);
            let mut k = 0i64;
            g.bench_function(format!("{name}_{units}x{units}"), |b| {
                b.iter(|| {
                    out.clear();
                    k += 1;
                    let t = Tuple::new(Rel::R, k as u64, vec![Value::Int(k % 10_000)]);
                    router.route(&t, &layout, &mut out).unwrap();
                    black_box(out.len())
                })
            });
        }
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_route
}
criterion_main!(benches);
