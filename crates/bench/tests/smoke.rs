//! Smoke tests keeping the experiment harness honest: every cheap
//! experiment must run to completion in quick mode (the expensive
//! sim/latency ones are exercised by `--quick all` runs and their own
//! crate tests). Runs in a temp dir so `results/` JSON does not litter
//! the workspace.

use bistream_bench::experiments::{self, ExpCtx};

#[test]
fn quick_experiments_run_to_completion() {
    let tmp = std::env::temp_dir().join("bistream-bench-smoke");
    std::fs::create_dir_all(&tmp).unwrap();
    std::env::set_current_dir(&tmp).unwrap();

    let ctx = ExpCtx { quick: true, seed: 7, ..ExpCtx::default() };
    for id in ["e4", "e5", "e9", "e11", "e12", "e13"] {
        assert!(experiments::run(id, &ctx), "experiment {id} unknown");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(!experiments::run("e99", &ExpCtx::default()));
}

#[test]
fn registry_is_complete_and_ordered() {
    assert_eq!(experiments::ALL.first(), Some(&"e1"));
    assert_eq!(experiments::ALL.last(), Some(&"e14"));
    assert_eq!(experiments::ALL.len(), 14);
    // Every listed id dispatches.
    let unique: std::collections::HashSet<_> = experiments::ALL.iter().collect();
    assert_eq!(unique.len(), experiments::ALL.len());
}
