//! Smoke tests keeping the experiment harness honest: every cheap
//! experiment must run to completion in quick mode (the expensive
//! sim/latency ones are exercised by `--quick all` runs and their own
//! crate tests). Runs in a temp dir so `results/` JSON does not litter
//! the workspace.

use bistream_bench::experiments::{self, ExpCtx};

#[test]
fn quick_experiments_run_to_completion() {
    let tmp = std::env::temp_dir().join("bistream-bench-smoke");
    std::fs::create_dir_all(&tmp).unwrap();
    std::env::set_current_dir(&tmp).unwrap();

    let ctx = ExpCtx { quick: true, seed: 7, ..ExpCtx::default() };
    for id in ["e4", "e5", "e9", "e11", "e12", "e13", "e15", "e18"] {
        assert!(experiments::run(id, &ctx), "experiment {id} unknown");
    }
}

#[test]
fn trace_out_writes_valid_chrome_trace_json() {
    let tmp = std::env::temp_dir().join("bistream-bench-smoke-trace");
    std::fs::create_dir_all(&tmp).unwrap();
    std::env::set_current_dir(&tmp).unwrap();
    let path = tmp.join("trace.json");

    let ctx = ExpCtx { quick: true, seed: 7, trace_out: Some(path.clone()), ..ExpCtx::default() };
    assert!(experiments::run("e15", &ctx));

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let hops: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
    assert!(!hops.is_empty(), "no hop events exported");
    // At least one trace is multi-hop: several X events share a tid.
    let multi = hops.iter().any(|e| {
        let tid = &e["tid"];
        hops.iter().filter(|o| &o["tid"] == tid).count() >= 2
    });
    assert!(multi, "no multi-hop trace in the export");
    for e in &hops {
        assert!(e["dur"].as_u64().is_some(), "negative or missing dur: {e}");
        assert!(e["args"]["wait_ms"].as_u64().is_some(), "negative or missing wait: {e}");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(!experiments::run("e99", &ExpCtx::default()));
}

#[test]
fn registry_is_complete_and_ordered() {
    assert_eq!(experiments::ALL.first(), Some(&"e1"));
    assert_eq!(experiments::ALL.last(), Some(&"e18"));
    assert_eq!(experiments::ALL.len(), 18);
    // Every listed id dispatches.
    let unique: std::collections::HashSet<_> = experiments::ALL.iter().collect();
    assert_eq!(unique.len(), experiments::ALL.len());
}
