//! Golden-file tests for the experiment harness's persisted JSON: the
//! key structure under `results/` is a stable interface (plotting
//! scripts and the CI chaos job consume it), so column renames or layout
//! drift must fail a test, not a downstream pipeline.

use bistream_bench::experiments::{self, ExpCtx};

/// Run an experiment in a scratch dir and return its persisted table.
fn run_and_load(id: &str, name: &str) -> serde_json::Value {
    // One shared scratch dir per test binary; every test sets the
    // process-global cwd to the SAME directory, so concurrent #[test]s
    // never race on where `results/` lands (file names are disjoint).
    let tmp = std::env::temp_dir().join("bistream-bench-golden");
    std::fs::create_dir_all(&tmp).unwrap();
    std::env::set_current_dir(&tmp).unwrap();
    let ctx = ExpCtx { quick: true, seed: 7, ..ExpCtx::default() };
    assert!(experiments::run(id, &ctx), "experiment {id} unknown");
    let text = std::fs::read_to_string(tmp.join(format!("results/{name}.json")))
        .unwrap_or_else(|e| panic!("results/{name}.json not written: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("results/{name}.json invalid: {e}"))
}

fn assert_table_shape(doc: &serde_json::Value, name: &str, columns: &[&str]) {
    let obj = doc.as_object().unwrap_or_else(|| panic!("{name}: top level must be an object"));
    let mut keys: Vec<&str> = obj.keys().map(String::as_str).collect();
    keys.sort_unstable();
    assert_eq!(keys, vec!["columns", "rows", "title"], "{name}: top-level keys are frozen");
    let got: Vec<&str> = doc["columns"]
        .as_array()
        .expect("columns array")
        .iter()
        .map(|c| c.as_str().unwrap())
        .collect();
    assert_eq!(got, columns, "{name}: column set/order is frozen");
    let rows = doc["rows"].as_array().expect("rows array");
    assert!(!rows.is_empty(), "{name}: at least one data row");
    for row in rows {
        let row = row.as_array().expect("row is an array");
        assert_eq!(row.len(), columns.len(), "{name}: row arity matches columns");
        assert!(row.iter().all(|v| v.is_string()), "{name}: cells are preformatted strings");
    }
}

#[test]
fn e5_json_shapes_are_stable_and_adaptive_wins_the_shifting_ablation() {
    // One e5 run writes all three tables; load the sweep through the
    // harness and the other two from the same scratch `results/` dir.
    let sweep = run_and_load("e5", "e5_routing_skew");
    assert_table_shape(
        &sweep,
        "e5_routing_skew",
        &["theta", "strategy", "copies/tuple", "imbalance(max/mean)", "results", "switches"],
    );
    let strategies: Vec<String> = sweep["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[1].as_str().unwrap().to_owned())
        .collect();
    assert!(strategies.contains(&"adaptive(d0=2)".to_owned()), "strategies: {strategies:?}");

    let load = |name: &str| -> serde_json::Value {
        let text = std::fs::read_to_string(format!("results/{name}.json"))
            .unwrap_or_else(|e| panic!("results/{name}.json not written: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("results/{name}.json invalid: {e}"))
    };

    let ablation = load("e5_adaptive_ablation");
    assert_table_shape(
        &ablation,
        "e5_adaptive_ablation",
        &["theta", "strategy", "copies/tuple", "peak_imbalance", "results", "switches", "audit"],
    );
    let cell = |row: &serde_json::Value, i: usize| row[i].as_str().unwrap().to_owned();
    let mut contrand_peak = f64::NAN;
    let mut adaptive_peak = f64::NAN;
    for row in ablation["rows"].as_array().unwrap() {
        // Every ablation cell ran with an armed auditor and must be clean.
        assert_eq!(cell(row, 6), "0", "audit violations in {row:?}");
        if cell(row, 0) == "1.20" {
            let peak: f64 = cell(row, 3).parse().unwrap();
            match cell(row, 1).as_str() {
                "contrand(d=2)" => contrand_peak = peak,
                "adaptive(d0=2)" => {
                    adaptive_peak = peak;
                    let switches: u64 = cell(row, 5).parse().unwrap();
                    assert!(switches > 0, "adaptive never re-tuned: {row:?}");
                }
                _ => {}
            }
        }
    }
    assert!(
        adaptive_peak < contrand_peak,
        "adaptive must beat static ContRand under shifting theta=1.2: \
         adaptive {adaptive_peak} vs contrand {contrand_peak}"
    );

    let live = load("e5_adaptive_live");
    assert_table_shape(
        &live,
        "e5_adaptive_live",
        &["strategy", "thr_t/s", "copies/tuple", "results", "switches", "audit"],
    );
    for row in live["rows"].as_array().unwrap() {
        assert_eq!(cell(row, 5), "0", "live audit violations in {row:?}");
        if cell(row, 0).starts_with("adaptive") {
            let switches: u64 = cell(row, 4).parse().unwrap();
            assert!(switches > 0, "live adaptive never re-tuned: {row:?}");
        }
    }
}

#[test]
fn e14_and_e17_json_shapes_are_stable() {
    let e14 = run_and_load("e14", "e14_recovery");
    assert_table_shape(
        &e14,
        "e14_recovery",
        &[
            "mode",
            "stored",
            "snapshot_MiB",
            "snapshot_ms",
            "restore_ms",
            "results",
            "completeness_%",
        ],
    );
    // Both the recovered and the unrecovered control row are present.
    let modes: Vec<String> =
        e14["rows"].as_array().unwrap().iter().map(|r| r[0].as_str().unwrap().to_owned()).collect();
    assert!(modes.contains(&"snapshot+restore".to_owned()), "modes: {modes:?}");
    assert!(modes.contains(&"crash, no recovery".to_owned()), "modes: {modes:?}");

    let e17 = run_and_load("e17", "e17_fault_sweep");
    assert_table_shape(
        &e17,
        "e17_fault_sweep",
        &["scenario", "bug", "seeds", "failures", "min_events", "first_violation"],
    );
    let rows = e17["rows"].as_array().unwrap();
    // One row per healthy scenario plus the seeded-bug row.
    assert_eq!(rows.len(), 6);
    for row in &rows[..5] {
        assert_eq!(row[1], "none");
        assert_eq!(row[3], "0", "healthy scenario must report zero failures: {row:?}");
    }
    let bug_row = &rows[5];
    assert_eq!(bug_row[1], "skip_rehydrate");
    assert_ne!(bug_row[3], "0", "the seeded bug must be found within the quick seed budget");
    assert_ne!(bug_row[4], "-", "the failing plan must have been minimised");
}

#[test]
fn e18_and_e19_json_shapes_are_stable() {
    let e18 = run_and_load("e18", "e18_perf_model");
    assert_table_shape(
        &e18,
        "e18_perf_model",
        &["rate_t/s", "unit", "lambda_t/s", "S_us", "rho_pred", "rho_obs", "err_%"],
    );

    let e19 = run_and_load("e19", "e19_slo_chaos");
    assert_table_shape(
        &e19,
        "e19_slo_chaos",
        &["scenario", "mode", "seed", "results", "viol", "alerts", "stalls", "avail_%", "breached"],
    );
    let rows = e19["rows"].as_array().unwrap();
    // Quick mode: 4 sim scenarios x 2 seeds + the live broker-stall drill.
    assert_eq!(rows.len(), 9);
    for row in &rows[..8] {
        assert_eq!(row[1], "sim");
        assert_eq!(row[4], "0", "sim trial must stay violation-free: {row:?}");
    }
    let drill = &rows[8];
    assert_eq!(drill[0], "broker_stall");
    assert_eq!(drill[1], "live");
    assert_eq!(drill[8], "yes", "the seeded broker stall must breach the SLO: {drill:?}");
    // The breach bundle lands next to the table for the CI artifact.
    let bundle = std::fs::read_to_string("results/e19_breach_bundle.json")
        .expect("breach bundle written on breach");
    let parsed = bistream_types::recorder::BreachBundle::from_json(&bundle)
        .expect("bundle parses back");
    assert_eq!(parsed.to_json(), bundle, "bundle round-trip is byte-stable");
}
