//! Bounded message queues and consumer handles.
//!
//! A queue is a bounded MPMC channel: multiple bindings/publishers feed it
//! and multiple consumers of one group compete for its messages. Per-sender
//! FIFO is inherited from crossbeam channels, giving the pairwise-FIFO
//! property the ordering protocol requires.

use crate::message::Message;
use bistream_types::audit::Auditor;
use bistream_types::journal::{EventJournal, EventKind};
use bistream_types::metrics::{Counter, Gauge};
use bistream_types::time::Clock;
use bistream_types::trace::{HopKind, Tracer};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Why a receive returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout; the queue is still open.
    Timeout,
    /// The queue was deleted (or the broker dropped) and is fully drained.
    Disconnected,
}

/// Registry-backed handles for one queue, built by the broker when an
/// [`bistream_types::registry::Observability`] is attached before the
/// queue is declared.
pub(crate) struct QueueObs {
    /// `bistream_queue_published_total{queue=…}` — adopted by the meta.
    pub(crate) published: Arc<Counter>,
    /// `bistream_queue_delivered_total{queue=…}`.
    pub(crate) delivered: Arc<Counter>,
    /// `bistream_queue_redelivered_total{queue=…}`.
    pub(crate) redelivered: Arc<Counter>,
    /// `bistream_queue_depth{queue=…}` — kept current on push/recv/purge.
    pub(crate) depth: Arc<Gauge>,
    /// `bistream_queue_depth_max{queue=…}` — high-watermark of `depth`.
    pub(crate) depth_max: Arc<Gauge>,
    /// `bistream_queue_backpressure_blocks_total{queue=…}`.
    pub(crate) blocked: Arc<Counter>,
    /// `bistream_queue_stall_ms_total{queue=…}` — publisher park time.
    pub(crate) stall_ms: Arc<Counter>,
    /// Journal receiving [`EventKind::BackpressureStall`] events.
    pub(crate) journal: EventJournal,
    /// Timebase for stall events (the live pipeline's wall clock).
    pub(crate) clock: Arc<dyn Clock>,
    /// Per-tuple tracer recording enqueue/dequeue spans for messages that
    /// carry [`Message::trace_seqs`] headers (disabled tracers are inert).
    pub(crate) tracer: Tracer,
    /// Protocol-invariant auditor checking queue message conservation
    /// (deliveries never exceed publishes), when one is attached.
    pub(crate) auditor: Option<Auditor>,
}

impl std::fmt::Debug for QueueObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueObs").finish_non_exhaustive()
    }
}

/// Name, bound and counters shared by the queue and all its consumers.
#[derive(Debug)]
struct QueueMeta {
    name: String,
    capacity: usize,
    published: Arc<Counter>,
    delivered: Arc<Counter>,
    redelivered: Arc<Counter>,
    /// Depth gauge, stall counter and journal — present only when the
    /// broker had observability attached at declaration time.
    depth_gauge: Option<Arc<Gauge>>,
    depth_max: Option<Arc<Gauge>>,
    blocked: Option<Arc<Counter>>,
    stall_ms: Option<Arc<Counter>>,
    stall_journal: Option<(EventJournal, Arc<dyn Clock>)>,
    /// Tracer plus its timebase — present only when the broker had
    /// observability attached at declaration time.
    trace: Option<(Tracer, Arc<dyn Clock>)>,
    /// Invariant auditor — present only when the broker had one attached
    /// (alongside observability) at declaration time.
    auditor: Option<Auditor>,
    /// Fault-injection stall: while set, publishes behave as if the queue
    /// were at capacity (non-blocking pushes refuse, blocking pushes
    /// park) without touching buffered messages. Flipped by
    /// [`crate::Broker::set_queue_stalled`]; chaos drills use it to model
    /// a wedged broker queue as backpressure, never as loss.
    stalled: std::sync::atomic::AtomicBool,
    /// Parking spot for publishers blocked on an injected stall: they
    /// wait on this condvar instead of sleep-spinning, and
    /// [`QueueCore::set_stalled`] notifies when the fault window closes.
    /// The mutex guards the `stalled` transition so a publisher cannot
    /// check the flag, lose the race with the heal, and park forever.
    stall_wait: (Mutex<()>, Condvar),
}

impl QueueMeta {
    #[inline]
    fn note_enqueued(&self, trace_seqs: Option<&[u64]>) {
        if let Some(g) = &self.depth_gauge {
            g.add(1);
            if let Some(m) = &self.depth_max {
                // Racy read-then-set, but monotone in practice: a lost
                // race only delays the watermark until the next enqueue.
                let d = g.get();
                if d > m.get() {
                    m.set(d);
                }
            }
        }
        if let Some(a) = &self.auditor {
            a.queue_enqueue(&self.name);
        }
        self.note_hop(trace_seqs, HopKind::Enqueue);
    }

    #[inline]
    fn note_dequeued(&self, trace_seqs: Option<&[u64]>) {
        if let Some(g) = &self.depth_gauge {
            g.sub(1);
        }
        if let Some(a) = &self.auditor {
            a.queue_dequeue(&self.name);
        }
        self.note_hop(trace_seqs, HopKind::Dequeue);
    }

    /// Record one queue-hop span per sampled tuple in the frame. The
    /// headers travel out-of-band on the message, so a batched payload
    /// never needs decoding here; one clock read covers the whole frame.
    fn note_hop(&self, trace_seqs: Option<&[u64]>, kind: HopKind) {
        let (Some(seqs), Some((tracer, clock))) = (trace_seqs, &self.trace) else { return };
        if seqs.is_empty() {
            return;
        }
        let now = clock.now();
        for &seq in seqs {
            if tracer.sampled(seq) {
                tracer.span(seq, kind, &self.name, now, now);
            }
        }
    }

    fn note_stall(&self) {
        if let Some(c) = &self.blocked {
            c.inc();
        }
        if let Some((journal, clock)) = &self.stall_journal {
            journal.record(clock.now(), EventKind::BackpressureStall { queue: self.name.clone() });
        }
    }

    /// Clock read for stall-duration accounting (None when unobserved).
    fn stall_clock_now(&self) -> Option<u64> {
        self.stall_journal.as_ref().map(|(_, clock)| clock.now())
    }

    /// Charge the elapsed park time since `started` to the stall-time
    /// counter.
    fn charge_stall(&self, started: Option<u64>) {
        let (Some(c), Some(start)) = (&self.stall_ms, started) else { return };
        let now = self.stall_clock_now().unwrap_or(start);
        c.add(now.saturating_sub(start));
    }

    #[inline]
    fn is_stalled(&self) -> bool {
        self.stalled.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Internal queue state held by the broker and by exchange bindings.
///
/// Crucially, `QueueCore` is the *only* holder of the channel's `Sender`:
/// when the broker deletes the queue (dropping the core from its map and
/// all bindings), consumers drain what is buffered and then observe
/// `Disconnected` — the AMQP queue-deletion semantics the scale-in path
/// relies on.
#[derive(Debug)]
pub(crate) struct QueueCore {
    meta: Arc<QueueMeta>,
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

impl QueueCore {
    pub(crate) fn new(name: String, capacity: usize) -> Arc<QueueCore> {
        Self::build(name, capacity, None)
    }

    pub(crate) fn observed(name: String, capacity: usize, obs: QueueObs) -> Arc<QueueCore> {
        Self::build(name, capacity, Some(obs))
    }

    fn build(name: String, capacity: usize, obs: Option<QueueObs>) -> Arc<QueueCore> {
        let (tx, rx) = channel::bounded(capacity);
        let meta = match obs {
            Some(obs) => QueueMeta {
                name,
                capacity,
                published: obs.published,
                delivered: obs.delivered,
                redelivered: obs.redelivered,
                depth_gauge: Some(obs.depth),
                depth_max: Some(obs.depth_max),
                blocked: Some(obs.blocked),
                stall_ms: Some(obs.stall_ms),
                stall_journal: Some((obs.journal, Arc::clone(&obs.clock))),
                trace: Some((obs.tracer, obs.clock)),
                auditor: obs.auditor,
                stalled: std::sync::atomic::AtomicBool::new(false),
                stall_wait: (Mutex::new(()), Condvar::new()),
            },
            None => QueueMeta {
                name,
                capacity,
                published: Counter::shared(),
                delivered: Counter::shared(),
                redelivered: Counter::shared(),
                depth_gauge: None,
                depth_max: None,
                blocked: None,
                stall_ms: None,
                stall_journal: None,
                trace: None,
                auditor: None,
                stalled: std::sync::atomic::AtomicBool::new(false),
                stall_wait: (Mutex::new(()), Condvar::new()),
            },
        };
        Arc::new(QueueCore { meta: Arc::new(meta), tx, rx })
    }

    pub(crate) fn name(&self) -> &str {
        &self.meta.name
    }

    /// Enqueue, blocking while full (live-runtime backpressure). A stall
    /// bumps the queue's backpressure counter and journals a
    /// `BackpressureStall` before the publisher parks on the channel.
    pub(crate) fn push_blocking(&self, msg: Message) -> Result<(), Message> {
        if self.meta.is_stalled() {
            // An injected stall is backpressure: journal it once, then
            // park until the fault window closes (never drop the frame).
            self.meta.note_stall();
            let started = self.meta.stall_clock_now();
            let (lock, cv) = &self.meta.stall_wait;
            let mut guard = lock.lock();
            // Re-check under the lock: `set_stalled` flips the flag while
            // holding it, so a heal can never slip between this check and
            // the wait. The timeout is a backstop only.
            while self.meta.is_stalled() {
                cv.wait_for(&mut guard, Duration::from_millis(50));
            }
            drop(guard);
            self.meta.charge_stall(started);
        }
        self.meta.published.inc();
        let trace = msg.trace_handle();
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.meta.note_enqueued(trace.as_deref());
                Ok(())
            }
            Err(TrySendError::Disconnected(m)) => Err(m),
            Err(TrySendError::Full(m)) => {
                self.meta.note_stall();
                let started = self.meta.stall_clock_now();
                let r = self.tx.send(m).map_err(|e| e.0);
                self.meta.charge_stall(started);
                if r.is_ok() {
                    self.meta.note_enqueued(trace.as_deref());
                }
                r
            }
        }
    }

    /// Enqueue without blocking; returns the message back if full/closed
    /// (an injected stall reads as full).
    pub(crate) fn try_push(&self, msg: Message) -> Result<(), TrySendError<Message>> {
        if self.meta.is_stalled() {
            self.meta.note_stall();
            return Err(TrySendError::Full(msg));
        }
        let trace = msg.trace_handle();
        let r = self.tx.try_send(msg);
        if r.is_ok() {
            self.meta.published.inc();
            self.meta.note_enqueued(trace.as_deref());
        }
        r
    }

    /// Messages currently buffered.
    pub(crate) fn depth(&self) -> usize {
        self.rx.len()
    }

    /// Flip the fault-injection stall (see [`QueueMeta::stalled`]). The
    /// transition happens under the stall-wait lock and a heal notifies
    /// every parked publisher, so none sleeps past the fault window.
    pub(crate) fn set_stalled(&self, on: bool) {
        let (lock, cv) = &self.meta.stall_wait;
        let _guard = lock.lock();
        self.meta.stalled.store(on, std::sync::atomic::Ordering::Release);
        if !on {
            cv.notify_all();
        }
    }

    /// Whether a fault-injection stall is currently active.
    pub(crate) fn is_stalled(&self) -> bool {
        self.meta.is_stalled()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.meta.capacity
    }

    pub(crate) fn published(&self) -> u64 {
        self.meta.published.get()
    }

    pub(crate) fn delivered(&self) -> u64 {
        self.meta.delivered.get()
    }

    /// Discard everything buffered; returns the count.
    pub(crate) fn purge(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
            self.meta.note_dequeued(None);
        }
        n
    }

    pub(crate) fn consumer(self: &Arc<Self>) -> Consumer {
        Consumer {
            meta: Arc::clone(&self.meta),
            rx: self.rx.clone(),
            requeue: Arc::downgrade(self),
        }
    }

    /// Requeue an unacknowledged delivery (at the tail — crossbeam
    /// channels cannot push-front; AMQP makes no strict position promise
    /// either). Returns false when the queue is full (the message is then
    /// dropped, as a full queue would also have rejected a publish).
    pub(crate) fn requeue(&self, msg: Message) -> bool {
        let trace = msg.trace_handle();
        let ok = self.tx.try_send(msg).is_ok();
        if ok {
            self.meta.redelivered.inc();
            self.meta.note_enqueued(trace.as_deref());
        }
        ok
    }
}

/// A handle for consuming messages from one queue.
///
/// Consumers of the same queue compete: each message is delivered to
/// exactly one of them (the AMQ queuing model / Spring Cloud Stream
/// consumer group). Clone the consumer (or call
/// [`crate::Broker::subscribe`] again) to add a competitor.
#[derive(Debug, Clone)]
pub struct Consumer {
    meta: Arc<QueueMeta>,
    rx: Receiver<Message>,
    /// Weak so an outstanding consumer/delivery never keeps a deleted
    /// queue alive (deletion semantics depend on the Sender dropping).
    requeue: std::sync::Weak<QueueCore>,
}

impl Consumer {
    /// The queue this consumer reads from.
    pub fn queue_name(&self) -> &str {
        &self.meta.name
    }

    /// Receive the next message, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => {
                self.meta.delivered.inc();
                self.meta.note_dequeued(Some(m.trace_seqs()));
                Ok(m)
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive, blocking until a message arrives or the queue is deleted.
    pub fn recv(&self) -> Result<Message, RecvError> {
        match self.rx.recv() {
            Ok(m) => {
                self.meta.delivered.inc();
                self.meta.note_dequeued(Some(m.trace_seqs()));
                Ok(m)
            }
            Err(_) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<Message> {
        let m = self.rx.try_recv().ok()?;
        self.meta.delivered.inc();
        self.meta.note_dequeued(Some(m.trace_seqs()));
        Some(m)
    }

    /// Drain everything currently buffered (used by drain-then-stop
    /// shutdown in the live runtime and by tests).
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of messages currently waiting in the queue.
    pub fn depth(&self) -> usize {
        self.rx.len()
    }

    /// Receive with **manual acknowledgement**: the returned [`Delivery`]
    /// must be [`Delivery::ack`]ed; dropping it unacknowledged requeues
    /// the message (with its `redelivered` flag set) — the AMQP
    /// at-least-once consumption mode. Requeueing is best-effort: it is
    /// skipped if the queue has been deleted, and the message is dropped
    /// if the queue is full.
    pub fn recv_acked(&self, timeout: Duration) -> Result<Delivery, RecvError> {
        let msg = self.recv_timeout(timeout)?;
        Ok(Delivery { msg: Some(msg), queue: self.requeue.clone() })
    }
}

/// An unacknowledged delivery (see [`Consumer::recv_acked`]).
#[derive(Debug)]
pub struct Delivery {
    msg: Option<Message>,
    queue: std::sync::Weak<QueueCore>,
}

impl Delivery {
    /// The delivered message.
    pub fn message(&self) -> &Message {
        self.msg.as_ref().expect("present until ack/drop")
    }

    /// Acknowledge: the message is consumed for good.
    pub fn ack(mut self) -> Message {
        self.msg.take().expect("present until ack/drop")
    }
}

impl Drop for Delivery {
    fn drop(&mut self) {
        if let Some(mut msg) = self.msg.take() {
            msg.redelivered = true;
            if let Some(q) = self.queue.upgrade() {
                let _ = q.requeue(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(cap: usize) -> Arc<QueueCore> {
        QueueCore::new("q".into(), cap)
    }

    #[test]
    fn fifo_per_producer() {
        let core = q(16);
        for i in 0..5u8 {
            core.push_blocking(Message::new("k", vec![i])).unwrap();
        }
        let c = core.consumer();
        for i in 0..5u8 {
            assert_eq!(c.try_recv().unwrap().payload[0], i);
        }
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn competing_consumers_split_messages_exactly_once() {
        let core = q(64);
        for i in 0..50u8 {
            core.push_blocking(Message::new("k", vec![i])).unwrap();
        }
        let (a, b) = (core.consumer(), core.consumer());
        let mut seen = Vec::new();
        loop {
            match (a.try_recv(), b.try_recv()) {
                (None, None) => break,
                (x, y) => {
                    seen.extend(x.into_iter().chain(y));
                }
            }
        }
        let mut ids: Vec<u8> = seen.iter().map(|m| m.payload[0]).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50u8).collect::<Vec<_>>(), "each delivered exactly once");
    }

    #[test]
    fn try_push_reports_full() {
        let core = q(1);
        core.try_push(Message::new("k", vec![1])).unwrap();
        assert!(matches!(core.try_push(Message::new("k", vec![2])), Err(TrySendError::Full(_))));
        assert_eq!(core.depth(), 1);
    }

    #[test]
    fn counters_track_published_and_delivered() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![1])).unwrap();
        core.push_blocking(Message::new("k", vec![2])).unwrap();
        let c = core.consumer();
        c.try_recv().unwrap();
        assert_eq!(core.published(), 2);
        assert_eq!(core.delivered(), 1);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn recv_timeout_and_disconnect() {
        let core = q(2);
        let c = core.consumer();
        assert_eq!(c.recv_timeout(Duration::from_millis(5)), Err(RecvError::Timeout));
        core.push_blocking(Message::new("k", vec![7])).unwrap();
        drop(core); // deletes the producer side
                    // Buffered message still delivered…
        assert!(c.recv_timeout(Duration::from_millis(5)).is_ok());
        // …then disconnect is observed.
        assert_eq!(c.recv_timeout(Duration::from_millis(5)), Err(RecvError::Disconnected));
    }

    #[test]
    fn ack_consumes_for_good() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![1])).unwrap();
        let c = core.consumer();
        let d = c.recv_acked(Duration::from_millis(5)).unwrap();
        assert_eq!(d.message().payload[0], 1);
        assert!(!d.message().redelivered);
        let msg = d.ack();
        assert_eq!(msg.payload[0], 1);
        assert_eq!(c.depth(), 0, "acked messages never come back");
    }

    #[test]
    fn dropped_delivery_is_redelivered() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![7])).unwrap();
        let c = core.consumer();
        {
            let _unacked = c.recv_acked(Duration::from_millis(5)).unwrap();
            // Consumer "crashes" here: delivery dropped without ack.
        }
        let again = c.recv_acked(Duration::from_millis(5)).unwrap();
        assert!(again.message().redelivered, "requeued copy carries the flag");
        assert_eq!(again.ack().payload[0], 7);
    }

    #[test]
    fn redelivery_reaches_a_competing_consumer() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![9])).unwrap();
        let crashing = core.consumer();
        let healthy = core.consumer();
        drop(crashing.recv_acked(Duration::from_millis(5)).unwrap());
        let d = healthy.recv_acked(Duration::from_millis(5)).unwrap();
        assert!(d.message().redelivered);
        d.ack();
    }

    #[test]
    fn requeue_after_queue_deletion_is_silent() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![1])).unwrap();
        let c = core.consumer();
        let d = c.recv_acked(Duration::from_millis(5)).unwrap();
        drop(core); // queue deleted while a delivery is outstanding
        drop(d); // must not panic; the message is gone with the queue
        assert_eq!(c.recv_timeout(Duration::from_millis(5)), Err(RecvError::Disconnected));
    }

    #[test]
    fn injected_stall_refuses_try_push_without_losing_messages() {
        let core = q(8);
        core.push_blocking(Message::new("k", vec![1])).unwrap();
        core.set_stalled(true);
        assert!(core.is_stalled());
        assert!(matches!(core.try_push(Message::new("k", vec![2])), Err(TrySendError::Full(_))));
        assert_eq!(core.depth(), 1, "stall refuses new frames, never drops buffered ones");
        core.set_stalled(false);
        core.try_push(Message::new("k", vec![2])).unwrap();
        let c = core.consumer();
        assert_eq!(c.drain().len(), 2);
    }

    #[test]
    fn injected_stall_parks_blocking_publishers_until_it_heals() {
        let core = q(8);
        core.set_stalled(true);
        let publisher = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.push_blocking(Message::new("k", vec![9])))
        };
        // The publisher must be parked, not failed and not delivered.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(core.depth(), 0, "stalled queue holds the publisher");
        core.set_stalled(false);
        publisher.join().unwrap().unwrap();
        assert_eq!(core.depth(), 1, "frame arrives once the stall heals");
    }

    #[test]
    fn drain_empties_queue() {
        let core = q(8);
        for i in 0..3u8 {
            core.push_blocking(Message::new("k", vec![i])).unwrap();
        }
        let c = core.consumer();
        assert_eq!(c.drain().len(), 3);
        assert_eq!(c.depth(), 0);
    }
}
