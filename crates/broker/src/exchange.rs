//! Exchanges: the routing stage of the AMQ model.

use crate::pattern::topic_matches;
use crate::queue::QueueCore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The routing discipline of an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeKind {
    /// Route to bindings whose key equals the message's routing key.
    Direct,
    /// Route to bindings whose `*`/`#` pattern matches the routing key.
    Topic,
    /// Route to every bound queue regardless of key.
    Fanout,
}

/// One exchange→queue binding.
#[derive(Debug)]
pub(crate) struct Binding {
    /// Exact key (direct) or pattern (topic); ignored by fanout.
    pub(crate) pattern: String,
    /// Destination queue.
    pub(crate) queue: Arc<QueueCore>,
}

/// An exchange with its bindings.
#[derive(Debug)]
pub(crate) struct Exchange {
    pub(crate) kind: ExchangeKind,
    pub(crate) bindings: Vec<Binding>,
}

impl Exchange {
    pub(crate) fn new(kind: ExchangeKind) -> Exchange {
        Exchange { kind, bindings: Vec::new() }
    }

    /// Queues that should receive a message with `routing_key`.
    ///
    /// A queue bound multiple times with different matching patterns still
    /// receives one copy (AMQP semantics).
    pub(crate) fn route(&self, routing_key: &str) -> Vec<Arc<QueueCore>> {
        let mut out: Vec<Arc<QueueCore>> = Vec::new();
        for b in &self.bindings {
            let hit = match self.kind {
                ExchangeKind::Fanout => true,
                ExchangeKind::Direct => b.pattern == routing_key,
                ExchangeKind::Topic => topic_matches(&b.pattern, routing_key),
            };
            if hit && !out.iter().any(|q| Arc::ptr_eq(q, &b.queue)) {
                out.push(Arc::clone(&b.queue));
            }
        }
        out
    }

    /// Remove every binding to the named queue; returns how many were
    /// removed.
    pub(crate) fn unbind_queue(&mut self, queue_name: &str) -> usize {
        let before = self.bindings.len();
        self.bindings.retain(|b| b.queue.name() != queue_name);
        before - self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str) -> Arc<QueueCore> {
        QueueCore::new(name.into(), 8)
    }

    fn bound(kind: ExchangeKind, binds: &[(&str, &Arc<QueueCore>)]) -> Exchange {
        let mut e = Exchange::new(kind);
        for (p, queue) in binds {
            e.bindings.push(Binding { pattern: (*p).into(), queue: Arc::clone(queue) });
        }
        e
    }

    #[test]
    fn direct_routes_on_exact_match() {
        let (a, b) = (q("a"), q("b"));
        let e = bound(ExchangeKind::Direct, &[("k1", &a), ("k2", &b)]);
        let hit = e.route("k1");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].name(), "a");
        assert!(e.route("k3").is_empty());
    }

    #[test]
    fn topic_routes_on_pattern() {
        let (store, join) = (q("store"), q("join"));
        let e = bound(ExchangeKind::Topic, &[("R.store.*", &store), ("R.join.#", &join)]);
        assert_eq!(e.route("R.store.4")[0].name(), "store");
        assert_eq!(e.route("R.join.1.x")[0].name(), "join");
        assert!(e.route("S.store.4").is_empty());
    }

    #[test]
    fn fanout_routes_everywhere() {
        let (a, b) = (q("a"), q("b"));
        let e = bound(ExchangeKind::Fanout, &[("", &a), ("", &b)]);
        assert_eq!(e.route("whatever").len(), 2);
    }

    #[test]
    fn duplicate_bindings_deliver_once() {
        let a = q("a");
        let e = bound(ExchangeKind::Topic, &[("x.#", &a), ("x.*", &a)]);
        assert_eq!(e.route("x.y").len(), 1);
    }

    #[test]
    fn unbind_removes_all_bindings_of_queue() {
        let (a, b) = (q("a"), q("b"));
        let mut e = bound(ExchangeKind::Topic, &[("p1", &a), ("p2", &a), ("p1", &b)]);
        assert_eq!(e.unbind_queue("a"), 2);
        assert_eq!(e.bindings.len(), 1);
        assert_eq!(e.bindings[0].queue.name(), "b");
    }
}
