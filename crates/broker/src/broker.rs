//! The broker facade: declaration, binding, publishing, subscription and
//! management statistics.

use crate::exchange::{Binding, Exchange, ExchangeKind};
use crate::message::Message;
use crate::pattern::valid_pattern;
use crate::queue::{Consumer, QueueCore, QueueObs};
use bistream_types::audit::Auditor;
use bistream_types::error::{Error, Result};
use bistream_types::registry::Observability;
use bistream_types::time::Clock;
use parking_lot::RwLock;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default queue capacity when the declarer does not specify one.
///
/// Sized so that a queue holds a few punctuation intervals worth of tuples
/// at the rates the experiments drive; the live runtime relies on the bound
/// for backpressure, not for loss (blocking publish never drops).
pub const DEFAULT_QUEUE_CAPACITY: usize = 8_192;

#[derive(Default)]
struct Inner {
    exchanges: BTreeMap<String, Exchange>,
    queues: BTreeMap<String, Arc<QueueCore>>,
    /// Observability + timebase, when attached; queues declared afterwards
    /// get registry-backed counters and depth gauges under `queue="name"`.
    obs: Option<(Observability, Arc<dyn Clock>)>,
    /// Invariant auditor, when attached; queues declared afterwards (with
    /// observability also attached) report enqueue/dequeue conservation.
    auditor: Option<Auditor>,
}

/// The in-process message broker.
///
/// Thread-safe and cheaply cloneable (`Arc` inside): the live runtime hands
/// one clone to every router and joiner thread. All declaration methods are
/// idempotent when options match, mirroring AMQP `declare` semantics.
///
/// ```
/// use bistream_broker::{Broker, ExchangeKind, Message};
///
/// let broker = Broker::new();
/// broker.declare_exchange("events", ExchangeKind::Topic)?;
/// broker.declare_queue("audit", 128)?;
/// broker.bind("events", "audit", "user.*")?;
/// broker.publish("events", Message::new("user.login", b"payload".to_vec()))?;
/// let consumer = broker.subscribe("audit")?;
/// assert_eq!(&*consumer.try_recv().unwrap().routing_key, "user.login");
/// # Ok::<(), bistream_types::error::Error>(())
/// ```
#[derive(Clone, Default)]
pub struct Broker {
    inner: Arc<RwLock<Inner>>,
    anon_counter: Arc<AtomicU64>,
}

impl Broker {
    /// A fresh broker with no exchanges or queues.
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Declare an exchange. Redeclaring with the same kind is a no-op;
    /// with a different kind it is an error.
    pub fn declare_exchange(&self, name: &str, kind: ExchangeKind) -> Result<()> {
        let mut inner = self.inner.write();
        match inner.exchanges.get(name) {
            Some(e) if e.kind == kind => Ok(()),
            Some(e) => Err(Error::Broker(format!(
                "exchange `{name}` already declared as {:?}, redeclared as {kind:?}",
                e.kind
            ))),
            None => {
                inner.exchanges.insert(name.to_owned(), Exchange::new(kind));
                Ok(())
            }
        }
    }

    /// Attach an observability bundle: every queue declared *after* this
    /// call exposes `bistream_queue_*` series labeled `queue="name"` in the
    /// bundle's registry and journals `BackpressureStall` events stamped by
    /// `clock`. Queues declared earlier keep their private counters.
    pub fn attach_observability(&self, obs: Observability, clock: Arc<dyn Clock>) {
        self.inner.write().obs = Some((obs, clock));
    }

    /// Attach a protocol-invariant auditor: every queue declared *after*
    /// this call (with observability also attached) reports its
    /// publishes/deliveries for message-conservation checking.
    pub fn attach_auditor(&self, auditor: Auditor) {
        self.inner.write().auditor = Some(auditor);
    }

    /// Declare a queue with the given capacity. Redeclaring is a no-op
    /// (capacity of the first declaration wins, as in AMQP).
    pub fn declare_queue(&self, name: &str, capacity: usize) -> Result<()> {
        if capacity == 0 {
            return Err(Error::Broker(format!("queue `{name}` needs capacity > 0")));
        }
        let mut inner = self.inner.write();
        if inner.queues.contains_key(name) {
            return Ok(());
        }
        let queue = match &inner.obs {
            Some((obs, clock)) => {
                let labels: &[(&str, &str)] = &[("queue", name)];
                let reg = &obs.registry;
                QueueCore::observed(
                    name.to_owned(),
                    capacity,
                    QueueObs {
                        published: reg
                            .counter(bistream_types::metric_names::QUEUE_PUBLISHED_TOTAL, labels),
                        delivered: reg
                            .counter(bistream_types::metric_names::QUEUE_DELIVERED_TOTAL, labels),
                        redelivered: reg
                            .counter(bistream_types::metric_names::QUEUE_REDELIVERED_TOTAL, labels),
                        depth: reg.gauge(bistream_types::metric_names::QUEUE_DEPTH, labels),
                        depth_max: reg
                            .gauge(bistream_types::metric_names::QUEUE_DEPTH_MAX, labels),
                        blocked: reg.counter(
                            bistream_types::metric_names::QUEUE_BACKPRESSURE_BLOCKS_TOTAL,
                            labels,
                        ),
                        stall_ms: reg
                            .counter(bistream_types::metric_names::QUEUE_STALL_MS_TOTAL, labels),
                        journal: obs.journal.clone(),
                        clock: Arc::clone(clock),
                        tracer: obs.tracer.clone(),
                        auditor: inner.auditor.clone(),
                    },
                )
            }
            None => QueueCore::new(name.to_owned(), capacity),
        };
        inner.queues.insert(name.to_owned(), queue);
        Ok(())
    }

    /// Bind `queue` to `exchange` under `pattern` (exact key for direct
    /// exchanges, `*`/`#` pattern for topic, ignored for fanout).
    pub fn bind(&self, exchange: &str, queue: &str, pattern: &str) -> Result<()> {
        if !valid_pattern(pattern) {
            return Err(Error::Broker(format!("invalid binding pattern `{pattern}`")));
        }
        let mut inner = self.inner.write();
        let q = inner
            .queues
            .get(queue)
            .cloned()
            .ok_or_else(|| Error::Broker(format!("no such queue `{queue}`")))?;
        let e = inner
            .exchanges
            .get_mut(exchange)
            .ok_or_else(|| Error::Broker(format!("no such exchange `{exchange}`")))?;
        e.bindings.push(Binding { pattern: pattern.to_owned(), queue: q });
        Ok(())
    }

    /// Remove every binding between `exchange` and `queue`; returns how
    /// many bindings were removed. The queue itself (and its buffered
    /// messages) survive.
    pub fn unbind(&self, exchange: &str, queue: &str) -> Result<usize> {
        let mut inner = self.inner.write();
        let e = inner
            .exchanges
            .get_mut(exchange)
            .ok_or_else(|| Error::Broker(format!("no such exchange `{exchange}`")))?;
        Ok(e.unbind_queue(queue))
    }

    /// Fault injection: stall or un-stall a queue. A stalled queue reads
    /// as permanently at-capacity — `try_publish` reports the message
    /// dropped and blocking publishers park until the stall heals — so a
    /// wedged broker queue is modelled as backpressure, never as loss.
    /// Buffered messages and consumers are unaffected.
    pub fn set_queue_stalled(&self, name: &str, on: bool) -> Result<()> {
        let inner = self.inner.read();
        let q = inner
            .queues
            .get(name)
            .ok_or_else(|| Error::Broker(format!("no such queue `{name}`")))?;
        q.set_stalled(on);
        Ok(())
    }

    /// Discard every message currently buffered in `queue`; returns how
    /// many were purged.
    pub fn purge_queue(&self, name: &str) -> Result<usize> {
        let inner = self.inner.read();
        let q = inner
            .queues
            .get(name)
            .ok_or_else(|| Error::Broker(format!("no such queue `{name}`")))?;
        Ok(q.purge())
    }

    /// Publish to an exchange, blocking on any full destination queue
    /// (backpressure). Returns the number of queues the message reached.
    pub fn publish(&self, exchange: &str, msg: Message) -> Result<usize> {
        let targets = {
            let inner = self.inner.read();
            let e = inner
                .exchanges
                .get(exchange)
                .ok_or_else(|| Error::Broker(format!("no such exchange `{exchange}`")))?;
            e.route(&msg.routing_key)
        };
        // Deliver outside the lock so a full queue cannot wedge the broker.
        for q in &targets {
            q.push_blocking(msg.clone()).map_err(|_| Error::Closed)?;
        }
        Ok(targets.len())
    }

    /// Publish without blocking. Destinations whose queue is full are
    /// counted in the returned `dropped` figure — used by load-shedding
    /// experiments; the join engine itself always uses blocking publish.
    pub fn try_publish(&self, exchange: &str, msg: Message) -> Result<PublishOutcome> {
        let targets = {
            let inner = self.inner.read();
            let e = inner
                .exchanges
                .get(exchange)
                .ok_or_else(|| Error::Broker(format!("no such exchange `{exchange}`")))?;
            e.route(&msg.routing_key)
        };
        let mut outcome = PublishOutcome { delivered: 0, dropped: 0 };
        for q in &targets {
            match q.try_push(msg.clone()) {
                Ok(()) => outcome.delivered += 1,
                Err(_) => outcome.dropped += 1,
            }
        }
        Ok(outcome)
    }

    /// Subscribe a competing consumer to an existing queue.
    pub fn subscribe(&self, queue: &str) -> Result<Consumer> {
        let inner = self.inner.read();
        inner
            .queues
            .get(queue)
            .map(|q| q.consumer())
            .ok_or_else(|| Error::Broker(format!("no such queue `{queue}`")))
    }

    /// Create an exclusive, auto-named queue bound to `exchange` under
    /// `pattern` and subscribe to it — the publish-subscribe (anonymous
    /// consumer group) model. Returns the consumer and the queue's name
    /// (needed to delete it on scale-in).
    pub fn subscribe_anonymous(&self, exchange: &str, pattern: &str) -> Result<(Consumer, String)> {
        let n = self.anon_counter.fetch_add(1, Ordering::Relaxed);
        let qname = format!("{exchange}.anonymous.{n}");
        self.declare_queue(&qname, DEFAULT_QUEUE_CAPACITY)?;
        self.bind(exchange, &qname, pattern)?;
        let c = self.subscribe(&qname)?;
        Ok((c, qname))
    }

    /// Unbind (from every exchange) and delete a queue. Consumers holding
    /// the queue drain buffered messages, then observe `Disconnected`.
    pub fn delete_queue(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.queues.remove(name).is_none() {
            return Err(Error::Broker(format!("no such queue `{name}`")));
        }
        for e in inner.exchanges.values_mut() {
            e.unbind_queue(name);
        }
        // Retire the queue's metric series so scrapes don't report ghosts.
        if let Some((obs, _)) = &inner.obs {
            obs.registry.unregister_labeled("queue", name);
        }
        Ok(())
    }

    /// True if the queue exists.
    pub fn queue_exists(&self, name: &str) -> bool {
        self.inner.read().queues.contains_key(name)
    }

    /// Management snapshot of every queue — the equivalent of the RabbitMQ
    /// management GUI's queue table.
    pub fn stats(&self) -> BrokerStats {
        let inner = self.inner.read();
        BrokerStats {
            exchanges: inner.exchanges.keys().cloned().collect(),
            queues: inner
                .queues
                .values()
                .map(|q| QueueStats {
                    name: q.name().to_owned(),
                    depth: q.depth(),
                    capacity: q.capacity(),
                    published: q.published(),
                    delivered: q.delivered(),
                })
                .collect(),
        }
    }
}

/// Result of a non-blocking publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Queues that accepted the message.
    pub delivered: usize,
    /// Queues that were full and shed the message.
    pub dropped: usize,
}

/// Management view of the whole broker.
#[derive(Debug, Clone, Serialize)]
pub struct BrokerStats {
    /// Declared exchange names.
    pub exchanges: Vec<String>,
    /// Per-queue statistics.
    pub queues: Vec<QueueStats>,
}

/// Management view of one queue.
#[derive(Debug, Clone, Serialize)]
pub struct QueueStats {
    /// Queue name.
    pub name: String,
    /// Messages currently buffered.
    pub depth: usize,
    /// Configured bound.
    pub capacity: usize,
    /// Total messages ever enqueued.
    pub published: u64,
    /// Total messages ever consumed.
    pub delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker_with_topic() -> Broker {
        let b = Broker::new();
        b.declare_exchange("tuple.exchange", ExchangeKind::Topic).unwrap();
        b
    }

    #[test]
    fn declare_is_idempotent_but_kind_conflicts_error() {
        let b = broker_with_topic();
        assert!(b.declare_exchange("tuple.exchange", ExchangeKind::Topic).is_ok());
        assert!(b.declare_exchange("tuple.exchange", ExchangeKind::Direct).is_err());
        b.declare_queue("q", 4).unwrap();
        assert!(b.declare_queue("q", 999).is_ok(), "redeclare is no-op");
        assert!(b.declare_queue("zero", 0).is_err());
    }

    #[test]
    fn stalled_queue_refuses_try_publish_then_heals() {
        let b = broker_with_topic();
        b.declare_queue("q", 8).unwrap();
        b.bind("tuple.exchange", "q", "#").unwrap();
        assert!(b.set_queue_stalled("ghost", true).is_err());

        b.set_queue_stalled("q", true).unwrap();
        let out = b.try_publish("tuple.exchange", Message::new("k", vec![1u8])).unwrap();
        assert_eq!((out.delivered, out.dropped), (0, 1), "stall reads as at-capacity");

        b.set_queue_stalled("q", false).unwrap();
        let out = b.try_publish("tuple.exchange", Message::new("k", vec![2u8])).unwrap();
        assert_eq!((out.delivered, out.dropped), (1, 0));
        let c = b.subscribe("q").unwrap();
        assert_eq!(c.drain().len(), 1, "only the post-stall publish landed");
    }

    #[test]
    fn publish_routes_by_topic_pattern() {
        let b = broker_with_topic();
        b.declare_queue("rstore", 8).unwrap();
        b.bind("tuple.exchange", "rstore", "R.store.#").unwrap();
        let reached = b.publish("tuple.exchange", Message::new("R.store.1", vec![1u8])).unwrap();
        assert_eq!(reached, 1);
        let missed = b.publish("tuple.exchange", Message::new("S.store.1", vec![1u8])).unwrap();
        assert_eq!(missed, 0);
        let c = b.subscribe("rstore").unwrap();
        assert_eq!(c.drain().len(), 1);
    }

    #[test]
    fn consumer_group_competes_anonymous_broadcasts() {
        let b = broker_with_topic();
        // Group queue: both consumers compete.
        b.declare_queue("grp", 64).unwrap();
        b.bind("tuple.exchange", "grp", "#").unwrap();
        let g1 = b.subscribe("grp").unwrap();
        let g2 = b.subscribe("grp").unwrap();
        // Two anonymous subscribers: each gets its own copy.
        let (a1, _) = b.subscribe_anonymous("tuple.exchange", "#").unwrap();
        let (a2, _) = b.subscribe_anonymous("tuple.exchange", "#").unwrap();
        for i in 0..10u8 {
            b.publish("tuple.exchange", Message::new("k", vec![i])).unwrap();
        }
        let group_total = g1.drain().len() + g2.drain().len();
        assert_eq!(group_total, 10, "group sees each message once");
        assert_eq!(a1.drain().len(), 10, "anonymous sees all");
        assert_eq!(a2.drain().len(), 10);
    }

    #[test]
    fn unknown_names_error() {
        let b = Broker::new();
        assert!(b.publish("nope", Message::new("k", vec![])).is_err());
        assert!(b.subscribe("nope").is_err());
        assert!(b.bind("nope", "nope", "#").is_err());
        assert!(b.delete_queue("nope").is_err());
    }

    #[test]
    fn delete_queue_unbinds_and_disconnects() {
        let b = broker_with_topic();
        let (c, qname) = b.subscribe_anonymous("tuple.exchange", "#").unwrap();
        b.publish("tuple.exchange", Message::new("k", vec![1])).unwrap();
        b.delete_queue(&qname).unwrap();
        assert!(!b.queue_exists(&qname));
        // Buffered message still drains, then disconnect.
        assert!(c.try_recv().is_some());
        assert_eq!(
            c.recv_timeout(std::time::Duration::from_millis(5)),
            Err(crate::queue::RecvError::Disconnected)
        );
        // Publishing after deletion reaches zero queues, no error.
        assert_eq!(b.publish("tuple.exchange", Message::new("k", vec![2])).unwrap(), 0);
    }

    #[test]
    fn try_publish_sheds_on_full() {
        let b = broker_with_topic();
        b.declare_queue("tiny", 1).unwrap();
        b.bind("tuple.exchange", "tiny", "#").unwrap();
        let first = b.try_publish("tuple.exchange", Message::new("k", vec![1])).unwrap();
        assert_eq!((first.delivered, first.dropped), (1, 0));
        let second = b.try_publish("tuple.exchange", Message::new("k", vec![2])).unwrap();
        assert_eq!((second.delivered, second.dropped), (0, 1));
    }

    #[test]
    fn stats_reflect_traffic() {
        let b = broker_with_topic();
        b.declare_queue("q", 8).unwrap();
        b.bind("tuple.exchange", "q", "#").unwrap();
        b.publish("tuple.exchange", Message::new("k", vec![1])).unwrap();
        b.publish("tuple.exchange", Message::new("k", vec![2])).unwrap();
        b.subscribe("q").unwrap().try_recv().unwrap();
        let stats = b.stats();
        assert_eq!(stats.exchanges, vec!["tuple.exchange".to_string()]);
        let q = &stats.queues[0];
        assert_eq!((q.depth, q.published, q.delivered), (1, 2, 1));
        assert_eq!(q.capacity, 8);
    }

    #[test]
    fn unbind_and_purge() {
        let b = broker_with_topic();
        b.declare_queue("q", 8).unwrap();
        b.bind("tuple.exchange", "q", "#").unwrap();
        b.publish("tuple.exchange", Message::new("k", vec![1])).unwrap();
        b.publish("tuple.exchange", Message::new("k", vec![2])).unwrap();
        assert_eq!(b.purge_queue("q").unwrap(), 2);
        assert_eq!(b.subscribe("q").unwrap().depth(), 0);
        assert_eq!(b.unbind("tuple.exchange", "q").unwrap(), 1);
        // No bindings left: publishes reach nothing, the queue survives.
        assert_eq!(b.publish("tuple.exchange", Message::new("k", vec![3])).unwrap(), 0);
        assert!(b.queue_exists("q"));
        assert!(b.purge_queue("nope").is_err());
        assert!(b.unbind("nope", "q").is_err());
    }

    #[test]
    fn blocking_recv_wakes_on_publish_and_deletion() {
        let b = broker_with_topic();
        b.declare_queue("q", 8).unwrap();
        b.bind("tuple.exchange", "q", "#").unwrap();
        let c = b.subscribe("q").unwrap();
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || c.recv())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.publish("tuple.exchange", Message::new("k", vec![9])).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap().payload[0], 9);
        // Deletion unblocks a pending recv with Disconnected.
        let waiter = std::thread::spawn(move || c.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.delete_queue("q").unwrap();
        assert_eq!(waiter.join().unwrap(), Err(crate::queue::RecvError::Disconnected));
    }

    #[test]
    fn direct_exchange_exact_key_routing() {
        let b = Broker::new();
        b.declare_exchange("dx", ExchangeKind::Direct).unwrap();
        b.declare_queue("p0", 8).unwrap();
        b.declare_queue("p1", 8).unwrap();
        b.bind("dx", "p0", "0").unwrap();
        b.bind("dx", "p1", "1").unwrap();
        b.publish("dx", Message::new("1", vec![9u8])).unwrap();
        assert_eq!(b.subscribe("p0").unwrap().depth(), 0);
        assert_eq!(b.subscribe("p1").unwrap().depth(), 1);
    }

    #[test]
    fn observed_queues_publish_registry_series_and_stall_events() {
        use bistream_types::journal::EventKind;
        use bistream_types::time::VirtualClock;

        let b = broker_with_topic();
        let obs = Observability::new();
        let clock = VirtualClock::starting_at(33);
        b.attach_observability(obs.clone(), Arc::new(clock));
        b.declare_queue("tiny", 1).unwrap();
        b.bind("tuple.exchange", "tiny", "#").unwrap();
        let labels: &[(&str, &str)] = &[("queue", "tiny")];

        b.publish("tuple.exchange", Message::new("k", vec![1])).unwrap();
        let snap = obs.registry.scrape(0);
        assert_eq!(
            snap.counter(bistream_types::metric_names::QUEUE_PUBLISHED_TOTAL, labels),
            Some(1)
        );
        assert_eq!(snap.gauge(bistream_types::metric_names::QUEUE_DEPTH, labels), Some(1));
        assert_eq!(snap.gauge(bistream_types::metric_names::QUEUE_DEPTH_MAX, labels), Some(1));

        // Second blocking publish stalls until a consumer drains.
        let b2 = b.clone();
        let blocked = std::thread::spawn(move || {
            b2.publish("tuple.exchange", Message::new("k", vec![2])).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let c = b.subscribe("tiny").unwrap();
        c.recv_timeout(std::time::Duration::from_millis(200)).unwrap();
        blocked.join().unwrap();
        c.recv_timeout(std::time::Duration::from_millis(200)).unwrap();

        let snap = obs.registry.scrape(0);
        assert_eq!(
            snap.counter(bistream_types::metric_names::QUEUE_PUBLISHED_TOTAL, labels),
            Some(2)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::QUEUE_DELIVERED_TOTAL, labels),
            Some(2)
        );
        assert_eq!(snap.gauge(bistream_types::metric_names::QUEUE_DEPTH, labels), Some(0));
        assert_eq!(
            snap.gauge(bistream_types::metric_names::QUEUE_DEPTH_MAX, labels),
            Some(1),
            "watermark survives the drain"
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::QUEUE_BACKPRESSURE_BLOCKS_TOTAL, labels),
            Some(1)
        );
        // The stall-time series exists; on a frozen virtual clock the
        // parked publish accumulates zero ms.
        assert_eq!(
            snap.counter(bistream_types::metric_names::QUEUE_STALL_MS_TOTAL, labels),
            Some(0)
        );
        let events = obs.journal.drain();
        assert!(events.iter().any(|e| e.ts == 33
            && matches!(&e.kind, EventKind::BackpressureStall { queue } if queue == "tiny")));

        // Deleting the queue retires its series.
        b.delete_queue("tiny").unwrap();
        assert!(obs
            .registry
            .scrape(0)
            .get(bistream_types::metric_names::QUEUE_DEPTH, labels)
            .is_none());
    }

    #[test]
    fn broker_clones_share_state() {
        let b = broker_with_topic();
        let b2 = b.clone();
        b2.declare_queue("q", 4).unwrap();
        assert!(b.queue_exists("q"));
    }

    #[test]
    fn concurrent_publish_and_consume() {
        let b = broker_with_topic();
        b.declare_queue("q", 128).unwrap();
        b.bind("tuple.exchange", "q", "#").unwrap();
        let n_producers = 4;
        let per = 500;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    b.publish("tuple.exchange", Message::new("k", vec![p as u8, (i % 256) as u8]))
                        .unwrap();
                }
            }));
        }
        let consumer = b.subscribe("q").unwrap();
        let mut got = 0;
        while got < n_producers * per {
            if consumer.recv_timeout(std::time::Duration::from_millis(200)).is_ok() {
                got += 1;
            } else {
                panic!("timed out after {got} messages");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, n_producers * per);
    }
}
