//! AMQP topic-pattern matching.
//!
//! Routing keys are dot-separated words (`"R.store.3"`). A binding pattern
//! may use `*` to match exactly one word and `#` to match zero or more
//! words, per the AMQP 0-9-1 topic exchange specification.

/// Does topic `key` match binding `pattern`?
///
/// Both are dot-separated word lists. `*` matches one word, `#` any number
/// (including zero). Matching is linear-time via the classic two-pointer
/// wildcard algorithm (backtracking to the last `#`).
pub fn topic_matches(pattern: &str, key: &str) -> bool {
    let pat: Vec<&str> = if pattern.is_empty() { vec![] } else { pattern.split('.').collect() };
    let key: Vec<&str> = if key.is_empty() { vec![] } else { key.split('.').collect() };

    let (mut p, mut k) = (0usize, 0usize);
    // Position of the last `#` seen and the key index it was tried at.
    let mut star: Option<(usize, usize)> = None;

    while k < key.len() {
        if p < pat.len() && (pat[p] == "*" || pat[p] == key[k]) {
            p += 1;
            k += 1;
        } else if p < pat.len() && pat[p] == "#" {
            // Tentatively match zero words; remember for backtracking.
            star = Some((p, k));
            p += 1;
        } else if let Some((sp, sk)) = star {
            // Extend the last `#` by one more word.
            p = sp + 1;
            k = sk + 1;
            star = Some((sp, sk + 1));
        } else {
            return false;
        }
    }
    // Remaining pattern words must all be `#`.
    pat[p..].iter().all(|w| *w == "#")
}

/// Validate a binding pattern: non-empty words, wildcards only as whole
/// words. Returns `false` for patterns like `"a.*b"` or `"a..b"`.
pub fn valid_pattern(pattern: &str) -> bool {
    if pattern.is_empty() {
        return true; // matches only the empty key
    }
    pattern
        .split('.')
        .all(|w| !w.is_empty() && (w == "*" || w == "#" || (!w.contains('*') && !w.contains('#'))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns_match_exactly() {
        assert!(topic_matches("a.b.c", "a.b.c"));
        assert!(!topic_matches("a.b.c", "a.b"));
        assert!(!topic_matches("a.b", "a.b.c"));
        assert!(!topic_matches("a.b.c", "a.b.d"));
    }

    #[test]
    fn star_matches_exactly_one_word() {
        assert!(topic_matches("a.*.c", "a.b.c"));
        assert!(topic_matches("*", "anything"));
        assert!(!topic_matches("*", "two.words"));
        assert!(!topic_matches("a.*", "a"));
        assert!(!topic_matches("a.*.c", "a.c"));
    }

    #[test]
    fn hash_matches_zero_or_more_words() {
        assert!(topic_matches("#", ""));
        assert!(topic_matches("#", "a"));
        assert!(topic_matches("#", "a.b.c"));
        assert!(topic_matches("a.#", "a"));
        assert!(topic_matches("a.#", "a.b.c"));
        assert!(topic_matches("#.c", "c"));
        assert!(topic_matches("#.c", "a.b.c"));
        assert!(!topic_matches("#.c", "a.b"));
    }

    #[test]
    fn combined_wildcards() {
        assert!(topic_matches("a.*.#", "a.b"));
        assert!(topic_matches("a.*.#", "a.b.c.d"));
        assert!(!topic_matches("a.*.#", "a"));
        assert!(topic_matches("#.store.*", "R.store.7"));
        assert!(!topic_matches("#.store.*", "R.join.7"));
    }

    #[test]
    fn empty_key_and_pattern() {
        assert!(topic_matches("", ""));
        assert!(!topic_matches("", "a"));
        assert!(!topic_matches("a", ""));
    }

    #[test]
    fn hash_backtracking_finds_late_anchors() {
        // `#` must be able to consume "x.c" so the trailing "c" anchors at
        // the last word, not the first.
        assert!(topic_matches("#.c", "c.x.c"));
        assert!(topic_matches("#.c.#", "a.c.b"));
    }

    #[test]
    fn validation() {
        assert!(valid_pattern("a.b.c"));
        assert!(valid_pattern("a.*.#"));
        assert!(valid_pattern(""));
        assert!(!valid_pattern("a..b"));
        assert!(!valid_pattern("a.*b"));
        assert!(!valid_pattern("a.b#"));
        assert!(!valid_pattern("."));
    }
}
