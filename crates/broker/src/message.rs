//! The unit of transport through the broker.

use bytes::Bytes;
use std::fmt;
use std::sync::Arc;

/// A broker message: an opaque payload plus the routing key the publisher
/// attached. Cloning is cheap — the payload is reference-counted `Bytes`,
/// the routing key is an interned `Arc<str>` and the trace headers share
/// one `Arc<[u64]>` — which matters because a fanout/topic exchange clones
/// the message once per matched queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Dot-separated routing key, e.g. `"R.join.2"`. `Arc<str>` so the
    /// per-queue clones a fanout produces are refcount bumps, not string
    /// allocations; publishers on a hot path can intern their keys once
    /// and reuse the same `Arc` for every publish.
    pub routing_key: Arc<str>,
    /// Opaque payload (the join engine puts encoded batch frames here).
    pub payload: Bytes,
    /// True when this message was requeued after an unacknowledged
    /// delivery (AMQP's `redelivered` flag).
    pub redelivered: bool,
    /// Trace-sampling headers: the router sequence numbers of sampled
    /// tuples inside the payload, sorted ascending. Carried out-of-band so
    /// queues can record enqueue/dequeue spans without decoding the
    /// payload; a batched frame may carry several sampled tuples, hence a
    /// list rather than the single slot it once was. `None` (the common
    /// case) for unsampled traffic.
    trace_seqs: Option<Arc<[u64]>>,
}

impl Message {
    /// Build a message. Accepts `&str`, `String` or a pre-interned
    /// `Arc<str>` routing key.
    pub fn new(routing_key: impl Into<Arc<str>>, payload: impl Into<Bytes>) -> Message {
        Message {
            routing_key: routing_key.into(),
            payload: payload.into(),
            redelivered: false,
            trace_seqs: None,
        }
    }

    /// Attach a single trace-sampling header (see [`Message::trace_seqs`]).
    /// Headers accumulate and stay sorted.
    pub fn with_trace_seq(self, seq: u64) -> Message {
        self.with_trace_seqs([seq])
    }

    /// Attach trace-sampling headers for every sampled tuple in the
    /// payload. The stored list is sorted and de-duplicated; attaching an
    /// empty set is a no-op.
    pub fn with_trace_seqs(mut self, seqs: impl IntoIterator<Item = u64>) -> Message {
        let mut all: Vec<u64> = self.trace_seqs.as_deref().unwrap_or(&[]).to_vec();
        all.extend(seqs);
        if all.is_empty() {
            return self;
        }
        all.sort_unstable();
        all.dedup();
        self.trace_seqs = Some(Arc::from(all.into_boxed_slice()));
        self
    }

    /// The sorted trace-sampling headers (empty for unsampled traffic).
    pub fn trace_seqs(&self) -> &[u64] {
        self.trace_seqs.as_deref().unwrap_or(&[])
    }

    /// Cheap handle to the trace headers, shared with every clone of this
    /// message — what the queues keep while the message itself is moved
    /// into the channel.
    pub(crate) fn trace_handle(&self) -> Option<Arc<[u64]>> {
        self.trace_seqs.clone()
    }

    /// Payload length in bytes (used by broker throughput accounting).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg[{} {}B]", self.routing_key, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let m = Message::new("a.b", vec![1u8, 2, 3]);
        assert_eq!(&*m.routing_key, "a.b");
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(Message::new("k", Vec::<u8>::new()).is_empty());
        assert!(m.trace_seqs().is_empty());
    }

    #[test]
    fn clone_shares_payload_and_key() {
        let m = Message::new("k", vec![0u8; 1024]).with_trace_seq(7);
        let c = m.clone();
        // Bytes clones share the same backing buffer; so do the key and
        // the trace headers.
        assert_eq!(m.payload.as_ptr(), c.payload.as_ptr());
        assert!(Arc::ptr_eq(&m.routing_key, &c.routing_key));
        assert_eq!(m.trace_seqs.as_ref().map(Arc::as_ptr), c.trace_seqs.as_ref().map(Arc::as_ptr));
    }

    #[test]
    fn interned_key_is_reusable() {
        let key: Arc<str> = Arc::from("R.store.1");
        let a = Message::new(Arc::clone(&key), vec![1u8]);
        let b = Message::new(key, vec![2u8]);
        assert!(Arc::ptr_eq(&a.routing_key, &b.routing_key), "no per-publish allocation");
    }

    #[test]
    fn trace_headers_sort_dedup_and_accumulate() {
        let m = Message::new("k", vec![]).with_trace_seqs([9, 3, 3]).with_trace_seq(5);
        assert_eq!(m.trace_seqs(), &[3, 5, 9]);
        let untouched = Message::new("k", vec![]).with_trace_seqs(std::iter::empty());
        assert!(untouched.trace_seqs().is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Message::new("x.y", vec![9u8]).to_string(), "msg[x.y 1B]");
    }
}
