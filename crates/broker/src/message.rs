//! The unit of transport through the broker.

use bytes::Bytes;
use std::fmt;

/// A broker message: an opaque payload plus the routing key the publisher
/// attached. Cloning is cheap (`Bytes` is reference-counted), which matters
/// because a fanout/topic exchange clones the message once per matched
/// queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Dot-separated routing key, e.g. `"R.join.2"`.
    pub routing_key: String,
    /// Opaque payload (the join engine puts encoded `StreamMessage`s here).
    pub payload: Bytes,
    /// True when this message was requeued after an unacknowledged
    /// delivery (AMQP's `redelivered` flag).
    pub redelivered: bool,
    /// Trace-sampling header: the router sequence number of a sampled
    /// tuple, set by publishers that participate in per-tuple tracing.
    /// Carried out-of-band so queues can record enqueue/dequeue spans
    /// without decoding the payload. `None` for unsampled traffic.
    pub trace_seq: Option<u64>,
}

impl Message {
    /// Build a message.
    pub fn new(routing_key: impl Into<String>, payload: impl Into<Bytes>) -> Message {
        Message {
            routing_key: routing_key.into(),
            payload: payload.into(),
            redelivered: false,
            trace_seq: None,
        }
    }

    /// Attach a trace-sampling header (see [`Message::trace_seq`]).
    pub fn with_trace_seq(mut self, seq: u64) -> Message {
        self.trace_seq = Some(seq);
        self
    }

    /// Payload length in bytes (used by broker throughput accounting).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg[{} {}B]", self.routing_key, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let m = Message::new("a.b", vec![1u8, 2, 3]);
        assert_eq!(m.routing_key, "a.b");
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(Message::new("k", Vec::<u8>::new()).is_empty());
    }

    #[test]
    fn clone_shares_payload() {
        let m = Message::new("k", vec![0u8; 1024]);
        let c = m.clone();
        // Bytes clones share the same backing buffer.
        assert_eq!(m.payload.as_ptr(), c.payload.as_ptr());
    }

    #[test]
    fn display() {
        assert_eq!(Message::new("x.y", vec![9u8]).to_string(), "msg[x.y 1B]");
    }
}
