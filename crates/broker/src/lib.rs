//! An in-process message broker implementing the AMQ model — the substrate
//! the original systems obtained from RabbitMQ (thesis implementation) or
//! Storm's streams (paper implementation).
//!
//! The model's components map one-to-one onto this crate:
//!
//! - **Exchanges** ([`exchange`]) receive published messages and route them
//!   by routing key: *direct* (exact match), *topic* (`*`/`#` patterns,
//!   [`pattern`]) or *fanout* (unconditional).
//! - **Queues** ([`queue`]) buffer routed messages until consumed. Queues
//!   are bounded; publishing into a full queue blocks, which is the
//!   backpressure mechanism of the live runtime.
//! - **Bindings** connect an exchange to a queue under a pattern.
//! - **Consumer groups** are realised the Spring-Cloud-Stream way: one
//!   shared queue per group (competing consumers — the *queuing* model),
//!   or one exclusive auto-named queue per anonymous subscriber (the
//!   *publish-subscribe* model).
//!
//! Delivery guarantees relevant to the join engine: a single queue is FIFO
//! per producer (crossbeam channels preserve per-sender order), and a
//! consumer sees messages of one producer in publication order — the
//! *pairwise FIFO* property (Definition 8) that the ordering protocol
//! builds on. No global cross-queue order is promised; that is exactly the
//! disorder the order-consistent protocol must (and does) repair.

#![warn(missing_docs)]

pub mod broker;
pub mod exchange;
pub mod message;
pub mod pattern;
pub mod queue;

pub use broker::{Broker, BrokerStats, QueueStats};
pub use exchange::ExchangeKind;
pub use message::Message;
pub use queue::{Consumer, Delivery, RecvError};
