//! The virtual-time simulation driver.
//!
//! Long-horizon experiments (the 60-minute dynamic-scaling runs of E1/E2)
//! cannot execute in wall-clock time; this driver advances a virtual clock
//! through four interleaved event streams — tuple arrivals, punctuation
//! ticks, autoscaler control-loop runs, and time-series samples — feeding
//! the same [`BicliqueEngine`] the correctness tests exercise.

use crate::engine::BicliqueEngine;
use bistream_cluster::hpa::Hpa;
use bistream_cluster::meter::{ResourceMeter, UtilizationTracker};
use bistream_types::error::Result;
use bistream_types::journal::Event;
use bistream_types::perf::PerfReport;
use bistream_types::recorder::RunHealth;
use bistream_types::registry::{RegistrySnapshot, Sampler};
use bistream_types::slo::SloSpec;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::trace::Trace;
use bistream_types::tuple::Tuple;
use bistream_types::watchdog::WatchdogConfig;
use serde::Serialize;

/// A source of timestamped tuples for the driver (implemented by the
/// workload crate's interleaver via a thin adapter; defined here so the
/// engine crate does not depend on workload generation).
pub trait TupleFeed {
    /// Timestamp of the next tuple, or `None` when the feed is exhausted.
    fn peek_ts(&self) -> Option<Ts>;
    /// Produce the next tuple.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// A feed over a pre-materialised tuple list (used by tests).
#[derive(Debug)]
pub struct VecFeed {
    tuples: std::collections::VecDeque<Tuple>,
}

impl VecFeed {
    /// Wrap a timestamp-ordered tuple list.
    pub fn new(tuples: Vec<Tuple>) -> VecFeed {
        VecFeed { tuples: tuples.into() }
    }
}

impl TupleFeed for VecFeed {
    fn peek_ts(&self) -> Option<Ts> {
        self.tuples.front().map(|t| t.ts())
    }
    fn next_tuple(&mut self) -> Option<Tuple> {
        self.tuples.pop_front()
    }
}

/// Configuration of a dynamic-scaling simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Virtual run length in ms.
    pub duration_ms: Ts,
    /// Time-series sampling interval in ms.
    pub sample_interval_ms: Ts,
    /// Autoscale the R-side joiner deployment.
    pub scale_r: bool,
    /// Autoscale the S-side joiner deployment.
    pub scale_s: bool,
    /// Pod startup latency: a scale-*out* decision takes effect this many
    /// ms after the HPA issues it (container pull + boot in the real
    /// cluster). Scale-ins apply immediately. While a side has a pending
    /// scale-out, the HPA holds further decisions for it (modelling
    /// Kubernetes ignoring not-yet-ready pods).
    pub pod_startup_delay_ms: Ts,
    /// Service-level objectives graded over the run's scrape series; when
    /// `None`, no SLO verdicts are produced (the watchdog still runs).
    pub slo: Option<SloSpec>,
    /// Progress-watchdog tuning (stall-tick threshold).
    pub watchdog: WatchdogConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_ms: 60_000,
            sample_interval_ms: 1_000,
            scale_r: true,
            scale_s: true,
            pod_startup_delay_ms: 0,
            slo: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// One row of the simulation time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimSample {
    /// Sample time (ms of virtual time).
    pub t_ms: Ts,
    /// Measured ingest rate over the last interval (tuples/s, both
    /// relations combined).
    pub ingest_rate: f64,
    /// Active R joiners.
    pub r_replicas: usize,
    /// Active S joiners.
    pub s_replicas: usize,
    /// Mean CPU utilization of R joiners over the last interval (1.0 =
    /// one full vCPU).
    pub r_cpu: f64,
    /// Mean CPU utilization of S joiners.
    pub s_cpu: f64,
    /// Mean live memory per R joiner, bytes.
    pub r_mem_mean: u64,
    /// Mean live memory per S joiner, bytes.
    pub s_mem_mean: u64,
    /// Cumulative join results.
    pub results: u64,
    /// Cumulative ingested tuples.
    pub ingested: u64,
}

/// Outcome of a simulation run.
#[derive(Debug, Serialize)]
pub struct SimOutcome {
    /// The sampled time series.
    pub samples: Vec<SimSample>,
    /// Scale events `(t_ms, side, before, after)`.
    pub scale_events: Vec<(Ts, char, usize, usize)>,
    /// Registry scrapes taken on the same sample ticks as `samples` —
    /// every labeled series (per-joiner, per-router, per-pod, engine)
    /// at virtual-time resolution.
    pub metric_series: Vec<RegistrySnapshot>,
    /// The engine's structured event journal, drained at the end of the
    /// run (bounded: oldest events are dropped beyond the ring capacity).
    pub events: Vec<Event>,
    /// Completed per-tuple traces, drained from the engine's tracer at the
    /// end of the run and sorted by trace id (empty unless the engine was
    /// built with a sampling tracer). Tuples still buffered when the
    /// horizon ends surface as traces with `complete == false`.
    pub traces: Vec<Trace>,
    /// Queueing-model analysis of `metric_series`: per-unit arrival rate,
    /// service time, predicted vs observed utilization (see
    /// [`bistream_types::perf`]).
    pub perf: PerfReport,
    /// SLO verdicts, stall-watchdog findings and (on breach) the
    /// flight-recorder bundle, graded over the same `metric_series`.
    pub health: RunHealth,
}

/// Run a dynamic-scaling simulation: drive `feed` through `engine` for
/// `cfg.duration_ms` of virtual time, autoscaling each enabled side with
/// its own instance of `hpa_template`'s configuration.
pub fn run_dynamic_scaling(
    mut engine: BicliqueEngine,
    feed: &mut dyn TupleFeed,
    hpa_template: bistream_cluster::HpaConfig,
    cfg: &SimConfig,
) -> Result<SimOutcome> {
    let punct_every = engine.config().punctuation_interval_ms;
    let control_every = hpa_template.period_ms;
    let mut hpa_r = Hpa::new(hpa_template);
    let mut hpa_s = Hpa::new(hpa_template);
    let mut track_r = UtilizationTracker::new();
    let mut track_s = UtilizationTracker::new();

    let mut samples = Vec::new();
    let mut scale_events = Vec::new();
    let mut sampler = Sampler::new(engine.observability().registry.clone(), cfg.sample_interval_ms);
    // Pending scale-outs per side: (apply_at, target_replicas).
    let mut pending: [Option<(Ts, usize)>; 2] = [None, None];
    let mut next_punct: Ts = punct_every;
    let mut next_control: Ts = control_every;
    let mut next_sample: Ts = cfg.sample_interval_ms;
    let mut last_sampled_ingest: u64 = 0;

    // Per-interval running means of utilization feed both the autoscaler
    // and the sample rows; scrapes happen on control ticks, samples reuse
    // the latest scrape.
    let mut last_cpu = (0.0f64, 0.0f64);

    loop {
        let tuple_ts = feed.peek_ts().unwrap_or(Ts::MAX);
        let t = tuple_ts.min(next_punct).min(next_control).min(next_sample);
        if t >= cfg.duration_ms {
            break;
        }

        // Apply any pending scale-outs that have finished booting.
        for (i, side) in [Rel::R, Rel::S].into_iter().enumerate() {
            if let Some((apply_at, n)) = pending[i] {
                if t >= apply_at {
                    let current = engine.replicas(side);
                    engine.scale_to(side, n, t)?;
                    scale_events.push((t, if side == Rel::R { 'R' } else { 'S' }, current, n));
                    pending[i] = None;
                }
            }
        }

        if t == tuple_ts {
            let Some(tuple) = feed.next_tuple() else { break };
            engine.ingest(&tuple, t)?;
        } else if t == next_punct {
            engine.punctuate(t)?;
            next_punct += punct_every;
        } else if t == next_control {
            for (i, (side, hpa, tracker, enabled)) in [
                (Rel::R, &mut hpa_r, &mut track_r, cfg.scale_r),
                (Rel::S, &mut hpa_s, &mut track_s, cfg.scale_s),
            ]
            .into_iter()
            .enumerate()
            {
                let meters = engine.pod_meters(side);
                let borrowed: Vec<(usize, &ResourceMeter)> =
                    meters.iter().map(|(id, m)| (*id, m.as_ref())).collect();
                let pod_samples = tracker.scrape(t, &borrowed);
                let mean_cpu = if pod_samples.is_empty() {
                    0.0
                } else {
                    pod_samples.iter().map(|s| s.cpu_utilization).sum::<f64>()
                        / pod_samples.len() as f64
                };
                match side {
                    Rel::R => last_cpu.0 = mean_cpu,
                    Rel::S => last_cpu.1 = mean_cpu,
                }
                // Hold decisions while this side's pods are still booting.
                if enabled && pending[i].is_none() {
                    let current = engine.replicas(side);
                    let desired = hpa.evaluate(t, current, &pod_samples);
                    if desired > current && cfg.pod_startup_delay_ms > 0 {
                        pending[i] = Some((t + cfg.pod_startup_delay_ms, desired));
                    } else if desired != current {
                        engine.scale_to(side, desired, t)?;
                        scale_events.push((
                            t,
                            if side == Rel::R { 'R' } else { 'S' },
                            current,
                            desired,
                        ));
                    }
                }
            }
            next_control += control_every;
        } else {
            // Sample tick.
            sampler.force_sample(t);
            let snap = engine.stats();
            let rate = (snap.ingested - last_sampled_ingest) as f64
                / (cfg.sample_interval_ms as f64 / 1_000.0);
            last_sampled_ingest = snap.ingested;
            let (r_n, s_n) = (engine.replicas(Rel::R), engine.replicas(Rel::S));
            samples.push(SimSample {
                t_ms: t,
                ingest_rate: rate,
                r_replicas: r_n,
                s_replicas: s_n,
                r_cpu: last_cpu.0,
                s_cpu: last_cpu.1,
                r_mem_mean: engine.memory_bytes(Rel::R) / r_n as u64,
                s_mem_mean: engine.memory_bytes(Rel::S) / s_n as u64,
                results: snap.results,
                ingested: snap.ingested,
            });
            next_sample += cfg.sample_interval_ms;
        }
    }
    // Final flush so buffered tuples are not lost from the counters, then
    // one shared terminal scrape before anything is torn down.
    engine.punctuate(cfg.duration_ms)?;
    let metric_series = bistream_types::metrics::finalize_scrape_series(
        &engine.observability().registry,
        cfg.duration_ms,
        sampler.into_series(),
    );
    let events = engine.observability().journal.drain();
    let tracer = engine.observability().tracer.clone();
    tracer.flush_pending();
    let mut traces = tracer.drain();
    traces.sort_by_key(|t| t.id);

    let perf = bistream_types::perf::analyze(&metric_series);
    let health = bistream_types::recorder::grade_run(
        cfg.slo.as_ref(),
        &cfg.watchdog,
        &metric_series,
        &events,
        &traces,
    );
    Ok(SimOutcome { samples, scale_events, metric_series, events, traces, perf, health })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, RoutingStrategy};
    use bistream_cluster::{CostModel, HpaConfig, MetricTarget};
    use bistream_types::predicate::JoinPredicate;
    use bistream_types::value::Value;
    use bistream_types::window::WindowSpec;

    fn feed_at_rate(per_sec: u64, duration_ms: Ts) -> VecFeed {
        let gap = 1_000 / per_sec;
        let mut tuples = Vec::new();
        let mut ts = 0;
        let mut k = 0i64;
        while ts < duration_ms {
            let rel = if k % 2 == 0 { Rel::R } else { Rel::S };
            // Consecutive R/S tuples share a key so the equi join matches.
            tuples.push(Tuple::new(rel, ts, vec![Value::Int((k / 2) % 50)]));
            ts += gap;
            k += 1;
        }
        VecFeed::new(tuples)
    }

    fn engine(ordering: bool) -> BicliqueEngine {
        let cfg = EngineConfig {
            r_joiners: 1,
            s_joiners: 1,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(5_000),
            routing: RoutingStrategy::Hash,
            archive_period_ms: 500,
            punctuation_interval_ms: 20,
            ordering,
            seed: 9,
            batch_size: 1,
            adaptive: Default::default(),
        };
        BicliqueEngine::builder(cfg)
            .cost_model(CostModel::thesis_operating_point())
            .build()
            .unwrap()
    }

    fn hpa_cfg() -> HpaConfig {
        HpaConfig {
            min_replicas: 1,
            max_replicas: 3,
            target: MetricTarget::CpuUtilization(0.8),
            period_ms: 5_000,
            tolerance: 0.1,
            scale_down_stabilization_ms: 20_000,
        }
    }

    #[test]
    fn overloaded_run_scales_out() {
        // 800 t/s combined (400 per side) against the thesis cost model
        // overloads one joiner per side; the HPA must add replicas.
        let mut feed = feed_at_rate(800, 60_000);
        let cfg =
            SimConfig { duration_ms: 60_000, sample_interval_ms: 5_000, ..Default::default() };
        let out = run_dynamic_scaling(engine(true), &mut feed, hpa_cfg(), &cfg).unwrap();
        assert!(!out.scale_events.is_empty(), "expected scale-out events");
        let last = out.samples.last().unwrap();
        assert!(last.r_replicas > 1 || last.s_replicas > 1);
        assert!(last.results > 0, "join kept producing during scaling");
        // Sampled rate reflects the offered 400 t/s combined.
        // The integer millisecond gap (1000/800 → 1 ms) makes the
        // effective offered rate 1000 t/s.
        let mid = &out.samples[out.samples.len() / 2];
        assert!((mid.ingest_rate - 1_000.0).abs() < 200.0, "rate {}", mid.ingest_rate);
    }

    #[test]
    fn idle_run_holds_at_min() {
        let mut feed = feed_at_rate(10, 30_000);
        let cfg =
            SimConfig { duration_ms: 30_000, sample_interval_ms: 5_000, ..Default::default() };
        let out = run_dynamic_scaling(engine(true), &mut feed, hpa_cfg(), &cfg).unwrap();
        assert!(out.scale_events.is_empty(), "{:?}", out.scale_events);
        assert!(out.samples.iter().all(|s| s.r_replicas == 1 && s.s_replicas == 1));
    }

    #[test]
    fn metric_series_and_journal_ride_along_with_samples() {
        let mut feed = feed_at_rate(100, 10_000);
        let cfg = SimConfig {
            duration_ms: 10_000,
            sample_interval_ms: 2_000,
            scale_r: false,
            scale_s: false,
            ..Default::default()
        };
        let out = run_dynamic_scaling(engine(true), &mut feed, hpa_cfg(), &cfg).unwrap();
        // One scrape per sample tick plus the terminal scrape.
        assert_eq!(out.metric_series.len(), out.samples.len() + 1);
        for (snap, sample) in out.metric_series.iter().zip(&out.samples) {
            assert_eq!(snap.at, sample.t_ms, "scrape shares the sample tick");
        }
        let last = out.metric_series.last().unwrap();
        assert_eq!(last.at, 10_000);
        // Ingest keeps running between the last sample tick and the
        // terminal scrape, so the counter can only have grown.
        let ingested =
            last.counter("bistream_tuples_ingested_total", &[("engine", "engine")]).unwrap();
        assert!(ingested >= out.samples.last().unwrap().ingested);
        assert!(last.get("bistream_joiner_stored_total", &[("joiner", "R0")]).is_some());
        // Journal events carry virtual-time stamps within the horizon.
        assert!(!out.events.is_empty());
        assert!(out.events.iter().any(|e| e.kind.tag() == "TupleStored"));
        assert!(out.events.iter().any(|e| e.kind.tag() == "JoinEmitted"));
        assert!(out.events.iter().all(|e| e.ts <= 10_000));
    }

    #[test]
    fn tracing_run_collects_complete_traces() {
        use bistream_types::registry::Observability;
        use bistream_types::trace::HopKind;
        let mut feed = feed_at_rate(100, 5_000);
        let cfg = EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate: JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            window: WindowSpec::sliding(2_000),
            routing: RoutingStrategy::Hash,
            archive_period_ms: 500,
            punctuation_interval_ms: 20,
            ordering: true,
            seed: 9,
            batch_size: 1,
            adaptive: Default::default(),
        };
        let engine = BicliqueEngine::builder(cfg)
            .observability(Observability::with_tracing(10))
            .build()
            .unwrap();
        let sim = SimConfig {
            duration_ms: 5_000,
            sample_interval_ms: 1_000,
            scale_r: false,
            scale_s: false,
            ..Default::default()
        };
        let out = run_dynamic_scaling(engine, &mut feed, hpa_cfg(), &sim).unwrap();
        assert!(!out.traces.is_empty(), "1-in-10 sampling over 500 tuples");
        let complete = out.traces.iter().filter(|t| t.complete).count();
        assert!(complete > 0, "punctuation releases sampled tuples");
        for tr in out.traces.iter().filter(|t| t.complete) {
            assert!(tr.has_hop(HopKind::Route), "trace {} starts at a router", tr.id);
            assert!(tr.has_hop(HopKind::Store) || tr.has_hop(HopKind::Probe));
            for timing in tr.hop_timings() {
                // Ts is unsigned, but make the non-negativity contract explicit.
                assert!(timing.wait <= tr.end_to_end());
            }
        }
        // Trace ids are router sequence numbers: sorted and unique.
        for w in out.traces.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn samples_cover_duration_with_memory_readings() {
        let mut feed = feed_at_rate(100, 20_000);
        let cfg = SimConfig {
            duration_ms: 20_000,
            sample_interval_ms: 2_000,
            scale_r: false,
            scale_s: false,
            ..Default::default()
        };
        let out = run_dynamic_scaling(engine(true), &mut feed, hpa_cfg(), &cfg).unwrap();
        // Samples land at 2s, 4s, …, 18s — the tick coinciding with the
        // end of the run is excluded.
        assert_eq!(out.samples.len(), 9);
        assert!(out.samples.last().unwrap().r_mem_mean > 0);
        // Time is monotone.
        for w in out.samples.windows(2) {
            assert!(w[0].t_ms < w[1].t_ms);
            assert!(w[0].ingested <= w[1].ingested);
        }
    }
}
