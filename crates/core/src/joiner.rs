//! The joiner core: one processing unit of the biclique.
//!
//! A joiner serves exactly one side. Messages reach it through the reorder
//! buffer (unless the ordering protocol is disabled) and split into the
//! two execution branches of the model:
//!
//! - **Store branch** — own-relation tuples are inserted into the chained
//!   in-memory index under their join key.
//! - **Join branch** — opposite-relation tuples first trigger Theorem-1
//!   discarding, then probe the index with the predicate's plan; every
//!   match is emitted as a [`JoinResult`].
//!
//! Every operation charges the unit's [`ResourceMeter`] through the
//! [`CostModel`], and the live-state byte count is pushed to the meter
//! after every mutation — this is what the autoscaler sees.

use crate::layout::JoinerId;
use crate::ordering::{Released, ReorderBuffer};
use bistream_cluster::{CostModel, ResourceMeter};
use bistream_index::{ChainedIndex, IndexKind, IndexObs};
use bistream_types::audit::Auditor;
use bistream_types::batch::BatchMessage;
use bistream_types::error::Result;
use bistream_types::journal::{EventJournal, EventKind};
use bistream_types::metrics::{Counter, Gauge, Histogram};
use bistream_types::predicate::{JoinPredicate, ProbePlan};
use bistream_types::punct::{Purpose, RouterId, SeqNo, StreamMessage};
use bistream_types::registry::Observability;
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::trace::{HopKind, Tracer};
use bistream_types::tuple::{JoinResult, Tuple};
use bistream_types::value::Value;
use bistream_types::window::WindowSpec;
use serde::Serialize;
use std::sync::Arc;

/// Counters of one joiner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct JoinerStats {
    /// Tuples stored.
    pub stored: u64,
    /// Join-branch tuples processed.
    pub probes: u64,
    /// Key-matched candidates examined.
    pub candidates: u64,
    /// Join results emitted.
    pub results: u64,
    /// Tuples discarded by expiry.
    pub expired: u64,
}

/// Registry handles and journal hook for one joiner, created by
/// [`JoinerCore::attach_obs`]. Every series carries `joiner="<side><id>"`
/// (e.g. `joiner="R3"`), matching the chained index's [`IndexObs`] label so
/// one scrape correlates the unit's branch counters with its window state.
struct JoinerMetrics {
    stored: Arc<Counter>,
    probes: Arc<Counter>,
    candidates: Arc<Counter>,
    results: Arc<Counter>,
    expired: Arc<Counter>,
    /// Live stored-tuple count — the load-imbalance signal the migration
    /// experiments (E9/E10) read per unit.
    stored_tuples: Arc<Gauge>,
    /// Current reorder-buffer depth — tuples parked awaiting the
    /// watermark, the joiner-side backpressure signal.
    reorder_depth: Arc<Gauge>,
    /// High-water mark of the reorder-buffer depth.
    reorder_depth_max: Arc<Gauge>,
    /// Punctuation-frontier lag: fastest router frontier minus watermark.
    frontier_lag: Arc<Gauge>,
    /// The reorder buffer's watermark (minimum router frontier) — the
    /// progress signal the stall watchdog pairs with `reorder_depth`.
    watermark: Arc<Gauge>,
    /// Per-joiner result latency (event-time probe ts → emit).
    latency_ms: Arc<Histogram>,
    journal: EventJournal,
    unit: u32,
}

impl JoinerMetrics {
    fn register(obs: &Observability, side: Rel, unit: u32) -> JoinerMetrics {
        let joiner = format!("{side}{unit}");
        let labels: &[(&str, &str)] = &[("joiner", &joiner)];
        let reg = &obs.registry;
        JoinerMetrics {
            stored: reg.counter(bistream_types::metric_names::JOINER_STORED_TOTAL, labels),
            probes: reg.counter(bistream_types::metric_names::JOINER_PROBES_TOTAL, labels),
            candidates: reg.counter(bistream_types::metric_names::JOINER_CANDIDATES_TOTAL, labels),
            results: reg.counter(bistream_types::metric_names::JOINER_RESULTS_TOTAL, labels),
            expired: reg.counter(bistream_types::metric_names::JOINER_EXPIRED_TOTAL, labels),
            stored_tuples: reg.gauge(bistream_types::metric_names::JOINER_STORED_TUPLES, labels),
            reorder_depth: reg.gauge(bistream_types::metric_names::JOINER_REORDER_DEPTH, labels),
            reorder_depth_max: reg
                .gauge(bistream_types::metric_names::JOINER_REORDER_DEPTH_MAX, labels),
            frontier_lag: reg.gauge(bistream_types::metric_names::JOINER_FRONTIER_LAG, labels),
            watermark: reg.gauge(bistream_types::metric_names::JOINER_WATERMARK, labels),
            latency_ms: reg
                .histogram(bistream_types::metric_names::JOINER_RESULT_LATENCY_MS, labels),
            journal: obs.journal.clone(),
            unit,
        }
    }
}

/// One processing unit of the biclique.
pub struct JoinerCore {
    id: JoinerId,
    side: Rel,
    predicate: JoinPredicate,
    store_attr: usize,
    index: ChainedIndex,
    reorder: Option<ReorderBuffer>,
    meter: Arc<ResourceMeter>,
    cost: CostModel,
    stats: JoinerStats,
    metrics: Option<JoinerMetrics>,
    /// Event-time high watermark over processed tuples — the stamp for
    /// journal events that have no tuple of their own (punctuations).
    last_ts: Ts,
    /// Scratch buffer reused across handle() calls.
    released: Vec<Released>,
    /// Per-tuple tracer, shared through [`JoinerCore::attach_obs`].
    tracer: Tracer,
    /// Processing time (virtual ms in the simulator, wall ms live), set by
    /// the driver via [`JoinerCore::set_now`] before each handle/flush —
    /// the stamp for store/probe/emit spans, which makes reorder-buffer
    /// wait visible as the dequeue→store gap.
    now: Ts,
    /// Cached `"<side><unit>"` label for trace spans.
    unit_label: String,
    /// Cap on the same-purpose runs the batched path processes at once
    /// (1 = per-tuple processing, identical to [`JoinerCore::handle`]).
    batch_size: usize,
    /// Invariant auditor (test/debug harnesses): checks channel FIFO and
    /// release order on every message, and Theorem 1 via the index.
    auditor: Option<Auditor>,
    /// Epoch-gated expiry (the sharded runtime's per-shard mode): expiry
    /// scans go through [`ChainedIndex::advance_epoch`] — at most one
    /// chain walk per archive period — instead of scanning on every
    /// store/probe run. Results are unaffected (probes window-check every
    /// candidate); only state-residency timing changes.
    epoch_expiry: bool,
}

impl JoinerCore {
    /// Create a joiner for `side`.
    ///
    /// `ordering` enables the reorder buffer; `routers` lists the live
    /// routers and their current counters so the buffer's watermark starts
    /// correct (essential for units added by scale-out).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: JoinerId,
        side: Rel,
        predicate: JoinPredicate,
        window: WindowSpec,
        archive_period_ms: Ts,
        ordering: bool,
        routers: &[(RouterId, SeqNo)],
        cost: CostModel,
    ) -> JoinerCore {
        let kind = IndexKind::for_predicate(&predicate);
        let reorder = ordering.then(|| {
            let mut buf = ReorderBuffer::new();
            for &(r, seq) in routers {
                buf.register_router(r, seq);
            }
            buf
        });
        let store_attr = predicate.attr_of(side);
        JoinerCore {
            unit_label: format!("{side}{}", id.0),
            id,
            side,
            predicate,
            store_attr,
            index: ChainedIndex::new(kind, window, archive_period_ms),
            reorder,
            meter: ResourceMeter::shared(),
            cost,
            stats: JoinerStats::default(),
            metrics: None,
            last_ts: 0,
            released: Vec::new(),
            tracer: Tracer::disabled(),
            now: 0,
            batch_size: 1,
            auditor: None,
            epoch_expiry: false,
        }
    }

    /// Switch Theorem-1 discarding to epoch-gated mode (see the
    /// `epoch_expiry` field). The sharded runtime enables this per shard;
    /// the broker pipeline and the simulator keep eager per-run expiry.
    pub fn set_epoch_expiry(&mut self, on: bool) {
        self.epoch_expiry = on;
    }

    /// One Theorem-1 expiry pass witnessed by `ts`, honouring the
    /// configured expiry mode.
    fn expire_at(&mut self, ts: Ts) -> usize {
        if self.epoch_expiry {
            self.index.advance_epoch(ts)
        } else {
            self.index.expire(ts)
        }
    }

    /// Attach the invariant [`Auditor`]: every incoming message is checked
    /// for per-channel FIFO (Definition 8), every reorder-buffer release
    /// for order consistency against the watermark and the channel's
    /// punctuation frontier (Definition 7), and every wholesale index
    /// discard against Theorem 1.
    pub fn set_auditor(&mut self, auditor: Auditor) {
        self.index.set_auditor(auditor.clone(), self.unit_label.clone());
        self.auditor = Some(auditor);
    }

    /// Set the batched path's run cap (clamped to at least 1). Store and
    /// join releases are grouped into same-purpose runs of at most this
    /// many tuples and processed through the index's batch entry points;
    /// `1` reproduces per-tuple processing exactly.
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1);
    }

    /// The batched path's run cap.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Attach the unified observability layer: registers this unit's
    /// per-joiner series (label `joiner="<side><id>"`), its resource meter
    /// (label `pod="<side><id>"`), hooks the chained index's [`IndexObs`]
    /// in, and starts recording journal events (`TupleStored`,
    /// `JoinEmitted`, `PunctuationAdvanced`) stamped with event time.
    pub fn attach_obs(&mut self, obs: &Observability) {
        let unit = self.id.0;
        let pod = format!("{}{}", self.side, unit);
        self.meter.register_into(&obs.registry, &[("pod", &pod)]);
        self.index.set_obs(IndexObs::register(obs, self.side, unit));
        self.metrics = Some(JoinerMetrics::register(obs, self.side, unit));
        self.tracer = obs.tracer.clone();
        self.sync_observables();
    }

    /// Advance this unit's processing clock — the timestamp for trace
    /// spans recorded by store/probe/emit. The engine calls this from its
    /// pump (virtual time); the live pipeline's joiner threads call it
    /// with wall time before each handled message.
    pub fn set_now(&mut self, now: Ts) {
        self.now = self.now.max(now);
        if let Some(a) = &self.auditor {
            a.set_now(self.now);
        }
    }

    /// Push the point-in-time gauges (memory, stored tuples, reorder
    /// depth/lag) — called after every batch of work.
    fn sync_observables(&mut self) {
        let s = self.index.stats();
        self.meter.set_memory_bytes(s.bytes as u64);
        if let Some(m) = &self.metrics {
            m.stored_tuples.set(s.tuples as u64);
            if let Some(buf) = &self.reorder {
                m.reorder_depth.set(buf.depth() as u64);
                m.reorder_depth_max.set(buf.stats().max_depth as u64);
                m.frontier_lag.set(buf.frontier_lag());
                m.watermark.set(buf.watermark().unwrap_or(0));
            }
        }
    }

    /// This unit's id.
    pub fn id(&self) -> JoinerId {
        self.id
    }

    /// The side this unit stores.
    pub fn side(&self) -> Rel {
        self.side
    }

    /// The unit's resource meter (shared with the autoscaler).
    pub fn meter(&self) -> Arc<ResourceMeter> {
        Arc::clone(&self.meter)
    }

    /// The per-joiner result-latency histogram, once observability is
    /// attached. Latency is known at emit time, not inside the joiner, so
    /// the engine records into this handle from its pump.
    pub fn latency_histogram(&self) -> Option<Arc<Histogram>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.latency_ms))
    }

    /// Counters.
    pub fn stats(&self) -> JoinerStats {
        self.stats
    }

    /// Live window state statistics.
    pub fn index_stats(&self) -> bistream_index::ChainStats {
        self.index.stats()
    }

    /// Reorder-buffer statistics, if the protocol is enabled.
    pub fn reorder_stats(&self) -> Option<crate::ordering::ReorderStats> {
        self.reorder.as_ref().map(|b| b.stats())
    }

    /// The reorder buffer's watermark — the minimum punctuation frontier
    /// over all registered routers, i.e. the sequence number below which
    /// every tuple has been released. `None` when ordering is disabled.
    /// The chaos checkpoint uses this as the recovery frontier.
    pub fn reorder_watermark(&self) -> Option<SeqNo> {
        self.reorder.as_ref().and_then(|b| b.watermark())
    }

    /// Register a router that appeared after this joiner was created.
    pub fn register_router(&mut self, router: RouterId, frontier: SeqNo) {
        if let Some(buf) = &mut self.reorder {
            buf.register_router(router, frontier);
        }
    }

    /// Deregister a retired router (after its final punctuation has been
    /// processed), emitting anything the watermark shift releases.
    pub fn deregister_router<F: FnMut(JoinResult)>(
        &mut self,
        router: RouterId,
        emit: &mut F,
    ) -> Result<()> {
        if let Some(buf) = &mut self.reorder {
            let mut released = std::mem::take(&mut self.released);
            buf.deregister_router(router, &mut released);
            if let Some(a) = &self.auditor {
                let wm = buf.watermark().unwrap_or(SeqNo::MAX);
                for r in &released {
                    a.release(&self.unit_label, r.router, r.seq, wm);
                }
            }
            for r in released.drain(..) {
                self.process(r.purpose, r.seq, r.tuple, emit)?;
            }
            self.released = released;
            self.sync_observables();
        }
        Ok(())
    }

    /// Serialise this unit's stored window state (see
    /// [`bistream_index::snapshot()`]). Buffered-but-unreleased tuples in
    /// the reorder buffer are NOT included — snapshot at a quiesce point
    /// (after a punctuation has drained the buffer) for a complete image.
    pub fn snapshot_state(&self) -> bytes::Bytes {
        bistream_index::snapshot(&self.index)
    }

    /// Restore stored window state from a snapshot taken by a unit with
    /// the same predicate/window/period. Returns tuples restored.
    pub fn restore_state(&mut self, blob: impl bytes::Buf) -> Result<usize> {
        let n = bistream_index::restore(&mut self.index, blob)?;
        self.sync_observables();
        Ok(n)
    }

    /// Handle one incoming message, emitting any produced join results.
    ///
    /// With the ordering protocol on, data messages may be buffered and
    /// processed later (on a punctuation); the emit callback therefore
    /// fires zero or more times per call.
    pub fn handle<F: FnMut(JoinResult)>(&mut self, msg: StreamMessage, emit: &mut F) -> Result<()> {
        self.meter.charge_cpu_us(self.cost.ingest_us);
        match &mut self.reorder {
            Some(buf) => {
                debug_assert!(self.released.is_empty());
                let punct = match &msg {
                    StreamMessage::Punct(p) => Some((p.router, p.seq)),
                    _ => None,
                };
                if let Some(a) = &self.auditor {
                    match &msg {
                        StreamMessage::Data { router, seq, .. } => {
                            a.channel_recv(&self.unit_label, *router, *seq)
                        }
                        StreamMessage::Punct(p) => {
                            a.channel_punct(&self.unit_label, p.router, p.seq)
                        }
                    }
                }
                let wm_before = buf.watermark();
                let mut released = std::mem::take(&mut self.released);
                buf.offer(msg, &mut released);
                if let Some(a) = &self.auditor {
                    let wm = buf.watermark().unwrap_or(SeqNo::MAX);
                    for r in &released {
                        a.release(&self.unit_label, r.router, r.seq, wm);
                    }
                }
                let advanced = buf.watermark() > wm_before;
                if let (Some(m), Some((router, seq)), true) = (&self.metrics, punct, advanced) {
                    m.journal.record(
                        self.last_ts,
                        EventKind::PunctuationAdvanced {
                            side: self.side,
                            unit: m.unit,
                            router,
                            seq,
                        },
                    );
                }
                for r in released.drain(..) {
                    self.process(r.purpose, r.seq, r.tuple, emit)?;
                }
                self.released = released;
            }
            None => {
                if let StreamMessage::Data { purpose, seq, tuple, .. } = msg {
                    self.process(purpose, seq, tuple, emit)?;
                }
            }
        }
        self.sync_observables();
        Ok(())
    }

    /// Handle one incoming batched frame, emitting any produced results.
    ///
    /// This is the micro-batched counterpart of [`JoinerCore::handle`]:
    /// one frame is decoded (by the transport) and charged ingest cost
    /// once, however many tuples it carries. With the ordering protocol
    /// on, every entry is offered to the reorder buffer under its own
    /// `(router, seq)` stamp — batching never bends the global order —
    /// and whatever a punctuation releases is processed as same-purpose
    /// runs of at most [`JoinerCore::batch_size`] tuples through the
    /// index's `insert_batch`/`probe_batch` entry points. With the
    /// protocol off, the frame itself is the run. A run of join probes
    /// expires state once, witnessed by its first probe's timestamp;
    /// matches are window-checked per probe, so results are unaffected.
    pub fn handle_batch<F: FnMut(JoinResult)>(
        &mut self,
        msg: BatchMessage,
        emit: &mut F,
    ) -> Result<()> {
        self.meter.charge_cpu_us(self.cost.ingest_us);
        match &mut self.reorder {
            Some(buf) => {
                debug_assert!(self.released.is_empty());
                let punct = match &msg {
                    BatchMessage::Punct(p) => Some((p.router, p.seq)),
                    _ => None,
                };
                let wm_before = buf.watermark();
                let mut released = std::mem::take(&mut self.released);
                match msg {
                    BatchMessage::Punct(p) => {
                        if let Some(a) = &self.auditor {
                            a.channel_punct(&self.unit_label, p.router, p.seq);
                        }
                        buf.offer(StreamMessage::Punct(p), &mut released)
                    }
                    BatchMessage::Batch(b) => {
                        let router = b.router();
                        let purpose = b.purpose();
                        for e in b.into_entries() {
                            if let Some(a) = &self.auditor {
                                a.channel_recv(&self.unit_label, router, e.seq);
                            }
                            buf.offer(
                                StreamMessage::Data { router, seq: e.seq, purpose, tuple: e.tuple },
                                &mut released,
                            );
                        }
                    }
                }
                if let Some(a) = &self.auditor {
                    let wm = buf.watermark().unwrap_or(SeqNo::MAX);
                    for r in &released {
                        a.release(&self.unit_label, r.router, r.seq, wm);
                    }
                }
                let advanced = buf.watermark() > wm_before;
                if let (Some(m), Some((router, seq)), true) = (&self.metrics, punct, advanced) {
                    m.journal.record(
                        self.last_ts,
                        EventKind::PunctuationAdvanced {
                            side: self.side,
                            unit: m.unit,
                            router,
                            seq,
                        },
                    );
                }
                let cap = self.batch_size;
                let mut scratch: Vec<(SeqNo, Tuple)> = Vec::new();
                for run in ReorderBuffer::purpose_runs(&released, cap) {
                    scratch.clear();
                    scratch.extend(run.iter().map(|r| (r.seq, r.tuple.clone())));
                    match run[0].purpose {
                        Purpose::Store => self.store_run(&scratch)?,
                        Purpose::Join => self.probe_run(&scratch, emit)?,
                    }
                }
                released.clear();
                self.released = released;
            }
            None => {
                if let BatchMessage::Batch(b) = msg {
                    let purpose = b.purpose();
                    let entries: Vec<(SeqNo, Tuple)> =
                        b.into_entries().into_iter().map(|e| (e.seq, e.tuple)).collect();
                    if !entries.is_empty() {
                        match purpose {
                            Purpose::Store => self.store_run(&entries)?,
                            Purpose::Join => self.probe_run(&entries, emit)?,
                        }
                    }
                }
            }
        }
        self.sync_observables();
        Ok(())
    }

    /// Insert a run of store copies through one `insert_batch` call.
    /// Per-tuple bookkeeping (journal, meter, trace spans) is preserved so
    /// a 1-tuple run is indistinguishable from [`JoinerCore::handle`]'s
    /// store branch.
    fn store_run(&mut self, entries: &[(SeqNo, Tuple)]) -> Result<()> {
        let mut items: Vec<(Value, Tuple)> = Vec::with_capacity(entries.len());
        for (seq, tuple) in entries {
            debug_assert_eq!(tuple.rel(), self.side, "store copy on the wrong side");
            self.last_ts = self.last_ts.max(tuple.ts());
            let key = self.key_of(tuple)?;
            if let Some(m) = &self.metrics {
                m.stored.inc();
                m.journal.record(
                    tuple.ts(),
                    EventKind::TupleStored { side: self.side, unit: m.unit, seq: *seq },
                );
            }
            items.push((key, tuple.clone()));
            self.stats.stored += 1;
            self.meter.charge_cpu_us(self.cost.insert_us);
            if self.tracer.sampled(*seq) {
                self.tracer.span(*seq, HopKind::Store, &self.unit_label, self.now, self.now);
                self.tracer.end_branch(*seq);
            }
        }
        self.index.insert_batch(items);
        Ok(())
    }

    /// Probe a run of join copies through one `probe_batch` call.
    ///
    /// Theorem-1 discarding runs once, witnessed by the **first** probe's
    /// timestamp — later probes in the run may leave slightly more state
    /// resident than per-tuple expiry would, but every candidate is
    /// window-checked against its own probe's timestamp, so the emitted
    /// results are identical. Results are emitted probe-major in run
    /// order, matching a sequence of standalone probes exactly.
    fn probe_run<F: FnMut(JoinResult)>(
        &mut self,
        entries: &[(SeqNo, Tuple)],
        emit: &mut F,
    ) -> Result<()> {
        debug_assert!(!entries.is_empty());
        let before = self.index.stats().expired_sub_indexes;
        let dropped = self.expire_at(entries[0].1.ts());
        self.stats.expired += dropped as u64;
        let sub_dropped = self.index.stats().expired_sub_indexes - before;
        if sub_dropped > 0 {
            self.meter.charge_cpu_us(self.cost.expire_subindex_us * sub_dropped as f64);
        }

        let mut probes: Vec<(ProbePlan, Ts)> = Vec::with_capacity(entries.len());
        for (_, probe) in entries {
            debug_assert_eq!(probe.rel(), self.side.opposite(), "join copy on the wrong side");
            self.last_ts = self.last_ts.max(probe.ts());
            probes.push((self.predicate.probe_plan(probe)?, probe.ts()));
        }
        let mut matched: Vec<Vec<Tuple>> = vec![Vec::new(); entries.len()];
        let probe_stats = self.index.probe_batch(&probes, |i, stored| {
            matched[i].push(stored.clone());
        });

        for (i, (seq, probe)) in entries.iter().enumerate() {
            // Band plans use float arithmetic for their bounds; re-verify
            // the predicate on candidates for exactness. FullScan plans
            // are only key-complete, so they always re-verify.
            let verify = matches!(
                (&probes[i].0, &self.predicate),
                (ProbePlan::FullScan, _) | (_, JoinPredicate::Band { .. })
            );
            let mut results = 0usize;
            for stored in &matched[i] {
                if verify && !self.predicate.matches(stored, probe)? {
                    continue;
                }
                results += 1;
                emit(JoinResult::of(stored.clone(), probe.clone()));
            }
            let stats = &probe_stats[i];
            self.stats.probes += 1;
            self.stats.candidates += stats.candidates as u64;
            self.stats.results += results as u64;
            if let Some(m) = &self.metrics {
                m.probes.inc();
                m.candidates.add(stats.candidates as u64);
                m.results.add(results as u64);
                if i == 0 {
                    m.expired.add(dropped as u64);
                }
                if results > 0 {
                    m.journal.record(
                        probe.ts(),
                        EventKind::JoinEmitted {
                            side: self.side,
                            unit: m.unit,
                            results: results as u64,
                        },
                    );
                }
            }
            self.meter.charge_cpu_us(self.cost.probe_cost_us(stats.candidates, results));
            if self.tracer.sampled(*seq) {
                self.tracer.span(*seq, HopKind::Probe, &self.unit_label, self.now, self.now);
                if results > 0 {
                    self.tracer.span(*seq, HopKind::Emit, &self.unit_label, self.now, self.now);
                }
                self.tracer.end_branch(*seq);
            }
        }
        Ok(())
    }

    /// Terminal flush of the reorder buffer: process everything still
    /// buffered, in global order. Call only after the unit's channel is
    /// closed and drained (shutdown/retirement) — see
    /// [`crate::ordering::ReorderBuffer::flush`].
    pub fn flush<F: FnMut(JoinResult)>(&mut self, emit: &mut F) -> Result<()> {
        if let Some(buf) = &mut self.reorder {
            let mut released = std::mem::take(&mut self.released);
            buf.flush(&mut released);
            // Terminal flush deliberately releases past the punctuation
            // frontiers (the residue is complete and sorted), so the
            // per-release audit hooks do not apply here.
            for r in released.drain(..) {
                self.process(r.purpose, r.seq, r.tuple, emit)?;
            }
            self.released = released;
            self.sync_observables();
        }
        Ok(())
    }

    /// Fault injection for auditor tests: corrupt one router's punctuation
    /// frontier in the reorder buffer (see
    /// [`ReorderBuffer::debug_corrupt_frontier`]) and process whatever the
    /// corrupt watermark prematurely releases. Never called by production
    /// code.
    #[doc(hidden)]
    pub fn debug_corrupt_frontier<F: FnMut(JoinResult)>(
        &mut self,
        router: RouterId,
        seq: SeqNo,
        emit: &mut F,
    ) -> Result<()> {
        if let Some(buf) = &mut self.reorder {
            let mut released = std::mem::take(&mut self.released);
            buf.debug_corrupt_frontier(router, seq, &mut released);
            if let Some(a) = &self.auditor {
                let wm = buf.watermark().unwrap_or(SeqNo::MAX);
                for r in &released {
                    a.release(&self.unit_label, r.router, r.seq, wm);
                }
            }
            for r in released.drain(..) {
                self.process(r.purpose, r.seq, r.tuple, emit)?;
            }
            self.released = released;
            self.sync_observables();
        }
        Ok(())
    }

    /// Fault injection for watchdog tests: freeze this unit's reorder
    /// frontier (see [`ReorderBuffer::debug_freeze_frontier`]) so its
    /// watermark flatlines while input keeps buffering — a seeded
    /// frontier stall. Never called by production code.
    #[doc(hidden)]
    pub fn debug_freeze_frontier(&mut self, on: bool) {
        if let Some(buf) = &mut self.reorder {
            buf.debug_freeze_frontier(on);
        }
    }

    fn process<F: FnMut(JoinResult)>(
        &mut self,
        purpose: Purpose,
        seq: SeqNo,
        tuple: Tuple,
        emit: &mut F,
    ) -> Result<()> {
        self.last_ts = self.last_ts.max(tuple.ts());
        match purpose {
            Purpose::Store => self.store(seq, tuple),
            Purpose::Join => self.join(seq, tuple, emit),
        }
    }

    fn store(&mut self, seq: SeqNo, tuple: Tuple) -> Result<()> {
        debug_assert_eq!(tuple.rel(), self.side, "store copy on the wrong side");
        let key = self.key_of(&tuple)?;
        if let Some(m) = &self.metrics {
            m.stored.inc();
            m.journal
                .record(tuple.ts(), EventKind::TupleStored { side: self.side, unit: m.unit, seq });
        }
        self.index.insert(key, tuple);
        self.stats.stored += 1;
        self.meter.charge_cpu_us(self.cost.insert_us);
        if self.tracer.sampled(seq) {
            self.tracer.span(seq, HopKind::Store, &self.unit_label, self.now, self.now);
            self.tracer.end_branch(seq);
        }
        Ok(())
    }

    fn join<F: FnMut(JoinResult)>(&mut self, seq: SeqNo, probe: Tuple, emit: &mut F) -> Result<()> {
        debug_assert_eq!(probe.rel(), self.side.opposite(), "join copy on the wrong side");
        // Theorem-1 discarding first: the incoming opposite-side timestamp
        // is the expiry witness.
        let before = self.index.stats().expired_sub_indexes;
        let dropped = self.expire_at(probe.ts());
        self.stats.expired += dropped as u64;
        let sub_dropped = self.index.stats().expired_sub_indexes - before;
        if sub_dropped > 0 {
            self.meter.charge_cpu_us(self.cost.expire_subindex_us * sub_dropped as f64);
        }

        let plan = self.predicate.probe_plan(&probe)?;
        // Band plans use float arithmetic for their bounds; re-verify the
        // predicate on candidates for exactness. FullScan plans are only
        // key-complete, so they always re-verify.
        let verify = matches!(
            (&plan, &self.predicate),
            (ProbePlan::FullScan, _) | (_, JoinPredicate::Band { .. })
        );
        let mut matched: Vec<Tuple> = Vec::new();
        let stats = self.index.probe(&plan, probe.ts(), |stored| {
            matched.push(stored.clone());
        });
        let mut results = 0usize;
        for stored in matched {
            if verify && !self.predicate.matches(&stored, &probe)? {
                continue;
            }
            results += 1;
            emit(JoinResult::of(stored, probe.clone()));
        }
        self.stats.probes += 1;
        self.stats.candidates += stats.candidates as u64;
        self.stats.results += results as u64;
        if let Some(m) = &self.metrics {
            m.probes.inc();
            m.candidates.add(stats.candidates as u64);
            m.results.add(results as u64);
            m.expired.add(dropped as u64);
            if results > 0 {
                m.journal.record(
                    probe.ts(),
                    EventKind::JoinEmitted {
                        side: self.side,
                        unit: m.unit,
                        results: results as u64,
                    },
                );
            }
        }
        self.meter.charge_cpu_us(self.cost.probe_cost_us(stats.candidates, results));
        if self.tracer.sampled(seq) {
            self.tracer.span(seq, HopKind::Probe, &self.unit_label, self.now, self.now);
            if results > 0 {
                self.tracer.span(seq, HopKind::Emit, &self.unit_label, self.now, self.now);
            }
            self.tracer.end_branch(seq);
        }
        Ok(())
    }

    fn key_of(&self, tuple: &Tuple) -> Result<Value> {
        match self.predicate {
            JoinPredicate::Cross => Ok(Value::Null),
            _ => Ok(tuple.require(self.store_attr)?.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::punct::Punctuation;

    fn joiner(side: Rel, ordering: bool) -> JoinerCore {
        JoinerCore::new(
            JoinerId(0),
            side,
            JoinPredicate::Equi { r_attr: 0, s_attr: 0 },
            WindowSpec::sliding(1_000),
            100,
            ordering,
            &[(0, 0)],
            CostModel::default(),
        )
    }

    fn data(seq: SeqNo, purpose: Purpose, rel: Rel, ts: Ts, k: i64) -> StreamMessage {
        StreamMessage::Data {
            router: 0,
            seq,
            purpose,
            tuple: Tuple::new(rel, ts, vec![Value::Int(k)]),
        }
    }

    fn punct(seq: SeqNo) -> StreamMessage {
        StreamMessage::Punct(Punctuation { router: 0, seq })
    }

    #[test]
    fn store_then_join_produces_result_without_ordering() {
        let mut j = joiner(Rel::R, false);
        let mut results = Vec::new();
        j.handle(data(1, Purpose::Store, Rel::R, 10, 5), &mut |r| results.push(r)).unwrap();
        j.handle(data(2, Purpose::Join, Rel::S, 20, 5), &mut |r| results.push(r)).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].r.ts(), 10);
        assert_eq!(results[0].s.ts(), 20);
        assert_eq!(j.stats().results, 1);
        assert_eq!(j.stats().stored, 1);
    }

    #[test]
    fn ordering_buffers_until_punctuation_then_processes_in_seq_order() {
        let mut j = joiner(Rel::R, true);
        let mut results = Vec::new();
        // Join copy (seq 2) arrives BEFORE the store copy (seq 1) — the
        // missed-result race of Fig. 8(c). With ordering, the buffer fixes
        // the order and the result is still produced.
        j.handle(data(2, Purpose::Join, Rel::S, 20, 5), &mut |r| results.push(r)).unwrap();
        j.handle(data(1, Purpose::Store, Rel::R, 10, 5), &mut |r| results.push(r)).unwrap();
        assert!(results.is_empty(), "buffered until punctuation");
        j.handle(punct(2), &mut |r| results.push(r)).unwrap();
        assert_eq!(results.len(), 1, "store processed before join despite arrival order");
    }

    #[test]
    fn without_ordering_the_race_loses_the_result() {
        let mut j = joiner(Rel::R, false);
        let mut results = Vec::new();
        j.handle(data(2, Purpose::Join, Rel::S, 20, 5), &mut |r| results.push(r)).unwrap();
        j.handle(data(1, Purpose::Store, Rel::R, 10, 5), &mut |r| results.push(r)).unwrap();
        assert!(results.is_empty(), "join probed an empty window: missed result");
    }

    #[test]
    fn join_expires_stale_state_first() {
        let mut j = joiner(Rel::R, false);
        let mut sink = Vec::new();
        // Fill several archive periods.
        for ts in (0..500).step_by(50) {
            j.handle(data(ts / 50 + 1, Purpose::Store, Rel::R, ts, 1), &mut |r| sink.push(r))
                .unwrap();
        }
        let stored = j.index_stats().tuples;
        assert_eq!(stored, 10);
        // A join tuple far in the future expires everything archived.
        j.handle(data(100, Purpose::Join, Rel::S, 10_000, 1), &mut |r| sink.push(r)).unwrap();
        assert!(sink.is_empty(), "window excludes everything");
        assert!(j.stats().expired > 0);
        assert!(j.index_stats().tuples < stored);
    }

    #[test]
    fn band_predicate_verifies_candidates_exactly() {
        let mut j = JoinerCore::new(
            JoinerId(1),
            Rel::S,
            JoinPredicate::Band { r_attr: 0, s_attr: 0, band: 2.0 },
            WindowSpec::sliding(1_000),
            100,
            false,
            &[],
            CostModel::default(),
        );
        let mut results = Vec::new();
        for k in [1, 3, 6] {
            j.handle(data(k as u64, Purpose::Store, Rel::S, 0, k), &mut |r| results.push(r))
                .unwrap();
        }
        j.handle(data(9, Purpose::Join, Rel::R, 1, 4), &mut |r| results.push(r)).unwrap();
        // |4-1|=3 no, |4-3|=1 yes, |4-6|=2 yes (inclusive).
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.r.rel() == Rel::R && r.s.rel() == Rel::S));
    }

    #[test]
    fn cross_predicate_joins_everything_in_window() {
        let mut j = JoinerCore::new(
            JoinerId(2),
            Rel::R,
            JoinPredicate::Cross,
            WindowSpec::sliding(100),
            10,
            false,
            &[],
            CostModel::default(),
        );
        let mut results = Vec::new();
        for (seq, ts) in [(1, 0), (2, 50), (3, 200)] {
            j.handle(data(seq, Purpose::Store, Rel::R, ts, seq as i64), &mut |r| results.push(r))
                .unwrap();
        }
        j.handle(data(4, Purpose::Join, Rel::S, 100, 99), &mut |r| results.push(r)).unwrap();
        // Window 100 around probe ts=100 covers ts 0,50,200.
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn meter_charges_cpu_and_reports_memory() {
        let mut j = joiner(Rel::R, false);
        let meter = j.meter();
        let mut sink = Vec::new();
        j.handle(data(1, Purpose::Store, Rel::R, 0, 1), &mut |r| sink.push(r)).unwrap();
        assert!(meter.cpu_busy_us() > 0);
        assert!(meter.memory_bytes() > 0);
        let before = meter.memory_bytes();
        j.handle(data(2, Purpose::Store, Rel::R, 1, 2), &mut |r| sink.push(r)).unwrap();
        assert!(meter.memory_bytes() > before);
    }

    #[test]
    fn attach_obs_exposes_series_and_journals_events() {
        let obs = Observability::new();
        let mut j = joiner(Rel::R, true);
        j.attach_obs(&obs);
        let mut results = Vec::new();
        j.handle(data(1, Purpose::Store, Rel::R, 10, 5), &mut |r| results.push(r)).unwrap();
        j.handle(data(2, Purpose::Join, Rel::S, 20, 5), &mut |r| results.push(r)).unwrap();
        j.handle(punct(2), &mut |r| results.push(r)).unwrap();
        assert_eq!(results.len(), 1);

        let snap = obs.registry.scrape(20);
        let labels: &[(&str, &str)] = &[("joiner", "R0")];
        assert_eq!(
            snap.counter(bistream_types::metric_names::JOINER_STORED_TOTAL, labels),
            Some(1)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::JOINER_PROBES_TOTAL, labels),
            Some(1)
        );
        assert_eq!(
            snap.counter(bistream_types::metric_names::JOINER_RESULTS_TOTAL, labels),
            Some(1)
        );
        assert_eq!(snap.gauge(bistream_types::metric_names::JOINER_STORED_TUPLES, labels), Some(1));
        assert_eq!(
            snap.gauge(bistream_types::metric_names::JOINER_REORDER_DEPTH_MAX, labels),
            Some(2)
        );
        // The index side of the unit is registered under the same label.
        assert_eq!(snap.gauge(bistream_types::metric_names::INDEX_LIVE_TUPLES, labels), Some(1));
        // The pod meter is registered under pod="R0".
        assert!(
            snap.counter(bistream_types::metric_names::POD_CPU_BUSY_US_TOTAL, &[("pod", "R0")])
                .unwrap_or(0)
                > 0
        );

        let events = obs.journal.drain();
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"PunctuationAdvanced"), "tags: {tags:?}");
        assert!(tags.contains(&"TupleStored"));
        assert!(tags.contains(&"JoinEmitted"));
        let stored = events.iter().find(|e| e.kind.tag() == "TupleStored").unwrap();
        assert_eq!(stored.ts, 10, "stamped with event time");
        let emitted = events.iter().find(|e| e.kind.tag() == "JoinEmitted").unwrap();
        assert_eq!(emitted.ts, 20);
    }

    #[test]
    fn batched_frames_match_per_tuple_handling_exactly() {
        // Feed identical traffic through handle() per tuple and through
        // handle_batch() as single-entry frames; every observable —
        // results, counters, index state — must agree.
        for ordering in [false, true] {
            let mut per_tuple = joiner(Rel::R, ordering);
            let mut batched = joiner(Rel::R, ordering);
            batched.set_batch_size(1);
            let msgs = vec![
                data(1, Purpose::Store, Rel::R, 10, 5),
                data(2, Purpose::Join, Rel::S, 20, 5),
                data(3, Purpose::Store, Rel::R, 30, 6),
                data(4, Purpose::Join, Rel::S, 40, 6),
                punct(4),
            ];
            let mut a = Vec::new();
            let mut b = Vec::new();
            for m in &msgs {
                per_tuple.handle(m.clone(), &mut |r| a.push(r)).unwrap();
                batched
                    .handle_batch(BatchMessage::from_stream(m.clone()), &mut |r| b.push(r))
                    .unwrap();
            }
            assert_eq!(a, b, "ordering={ordering}: identical results in order");
            assert_eq!(per_tuple.stats(), batched.stats());
            assert_eq!(per_tuple.index_stats().tuples, batched.index_stats().tuples);
        }
    }

    #[test]
    fn multi_entry_frames_store_and_probe_in_one_pass() {
        let mut j = joiner(Rel::R, false);
        j.set_batch_size(8);
        let mut store = bistream_types::TupleBatch::new(0, Purpose::Store);
        for (seq, k) in [(1u64, 5i64), (2, 6), (3, 5)] {
            store.push(seq, Tuple::new(Rel::R, 10 * seq, vec![Value::Int(k)]));
        }
        let mut results = Vec::new();
        j.handle_batch(BatchMessage::Batch(store), &mut |r| results.push(r)).unwrap();
        assert_eq!(j.stats().stored, 3);
        let mut probes = bistream_types::TupleBatch::new(0, Purpose::Join);
        probes.push(4, Tuple::new(Rel::S, 40, vec![Value::Int(5)]));
        probes.push(5, Tuple::new(Rel::S, 41, vec![Value::Int(6)]));
        j.handle_batch(BatchMessage::Batch(probes), &mut |r| results.push(r)).unwrap();
        // Probe-major emission: both k=5 matches first, then the k=6 one.
        assert_eq!(results.len(), 3);
        assert!(results[..2].iter().all(|r| r.r.get(0) == Some(&Value::Int(5))));
        assert_eq!(results[2].r.get(0), Some(&Value::Int(6)));
        assert_eq!(j.stats().probes, 2);
    }

    #[test]
    fn ordered_batches_release_into_runs_on_punctuation() {
        for cap in [1usize, 4] {
            let mut j = joiner(Rel::R, true);
            j.set_batch_size(cap);
            let mut results = Vec::new();
            // Join frame arrives before the store frame; the reorder
            // buffer must still fix the order whatever the run cap is.
            let mut joins = bistream_types::TupleBatch::new(0, Purpose::Join);
            joins.push(3, Tuple::new(Rel::S, 30, vec![Value::Int(1)]));
            joins.push(4, Tuple::new(Rel::S, 31, vec![Value::Int(2)]));
            j.handle_batch(BatchMessage::Batch(joins), &mut |r| results.push(r)).unwrap();
            let mut stores = bistream_types::TupleBatch::new(0, Purpose::Store);
            stores.push(1, Tuple::new(Rel::R, 10, vec![Value::Int(1)]));
            stores.push(2, Tuple::new(Rel::R, 11, vec![Value::Int(2)]));
            j.handle_batch(BatchMessage::Batch(stores), &mut |r| results.push(r)).unwrap();
            assert!(results.is_empty(), "buffered until punctuation");
            j.handle_batch(
                BatchMessage::Punct(bistream_types::Punctuation { router: 0, seq: 4 }),
                &mut |r| results.push(r),
            )
            .unwrap();
            assert_eq!(results.len(), 2, "cap={cap}: stores processed before joins");
            assert_eq!(j.stats().stored, 2);
            assert_eq!(j.stats().probes, 2);
        }
    }

    #[test]
    fn late_registered_router_participates_in_watermark() {
        let mut j = joiner(Rel::R, true);
        j.register_router(9, 5);
        let mut results = Vec::new();
        j.handle(data(6, Purpose::Store, Rel::R, 0, 1), &mut |r| results.push(r)).unwrap();
        j.handle(punct(6), &mut |r| results.push(r)).unwrap();
        // Router 9's frontier is 5 < 6, so seq 6 from router 0 must wait…
        assert_eq!(j.reorder_stats().unwrap().released, 0);
        // …until router 9 punctuates past it.
        j.handle(StreamMessage::Punct(Punctuation { router: 9, seq: 6 }), &mut |r| results.push(r))
            .unwrap();
        assert_eq!(j.reorder_stats().unwrap().released, 1);
    }
}
