//! Skew-adaptive routing: self-tuning ContRand with punctuation-fenced
//! strategy switches.
//!
//! The paper's ContRand scheme fixes the subgroup count `d` at deployment
//! time. This module makes the router self-tuning in the style of PanJoin:
//!
//! - every router maintains a **count-min sketch** and a **space-saving**
//!   heavy-hitter summary over the key hashes it routes (bounded memory,
//!   no per-tuple allocation on the store path);
//! - a **periodic tuning step** — run at punctuation ticks under one
//!   shared lock, never on the per-tuple path — classifies keys into a
//!   *hot* tier (stored on a random unit of the whole side, probed by
//!   broadcasting to the whole opposite side) and a *cold* tier (plain
//!   ContRand under the current `d`), and re-tunes `d` from the merged
//!   per-unit store-load series;
//! - a strategy switch installs as an **epoch change** under a two-phase,
//!   punctuation-fenced migration protocol (below), so pairwise FIFO and
//!   the reorder/watermark frontiers are never violated mid-flight.
//!
//! # The fence protocol
//!
//! A stored tuple stays where its *store-time* plan put it until it leaves
//! the window, so join completeness requires every router to probe the
//! union of all plans that stored still-live tuples. A naive "adopt the
//! new plan when you feel like it" scheme breaks exactly this: router A
//! stores a tuple under epoch `e+1` while router B still computes probe
//! destinations under `e` only, and B's later tuples miss A's storage
//! location. The protocol here:
//!
//! 1. A tuning step *publishes* a new [`RoutePlan`] as **pending**.
//! 2. Each router, at its own punctuation tick (after its batches are
//!    flushed and the punctuation is emitted — the fence), **acks** the
//!    pending plan and adds it to its *probe union* only.
//! 3. When every registered router has acked, the plan **commits** (the
//!    epoch counter advances); each router *adopts* it as its **store**
//!    plan at a subsequent tick. Hence: a tuple stored under `e+1`
//!    implies every router was already probing both `e` and `e+1`.
//! 4. A superseded store plan's coverage *retires* from the probe union
//!    only after enough ticks that every tuple stored under it has left
//!    the window.
//!
//! The test-only [`AdaptiveRouter::debug_unfenced_adopt`] hook violates
//! step 2/4 on purpose (adopt immediately, drop old probe coverage); the
//! Auditor's output oracle catches the resulting missed results.

use crate::config::AdaptiveTuning;
use crate::layout::{JoinerId, Layout};
use bistream_types::error::{Error, Result};
use bistream_types::hash::{bucket_of, FxHashMap};
use bistream_types::punct::RouterId;
use bistream_types::rel::Rel;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Count-min sketch rows (pairwise-independent hash seeds).
const CM_DEPTH: usize = 4;
/// Count-min sketch row width (power of two; index is a mask).
const CM_WIDTH: usize = 1024;

/// SplitMix64 — the seed expander used to derive row hash seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A count-min sketch over pre-hashed keys: `estimate` never
/// underestimates the true count, and overestimates by at most the
/// collision mass of the lightest row.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: Vec<u64>,
    seeds: [u64; CM_DEPTH],
}

impl CountMinSketch {
    /// An empty sketch whose row hashes derive deterministically from
    /// `seed` (two sketches with the same seed are mergeable).
    pub fn new(seed: u64) -> CountMinSketch {
        let mut seeds = [0u64; CM_DEPTH];
        let mut s = seed;
        for slot in &mut seeds {
            s = splitmix64(s);
            *slot = s;
        }
        CountMinSketch { rows: vec![0; CM_DEPTH * CM_WIDTH], seeds }
    }

    fn slot(&self, row: usize, h: u64) -> usize {
        row * CM_WIDTH + (splitmix64(h ^ self.seeds[row]) as usize & (CM_WIDTH - 1))
    }

    /// Count one occurrence of key hash `h`.
    pub fn observe(&mut self, h: u64) {
        for row in 0..CM_DEPTH {
            let i = self.slot(row, h);
            self.rows[i] = self.rows[i].saturating_add(1);
        }
    }

    /// Estimated count of key hash `h` (an overestimate, never under).
    pub fn estimate(&self, h: u64) -> u64 {
        (0..CM_DEPTH).map(|row| self.rows[self.slot(row, h)]).min().unwrap_or(0)
    }

    /// Add `other`'s counters into this sketch (same seed required for
    /// the merge to be meaningful; shapes are fixed at compile time).
    pub fn merge(&mut self, other: &CountMinSketch) {
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a = a.saturating_add(*b);
        }
    }

    /// Halve every counter: ages the sketch so it tracks the recent
    /// workload rather than all history.
    pub fn decay(&mut self) {
        for c in &mut self.rows {
            *c /= 2;
        }
    }

    /// Zero every counter.
    pub fn clear(&mut self) {
        self.rows.fill(0);
    }

    /// Fixed memory footprint in 64-bit words (bounded-memory witness).
    pub fn memory_words(&self) -> usize {
        self.rows.len() + self.seeds.len()
    }
}

/// One space-saving summary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsEntry {
    /// The tracked key hash.
    pub key: u64,
    /// Estimated count (overestimate: true count is in
    /// `[count - err, count]`).
    pub count: u64,
    /// Maximum overestimation error inherited from the evicted entry.
    pub err: u64,
}

/// The space-saving heavy-hitter summary of Metwally et al.: at most
/// `capacity` monitored keys, with the classical guarantees that every
/// key with true frequency above `total / capacity` is present and every
/// entry's error is at most `total / capacity`.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<SsEntry>,
    index: FxHashMap<u64, usize>,
}

impl SpaceSaving {
    /// An empty summary tracking at most `capacity` keys (clamped to 1).
    pub fn new(capacity: usize) -> SpaceSaving {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: FxHashMap::default(),
        }
    }

    /// Count one occurrence of key hash `h`.
    pub fn observe(&mut self, h: u64) {
        self.observe_by(h, 1);
    }

    /// Count `by` occurrences of key hash `h` (also the merge primitive).
    pub fn observe_by(&mut self, h: u64, by: u64) {
        if by == 0 {
            return;
        }
        if let Some(&i) = self.index.get(&h) {
            self.entries[i].count = self.entries[i].count.saturating_add(by);
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(h, self.entries.len());
            self.entries.push(SsEntry { key: h, count: by, err: 0 });
            return;
        }
        // Evict the minimum-count entry; the newcomer inherits its count
        // as error bound.
        let mut mi = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if e.count < self.entries[mi].count {
                mi = i;
            }
        }
        let evicted = self.entries[mi];
        self.index.remove(&evicted.key);
        self.index.insert(h, mi);
        self.entries[mi] =
            SsEntry { key: h, count: evicted.count.saturating_add(by), err: evicted.count };
    }

    /// Add `other`'s entries into this summary.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for e in &other.entries {
            self.observe_by(e.key, e.count);
        }
    }

    /// Halve every count and error; drops entries decayed to zero.
    pub fn decay(&mut self) {
        for e in &mut self.entries {
            e.count /= 2;
            e.err /= 2;
        }
        self.entries.retain(|e| e.count > 0);
        self.index.clear();
        for (i, e) in self.entries.iter().enumerate() {
            self.index.insert(e.key, i);
        }
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }

    /// Currently monitored entries (at most `capacity`).
    pub fn entries(&self) -> &[SsEntry] {
        &self.entries
    }

    /// The monitored-key capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Key hashes whose *guaranteed* frequency (`count - err`) is at
    /// least `min_share_ppm` parts-per-million of `total`, the heaviest
    /// `cap` of them, sorted ascending (ready for binary search).
    pub fn hot_keys(&self, total: u64, min_share_ppm: u32, cap: usize) -> Vec<u64> {
        let threshold = ((u128::from(total) * u128::from(min_share_ppm)) / 1_000_000) as u64;
        let mut heavy: Vec<&SsEntry> = self
            .entries
            .iter()
            .filter(|e| e.count.saturating_sub(e.err) >= threshold.max(1))
            .collect();
        heavy.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        heavy.truncate(cap);
        let mut keys: Vec<u64> = heavy.into_iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys
    }
}

/// One epoch of the adaptive strategy: a subgroup count for the cold tier
/// plus the sorted hot-key set routed with widened fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    /// Monotone epoch number; commits advance it by exactly one.
    pub epoch: u64,
    /// ContRand subgroup count `d` for cold keys.
    pub subgroups: usize,
    /// Sorted key hashes of the hot tier.
    pub hot: Vec<u64>,
}

impl RoutePlan {
    /// The epoch-0 plan every router starts from: no hot keys, the
    /// configured base subgroup count.
    pub fn base(subgroups: usize) -> RoutePlan {
        RoutePlan { epoch: 0, subgroups: subgroups.max(1), hot: Vec::new() }
    }

    /// Is key hash `h` in the hot tier?
    pub fn is_hot(&self, h: u64) -> bool {
        self.hot.binary_search(&h).is_ok()
    }
}

/// A published-but-not-yet-committed plan and which routers have fenced
/// it into their probe unions.
#[derive(Debug)]
struct Pending {
    plan: RoutePlan,
    acked: Vec<bool>,
}

/// Tuner state shared by all routers of one engine, touched only at
/// punctuation ticks (never on the per-tuple path).
#[derive(Debug)]
struct Inner {
    committed: RoutePlan,
    pending: Option<Pending>,
    cm: CountMinSketch,
    ss: SpaceSaving,
    /// Merged per-unit store counts — the per-unit load series `d` is
    /// re-tuned from.
    loads: FxHashMap<JoinerId, u64>,
    total: u64,
    ticks: u64,
    /// Debug: force a strategy flip proposal on every tick (switch-storm
    /// harness).
    flip: bool,
    /// Debug: force exactly one flip proposal at the next tick (the
    /// deterministic mid-stream switch of the equivalence harness).
    flip_once: bool,
}

/// The engine-wide adaptive routing state: the committed plan, the
/// pending two-phase switch, and the merged sketches the tuner reads.
///
/// Routers interact through per-router [`AdaptiveRouter`] handles; the
/// shared side is locked once per punctuation tick per router.
#[derive(Debug)]
pub struct AdaptiveShared {
    tuning: AdaptiveTuning,
    routers: usize,
    max_subgroups: usize,
    /// Router-ticks between tuning steps (`tune_every_puncts` rounds).
    tune_period: u64,
    retire_ticks: u64,
    seed: u64,
    // protocol: field epoch monotone plan-commit clock; written with
    // store-Release by the committing router while holding `inner`, read
    // with load-Acquire by observers; the mutex orders commits, the
    // atomic is the lock-free read-side fast path.
    epoch: AtomicU64,
    // protocol: field switches monotone event counter; fetch_add-Relaxed
    // at commit (under `inner`), load-Relaxed by observers; counts
    // committed strategy switches only, so readers need no ordering.
    switches: AtomicU64,
    inner: Mutex<Inner>,
}

impl AdaptiveShared {
    /// Shared state for `routers` routers starting from
    /// [`RoutePlan::base`]`(base_subgroups)`.
    ///
    /// `max_subgroups` bounds `d` from above (at most `min(n, m)`),
    /// `retire_ticks` is how many punctuation ticks a superseded store
    /// plan stays in the probe union (window span / punctuation interval,
    /// plus slack), and `seed` derives the sketch hash seeds.
    pub fn new(
        tuning: AdaptiveTuning,
        routers: usize,
        base_subgroups: usize,
        max_subgroups: usize,
        retire_ticks: u64,
        seed: u64,
    ) -> Arc<AdaptiveShared> {
        let routers = routers.max(1);
        Arc::new(AdaptiveShared {
            tuning,
            routers,
            max_subgroups: max_subgroups.max(1),
            tune_period: u64::from(tuning.tune_every_puncts.max(1)) * routers as u64,
            retire_ticks: retire_ticks.max(1),
            seed,
            epoch: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                committed: RoutePlan::base(base_subgroups),
                pending: None,
                cm: CountMinSketch::new(seed),
                ss: SpaceSaving::new(tuning.hot_capacity.max(1) * 8),
                loads: FxHashMap::default(),
                total: 0,
                ticks: 0,
                flip: false,
                flip_once: false,
            }),
        })
    }

    /// A per-router handle. `router` must be one of the `routers` ids
    /// (`0..routers`) declared at construction.
    pub fn handle(self: &Arc<AdaptiveShared>, router: RouterId) -> AdaptiveRouter {
        let base = self.lock().committed.clone();
        AdaptiveRouter {
            shared: Arc::clone(self),
            router,
            cm: CountMinSketch::new(self.seed),
            ss: SpaceSaving::new(self.tuning.hot_capacity.max(1) * 8),
            loads: FxHashMap::default(),
            total: 0,
            retire_ticks: self.retire_ticks,
            probes: vec![ProbeEntry { subgroups: base.subgroups, hot: base.hot.clone(), ttl: None }],
            store_plan: base,
            skip_fence: false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// How many routers the switch protocol's ack set was sized for.
    pub fn router_count(&self) -> usize {
        self.routers
    }

    /// The committed epoch (0 until the first switch commits).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Committed strategy switches so far.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// The currently committed plan (clone; test/metrics use).
    pub fn current_plan(&self) -> RoutePlan {
        self.lock().committed.clone()
    }

    /// Is a published switch still awaiting acks?
    pub fn has_pending(&self) -> bool {
        self.lock().pending.is_some()
    }

    /// Debug/test: make the tuner propose a subgroup flip on every tick
    /// regardless of the observed statistics (the switch-storm harness).
    pub fn force_flip_every_tick(&self, on: bool) {
        self.lock().flip = on;
    }

    /// Debug/test: propose exactly one subgroup flip at the next
    /// punctuation tick. Unlike [`force_flip_every_tick`], this makes the
    /// *count* of switches deterministic: the equivalence harness
    /// quiesces the feed, requests one flip, waits for
    /// [`AdaptiveShared::switches`] to advance and resumes — so the
    /// stream is partitioned identically across backends.
    ///
    /// [`force_flip_every_tick`]: AdaptiveShared::force_flip_every_tick
    pub fn request_flip(&self) {
        self.lock().flip_once = true;
    }
}

/// One probe-union entry: a plan's *coverage* (what it makes a key probe)
/// plus its remaining lifetime. `ttl: None` pins the entry (current store
/// plan or a pending plan); `Some(t)` retires it after `t` ticks.
#[derive(Debug, Clone)]
struct ProbeEntry {
    subgroups: usize,
    hot: Vec<u64>,
    ttl: Option<u64>,
}

/// What a punctuation tick changed, for the router's metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// Epoch of the store plan after the tick.
    pub epoch: u64,
    /// Cold-tier subgroup count of the store plan after the tick.
    pub subgroups: usize,
    /// Hot-tier size of the store plan after the tick.
    pub hot_len: usize,
    /// Did this tick adopt a new store plan?
    pub adopted: bool,
}

/// Per-router adaptive routing state: local sketches fed from the hot
/// path, the router's current store plan, and the probe union of every
/// plan that may still hold live tuples.
#[derive(Debug)]
pub struct AdaptiveRouter {
    shared: Arc<AdaptiveShared>,
    router: RouterId,
    cm: CountMinSketch,
    ss: SpaceSaving,
    loads: FxHashMap<JoinerId, u64>,
    total: u64,
    retire_ticks: u64,
    store_plan: RoutePlan,
    probes: Vec<ProbeEntry>,
    skip_fence: bool,
}

impl AdaptiveRouter {
    /// Feed one routed key hash into the local sketches (hot path;
    /// bounded memory, no allocation beyond the summaries' fixed
    /// capacity).
    pub fn observe(&mut self, h: u64) {
        self.cm.observe(h);
        self.ss.observe(h);
        self.total += 1;
    }

    /// The store destination for key hash `h` on side `own` under the
    /// current store plan: a random unit of the whole side for hot keys,
    /// a random unit of the key's ContRand subgroup for cold keys.
    pub fn store_dest<R: Rng>(
        &mut self,
        layout: &Layout,
        own: Rel,
        h: u64,
        rng: &mut R,
    ) -> Result<JoinerId> {
        let units = layout.units(own);
        if units.is_empty() {
            return Err(Error::Config(format!("side {own} has no units")));
        }
        let pick = if self.store_plan.is_hot(h) {
            units[rng.gen_range(0..units.len())]
        } else {
            let d = self.store_plan.subgroups.clamp(1, units.len());
            let g = bucket_of(h, d);
            // Subgroup membership is positional (`i mod d == g`), so the
            // members are g, g+d, g+2d, … — pick one without collecting.
            let members = (units.len() - 1 - g) / d + 1;
            units[g + rng.gen_range(0..members) * d]
        };
        *self.loads.entry(pick).or_insert(0) += 1;
        Ok(pick)
    }

    /// The join-probe destinations for key hash `h` against side `opp`:
    /// the union of every probe-plan's coverage, deduplicated. Complete
    /// by the fence protocol: every plan that stored a still-live tuple
    /// is in the union.
    pub fn join_dests(&self, layout: &Layout, opp: Rel, h: u64) -> Vec<JoinerId> {
        let units = layout.units(opp);
        let mut out = Vec::new();
        for e in &self.probes {
            if e.hot.binary_search(&h).is_ok() {
                out.extend_from_slice(units);
            } else if !units.is_empty() {
                let d = e.subgroups.clamp(1, units.len());
                let g = bucket_of(h, d);
                out.extend(
                    units.iter().enumerate().filter(|(i, _)| i % d == g).map(|(_, &u)| u),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The current store plan.
    pub fn store_plan(&self) -> &RoutePlan {
        &self.store_plan
    }

    /// How many distinct plan coverages the probe union currently holds.
    pub fn probe_coverages(&self) -> usize {
        self.probes.len()
    }

    /// Handle on the engine-wide shared state.
    pub fn shared(&self) -> &Arc<AdaptiveShared> {
        &self.shared
    }

    /// Debug/test: arm or disarm the fence-skipping bug hook (see
    /// [`AdaptiveRouter::debug_unfenced_adopt`]).
    pub fn set_skip_fence(&mut self, on: bool) {
        self.skip_fence = on;
    }

    /// Is the fence-skipping bug hook armed?
    pub fn fence_skipped(&self) -> bool {
        self.skip_fence
    }

    /// Pin `coverage` into the probe union (refreshing an existing entry
    /// with the same coverage instead of duplicating it).
    fn pin(&mut self, subgroups: usize, hot: &[u64]) {
        if let Some(e) =
            self.probes.iter_mut().find(|e| e.subgroups == subgroups && e.hot == hot)
        {
            e.ttl = None;
        } else {
            self.probes.push(ProbeEntry { subgroups, hot: hot.to_vec(), ttl: None });
        }
    }

    /// Adopt `plan` as the store plan: the old store coverage starts
    /// retiring (unless it is also `keep`, the still-pending coverage),
    /// the new coverage is pinned.
    fn adopt(&mut self, plan: RoutePlan, keep: Option<&RoutePlan>) {
        let retire = self.retire_ticks;
        for e in &mut self.probes {
            if e.ttl.is_none() {
                let is_new = e.subgroups == plan.subgroups && e.hot == plan.hot;
                let is_kept =
                    keep.is_some_and(|k| e.subgroups == k.subgroups && e.hot == k.hot);
                if !is_new && !is_kept {
                    e.ttl = Some(retire);
                }
            }
        }
        self.pin(plan.subgroups, &plan.hot.clone());
        self.store_plan = plan;
    }

    /// The punctuation-tick fence point. Call right after this router
    /// flushed its batches and emitted its punctuation: merges the local
    /// sketches into the shared tuner state, acks/commits/adopts pending
    /// switches, retires expired probe coverages and runs the tuning step
    /// when due.
    pub fn tick(&mut self) -> TickReport {
        // Age out retiring probe coverages (the store plan's coverage is
        // pinned and never expires here).
        for e in &mut self.probes {
            if let Some(t) = e.ttl.as_mut() {
                *t -= 1;
            }
        }
        self.probes.retain(|e| e.ttl != Some(0));

        let mut adopted = false;
        let shared = Arc::clone(&self.shared);
        let mut guard = shared.lock();
        let inner = &mut *guard;

        // 1. Merge this router's local deltas into the tuner state.
        inner.cm.merge(&self.cm);
        self.cm.clear();
        inner.ss.merge(&self.ss);
        self.ss.clear();
        for (u, c) in self.loads.drain() {
            *inner.loads.entry(u).or_insert(0) += c;
        }
        inner.total += self.total;
        self.total = 0;

        // 2. Ack any pending plan: its coverage enters our probe union
        //    *before* any router may store under it — the completeness
        //    half of the fence.
        let idx = self.router as usize;
        let mut commit: Option<RoutePlan> = None;
        if let Some(p) = inner.pending.as_mut() {
            if let Some(slot) = p.acked.get_mut(idx) {
                *slot = true;
            }
            if p.acked.iter().all(|&a| a) {
                commit = Some(p.plan.clone());
            }
        }
        if let Some(p) = inner.pending.as_ref() {
            self.pin(p.plan.subgroups, &p.plan.hot.clone());
        }
        if let Some(plan) = commit {
            inner.pending = None;
            shared.epoch.store(plan.epoch, Ordering::Release);
            shared.switches.fetch_add(1, Ordering::Relaxed);
            inner.committed = plan;
        }

        // 3. Adopt the newest committed plan as our store plan. Safe: we
        //    acked (hence probe) it before it could commit.
        if inner.committed.epoch > self.store_plan.epoch {
            let new = inner.committed.clone();
            let keep = inner.pending.as_ref().map(|p| p.plan.clone());
            self.adopt(new, keep.as_ref());
            adopted = true;
        }

        // 4. Tuning step (or the debug flip storm), only when no switch
        //    is in flight.
        inner.ticks += 1;
        if inner.pending.is_none() {
            let next_epoch = inner.committed.epoch + 1;
            let proposal = if inner.flip || inner.flip_once {
                inner.flip_once = false;
                let d = if inner.committed.subgroups == 1 { shared.max_subgroups } else { 1 };
                (d != inner.committed.subgroups).then(|| RoutePlan {
                    epoch: next_epoch,
                    subgroups: d,
                    hot: inner.committed.hot.clone(),
                })
            } else if inner.ticks % shared.tune_period == 0 {
                let p = retune(inner, &shared.tuning, shared.max_subgroups, next_epoch);
                inner.cm.decay();
                inner.ss.decay();
                for c in inner.loads.values_mut() {
                    *c /= 2;
                }
                inner.total /= 2;
                p
            } else {
                None
            };
            if let Some(plan) = proposal {
                let mut acked = vec![false; shared.routers];
                if let Some(slot) = acked.get_mut(idx) {
                    *slot = true; // the publisher is at its fence right now
                }
                self.pin(plan.subgroups, &plan.hot.clone());
                if acked.iter().all(|&a| a) {
                    // Single-router engine: publish, ack and commit are
                    // one step.
                    shared.epoch.store(plan.epoch, Ordering::Release);
                    shared.switches.fetch_add(1, Ordering::Relaxed);
                    inner.committed = plan.clone();
                    self.adopt(plan, None);
                    adopted = true;
                } else {
                    inner.pending = Some(Pending { plan, acked });
                }
            }
        }

        TickReport {
            epoch: self.store_plan.epoch,
            subgroups: self.store_plan.subgroups,
            hot_len: self.store_plan.hot.len(),
            adopted,
        }
    }

    /// Test-only bug hook: adopt the newest published plan immediately,
    /// mid-stream, *without* waiting for the punctuation fence — and drop
    /// every older coverage from the probe union. Violates the protocol's
    /// completeness invariant: tuples stored under the old plan stop
    /// being probed, so join results go missing — which is exactly what
    /// the Auditor's output oracle is armed to catch.
    pub fn debug_unfenced_adopt(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut guard = shared.lock();
        let inner = &mut *guard;
        let target = match inner.pending.as_mut() {
            Some(p) => {
                if let Some(slot) = p.acked.get_mut(self.router as usize) {
                    *slot = true;
                }
                p.plan.clone()
            }
            None => inner.committed.clone(),
        };
        drop(guard);
        if target.epoch > self.store_plan.epoch {
            self.probes.clear();
            self.probes.push(ProbeEntry {
                subgroups: target.subgroups,
                hot: target.hot.clone(),
                ttl: None,
            });
            self.store_plan = target;
        }
    }
}

/// Compute a new plan from the merged statistics, or `None` when the
/// committed plan still fits.
fn retune(
    inner: &Inner,
    tuning: &AdaptiveTuning,
    max_subgroups: usize,
    next_epoch: u64,
) -> Option<RoutePlan> {
    if inner.total == 0 {
        return None;
    }
    let hot = inner.ss.hot_keys(inner.total, tuning.hot_min_share_ppm, tuning.hot_capacity);
    let d = inner.committed.subgroups;
    let mut new_d = d;
    if inner.loads.len() >= 2 {
        let max = inner.loads.values().copied().max().unwrap_or(0);
        let sum: u64 = inner.loads.values().sum();
        let mean = sum / inner.loads.len() as u64;
        if mean > 0 {
            let pct = max.saturating_mul(100) / mean;
            if pct >= u64::from(tuning.widen_above_pct) {
                // Load concentrates: widen the subgroups (halve d) so
                // cold-key storage spreads over more units.
                new_d = (d / 2).max(1);
            } else if pct <= u64::from(tuning.narrow_below_pct) {
                // Balanced: narrow the subgroups (double d) to shrink
                // the probe fan-out.
                new_d = (d * 2).min(max_subgroups);
            }
        }
    }
    if hot == inner.committed.hot && new_d == d {
        return None;
    }
    Some(RoutePlan { epoch: next_epoch, subgroups: new_d, hot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn tuning() -> AdaptiveTuning {
        AdaptiveTuning::default()
    }

    #[test]
    fn count_min_never_underestimates_and_is_deterministic() {
        let mut a = CountMinSketch::new(42);
        let mut b = CountMinSketch::new(42);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            // Zipf-ish: low keys dominate.
            let k = (rng.gen_range(0..1000u64)).pow(2) / 1000;
            a.observe(k);
            b.observe(k);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (&k, &t) in &truth {
            assert!(a.estimate(k) >= t, "count-min underestimated key {k}");
            assert_eq!(a.estimate(k), b.estimate(k), "same seed, same estimates");
        }
        // The heavy key's overestimate is bounded by the collision mass
        // of one row: total / CM_WIDTH per colliding key, far below 2x.
        let (&heavy, &ht) = truth.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(a.estimate(heavy) <= ht + 20_000 / 64, "gross overestimate on {heavy}");
    }

    #[test]
    fn count_min_memory_is_fixed() {
        let mut cm = CountMinSketch::new(1);
        let words = cm.memory_words();
        for k in 0..100_000u64 {
            cm.observe(k);
        }
        assert_eq!(cm.memory_words(), words, "observing never grows the sketch");
        cm.decay();
        assert_eq!(cm.memory_words(), words);
    }

    #[test]
    fn space_saving_bounds_memory_and_error() {
        let cap = 16;
        let mut ss = SpaceSaving::new(cap);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0u64;
        for _ in 0..50_000 {
            let k = (rng.gen_range(0..400u64)).pow(2) / 400;
            ss.observe(k);
            *truth.entry(k).or_insert(0) += 1;
            total += 1;
        }
        assert!(ss.entries().len() <= cap, "bounded memory");
        for e in ss.entries() {
            let t = truth.get(&e.key).copied().unwrap_or(0);
            assert!(e.count >= t, "count is an overestimate");
            assert!(e.count - e.err <= t, "guaranteed count is a lower bound");
            assert!(e.err <= total / cap as u64, "classical error bound");
        }
    }

    #[test]
    fn space_saving_finds_zipf_heavy_hitters() {
        let mut ss = SpaceSaving::new(64);
        let mut rng = StdRng::seed_from_u64(11);
        let mut total = 0u64;
        for _ in 0..40_000 {
            // Key 1 takes ~30 % of the stream; the rest is a long tail.
            let k = if rng.gen_range(0..10) < 3 { 1 } else { rng.gen_range(2..5_000u64) };
            ss.observe(k);
            total += 1;
        }
        let hot = ss.hot_keys(total, 20_000, 16);
        assert!(hot.contains(&1), "the 30 % key is hot");
        assert!(hot.len() <= 16);
        assert!(hot.windows(2).all(|w| w[0] < w[1]), "sorted for binary search");
    }

    #[test]
    fn single_router_switch_commits_at_the_same_tick() {
        let shared = AdaptiveShared::new(tuning(), 1, 2, 4, 8, 9);
        let mut r = shared.handle(0);
        shared.force_flip_every_tick(true);
        let report = r.tick();
        assert!(report.adopted, "single router commits and adopts in one step");
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.switches(), 1);
        assert_eq!(r.store_plan().subgroups, 1, "flip: non-1 d flips to 1");
        assert!(r.probe_coverages() >= 2, "old coverage retires, is not dropped");
    }

    #[test]
    fn request_flip_is_one_shot() {
        let shared = AdaptiveShared::new(tuning(), 1, 2, 4, 8, 9);
        let mut r = shared.handle(0);
        shared.request_flip();
        assert!(r.tick().adopted, "the requested flip commits at the next tick");
        assert_eq!(shared.switches(), 1);
        for _ in 0..5 {
            r.tick();
        }
        assert_eq!(shared.switches(), 1, "one request, exactly one switch");
        shared.request_flip();
        r.tick();
        assert_eq!(shared.switches(), 2);
    }

    #[test]
    fn two_phase_switch_requires_every_ack() {
        let shared = AdaptiveShared::new(tuning(), 2, 2, 4, 8, 9);
        let mut a = shared.handle(0);
        let mut b = shared.handle(1);
        shared.force_flip_every_tick(true);

        // a publishes + self-acks: pending, not committed.
        assert!(!a.tick().adopted);
        assert_eq!(shared.epoch(), 0, "one ack of two: no commit");
        assert!(shared.has_pending());
        assert!(a.probe_coverages() >= 2, "publisher probes the pending plan already");

        // b acks at its fence: all acks in, commit.
        let rb = b.tick();
        assert_eq!(shared.epoch(), 1, "second ack commits");
        assert_eq!(shared.switches(), 1);
        assert!(rb.adopted, "the committing router adopts at the same fence");

        // a adopts at its next fence; until then it stores under the old
        // plan, which b still probes (it never dropped epoch-0 coverage).
        assert_eq!(a.store_plan().epoch, 0);
        assert!(a.tick().adopted);
        assert_eq!(a.store_plan().epoch, 1);
    }

    #[test]
    fn superseded_coverage_retires_after_its_ttl() {
        let retire = 3;
        let shared = AdaptiveShared::new(tuning(), 1, 2, 4, retire, 9);
        let mut r = shared.handle(0);
        shared.force_flip_every_tick(true);
        r.tick();
        shared.force_flip_every_tick(false);
        assert_eq!(r.probe_coverages(), 2, "old + new coverage");
        for _ in 0..retire {
            r.tick();
        }
        assert_eq!(r.probe_coverages(), 1, "old coverage aged out");
    }

    #[test]
    fn probe_union_covers_both_plans_during_a_switch() {
        let layout = Layout::new(4, 4, 1).unwrap();
        let shared = AdaptiveShared::new(tuning(), 1, 4, 4, 8, 9);
        let mut r = shared.handle(0);
        let h = 0xDEAD_BEEF;
        let before = r.join_dests(&layout, Rel::S, h);
        shared.force_flip_every_tick(true);
        r.tick(); // flip 4 -> 1: coarse coverage joins the union
        let during = r.join_dests(&layout, Rel::S, h);
        assert!(during.len() >= before.len(), "union only widens mid-switch");
        assert!(before.iter().all(|u| during.contains(u)), "old coverage kept");
        assert_eq!(during.len(), 4, "d=1 coverage is the whole side");
    }

    #[test]
    fn unfenced_adopt_drops_old_coverage() {
        let shared = AdaptiveShared::new(tuning(), 2, 4, 4, 8, 9);
        let mut a = shared.handle(0);
        let mut b = shared.handle(1);
        shared.force_flip_every_tick(true);
        a.tick(); // pending published (4 -> 1)
        b.debug_unfenced_adopt();
        assert_eq!(b.store_plan().subgroups, 1, "adopted mid-stream");
        assert_eq!(b.probe_coverages(), 1, "old coverage dropped: the bug");
    }

    #[test]
    fn hot_keys_store_anywhere_and_probe_everywhere() {
        let layout = Layout::new(4, 4, 4).unwrap();
        let shared = AdaptiveShared::new(tuning(), 1, 4, 4, 8, 9);
        let mut r = shared.handle(0);
        let hot = 0x1234;
        // Install a plan with one hot key by hand (via the tuner: feed a
        // massively skewed stream, then tick until a tune step runs).
        for _ in 0..10_000 {
            r.observe(hot);
        }
        for _ in 0..(tuning().tune_every_puncts + 1) {
            r.tick();
        }
        assert!(r.store_plan().is_hot(hot), "the 100 % key went hot");
        let probes = r.join_dests(&layout, Rel::S, hot);
        assert_eq!(probes.len(), 4, "hot key probes the whole opposite side");
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(r.store_dest(&layout, Rel::R, hot, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4, "hot key stores across the whole own side");
    }

    #[test]
    fn cold_keys_stay_in_their_subgroup() {
        let layout = Layout::new(6, 6, 3).unwrap();
        let shared = AdaptiveShared::new(tuning(), 1, 3, 6, 8, 9);
        let mut r = shared.handle(0);
        let mut rng = StdRng::seed_from_u64(5);
        for h in 0..50u64 {
            let g = bucket_of(h, 3);
            let dest = r.store_dest(&layout, Rel::R, h, &mut rng).unwrap();
            assert_eq!(layout.subgroup_of(Rel::R, dest), Some(g));
            let probes = r.join_dests(&layout, Rel::S, h);
            let expect: Vec<_> = layout.subgroup_units(Rel::S, g).collect();
            assert_eq!(probes, expect, "cold coverage is the ContRand subgroup");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_count_min_overestimates_every_key(
            seed in 0u64..1_000, n in 100usize..2_000,
        ) {
            let mut cm = CountMinSketch::new(seed);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..n {
                let k = (rng.gen_range(0..200u64)).pow(2) / 200;
                cm.observe(k);
                *truth.entry(k).or_insert(0) += 1;
            }
            for (&k, &t) in &truth {
                prop_assert!(cm.estimate(k) >= t);
            }
        }

        #[test]
        fn prop_space_saving_bounds_hold(
            seed in 0u64..1_000, n in 100usize..5_000, cap in 4usize..32,
        ) {
            let mut ss = SpaceSaving::new(cap);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..n {
                let k = (rng.gen_range(0..100u64)).pow(2) / 100;
                ss.observe(k);
                *truth.entry(k).or_insert(0) += 1;
            }
            prop_assert!(ss.entries().len() <= cap);
            for e in ss.entries() {
                let t = truth.get(&e.key).copied().unwrap_or(0);
                prop_assert!(e.count >= t);
                prop_assert!(e.count - e.err <= t);
                prop_assert!(e.err <= n as u64 / cap as u64);
            }
        }

        #[test]
        fn prop_probe_union_always_contains_store_dest(
            seed in 0u64..500, keys in proptest::collection::vec(0u64..10_000, 1..200),
        ) {
            // Completeness under arbitrary switch interleavings: whatever
            // unit the store plan picks, the *same router's* probe union
            // for that key (of the opposite side pattern) must cover the
            // matching subgroup — i.e. a store decision made now is
            // probed now.
            let layout = Layout::new(4, 4, 2).unwrap();
            let shared = AdaptiveShared::new(AdaptiveTuning::default(), 1, 2, 4, 4, seed);
            let mut r = shared.handle(0);
            shared.force_flip_every_tick(true);
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, &h) in keys.iter().enumerate() {
                r.observe(h);
                let dest = r.store_dest(&layout, Rel::R, h, &mut rng).unwrap();
                // An S-side tuple of the same key probes the R side.
                let probes = r.join_dests(&layout, Rel::R, h);
                prop_assert!(
                    probes.contains(&dest),
                    "store dest {dest} not probed (probes {probes:?})"
                );
                if i % 7 == 0 {
                    r.tick();
                }
            }
        }
    }
}
