//! Multi-way stream joins as cascades of binary bicliques.
//!
//! BiStream evaluates binary joins; multi-way joins (`A ⋈ B ⋈ C`) are
//! supported the way the paper's framing implies — by decomposing into a
//! pipeline of binary joins, each running its own biclique: stage 1
//! computes `A ⋈ B`, its results are flattened into composite tuples
//! (`A`'s attributes followed by `B`'s, timestamped `max(a.ts, b.ts)`),
//! and those feed stage 2's R side against stream `C`. Each stage keeps
//! its own window, routing strategy and ordering protocol; elasticity
//! applies per stage (each stage is an independent biclique).
//!
//! Window semantics: the composite tuple carries the *later* of its
//! constituents' timestamps, so stage 2's window constrains
//! `|max(a,b).ts − c.ts|` — the standard semantics of pipelined windowed
//! binary joins (each adjacent pair is window-constrained; `a` and `c`
//! are only transitively constrained). This is documented behaviour, not
//! an approximation of some other definition.

use crate::config::EngineConfig;
use crate::engine::BicliqueEngine;
use bistream_types::error::{Error, Result};
use bistream_types::rel::Rel;
use bistream_types::time::Ts;
use bistream_types::tuple::{JoinResult, Tuple};

/// Flatten a binary join result into a composite tuple for the next
/// stage: R-side attributes, then S-side attributes, relation `rel`,
/// timestamp `max(r.ts, s.ts)`.
pub fn flatten(result: &JoinResult, rel: Rel) -> Tuple {
    let mut values = Vec::with_capacity(result.r.values().len() + result.s.values().len());
    values.extend_from_slice(result.r.values());
    values.extend_from_slice(result.s.values());
    Tuple::new(rel, result.ts, values)
}

/// A three-way windowed stream join `A ⋈ B ⋈ C` as two cascaded
/// bicliques.
///
/// Stage 1 joins `A` (as R) with `B` (as S); stage 2 joins the flattened
/// `A⋈B` composites (as R) with `C` (as S). Stage-2 predicate attribute
/// indexes address the composite layout: `A`'s attributes first, then
/// `B`'s.
pub struct CascadeJoin {
    stage1: BicliqueEngine,
    stage2: BicliqueEngine,
    /// Arity of A's schema (for documentation/validation of stage-2
    /// attribute indexes).
    a_arity: usize,
}

impl CascadeJoin {
    /// Build the cascade. `stage1` joins A⋈B, `stage2` joins the
    /// composite against C; `a_arity` is the attribute count of stream A
    /// (used to sanity-check stage 2's predicate indexes).
    pub fn new(stage1: EngineConfig, stage2: EngineConfig, a_arity: usize) -> Result<CascadeJoin> {
        let mut s1 = BicliqueEngine::new(stage1)?;
        s1.capture_results();
        let mut s2 = BicliqueEngine::new(stage2)?;
        s2.capture_results();
        Ok(CascadeJoin { stage1: s1, stage2: s2, a_arity })
    }

    /// Arity of stream A (stage-2 predicates address B's attribute `i`
    /// at composite index `a_arity + i`).
    pub fn a_arity(&self) -> usize {
        self.a_arity
    }

    /// Ingest a stream-A tuple (must be tagged `Rel::R`).
    pub fn ingest_a(&mut self, tuple: &Tuple, now: Ts) -> Result<()> {
        if tuple.rel() != Rel::R {
            return Err(Error::Config("stream A tuples must be tagged Rel::R".into()));
        }
        self.stage1.ingest(tuple, now)?;
        self.forward(now)
    }

    /// Ingest a stream-B tuple (must be tagged `Rel::S`).
    pub fn ingest_b(&mut self, tuple: &Tuple, now: Ts) -> Result<()> {
        if tuple.rel() != Rel::S {
            return Err(Error::Config("stream B tuples must be tagged Rel::S".into()));
        }
        self.stage1.ingest(tuple, now)?;
        self.forward(now)
    }

    /// Ingest a stream-C tuple (must be tagged `Rel::S`; it joins the
    /// composite stream on stage 2).
    pub fn ingest_c(&mut self, tuple: &Tuple, now: Ts) -> Result<()> {
        if tuple.rel() != Rel::S {
            return Err(Error::Config("stream C tuples must be tagged Rel::S".into()));
        }
        self.stage2.ingest(tuple, now)
    }

    /// Punctuate both stages at `now` (forwards any stage-1 results the
    /// punctuation released).
    pub fn punctuate(&mut self, now: Ts) -> Result<()> {
        self.stage1.punctuate(now)?;
        self.forward(now)?;
        self.stage2.punctuate(now)
    }

    /// Terminal flush of both stages.
    pub fn flush(&mut self, now: Ts) -> Result<()> {
        self.stage1.flush()?;
        self.forward(now)?;
        self.stage2.flush()
    }

    /// Take the three-way results produced so far. Each result's `r` side
    /// is the flattened `A⋈B` composite and its `s` side the matched `C`
    /// tuple.
    pub fn take_results(&mut self) -> Vec<JoinResult> {
        self.stage2.take_captured()
    }

    /// Stage engines, for metrics and scaling (`0` = A⋈B, `1` = ⋈C).
    pub fn stage_mut(&mut self, i: usize) -> &mut BicliqueEngine {
        match i {
            0 => &mut self.stage1,
            _ => &mut self.stage2,
        }
    }

    fn forward(&mut self, now: Ts) -> Result<()> {
        for result in self.stage1.take_captured() {
            let composite = flatten(&result, Rel::R);
            debug_assert!(composite.values().len() >= self.a_arity);
            self.stage2.ingest(&composite, now)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingStrategy;
    use bistream_types::predicate::JoinPredicate;
    use bistream_types::value::Value;
    use bistream_types::window::WindowSpec;

    const W: Ts = 1_000;

    fn cfg(predicate: JoinPredicate) -> EngineConfig {
        EngineConfig {
            r_joiners: 2,
            s_joiners: 2,
            predicate,
            window: WindowSpec::sliding(W),
            routing: RoutingStrategy::Random,
            archive_period_ms: 50,
            punctuation_interval_ms: 20,
            ordering: true,
            seed: 9,
            batch_size: 1,
            adaptive: Default::default(),
        }
    }

    /// Streams: A(k, x), B(k, y), C(y).
    /// Query: A.k = B.k AND B.y = C.y.
    fn cascade() -> CascadeJoin {
        let stage1 = cfg(JoinPredicate::Equi { r_attr: 0, s_attr: 0 });
        // Composite = [A.k, A.x, B.k, B.y]; B.y is index 3.
        let stage2 = cfg(JoinPredicate::Equi { r_attr: 3, s_attr: 0 });
        CascadeJoin::new(stage1, stage2, 2).unwrap()
    }

    fn a(ts: Ts, k: i64, x: i64) -> Tuple {
        Tuple::new(Rel::R, ts, vec![Value::Int(k), Value::Int(x)])
    }
    fn b(ts: Ts, k: i64, y: i64) -> Tuple {
        Tuple::new(Rel::S, ts, vec![Value::Int(k), Value::Int(y)])
    }
    fn c(ts: Ts, y: i64) -> Tuple {
        Tuple::new(Rel::S, ts, vec![Value::Int(y)])
    }

    #[test]
    fn flatten_concatenates_and_takes_max_ts() {
        let result = JoinResult::of(a(10, 1, 2), b(20, 1, 3));
        let composite = flatten(&result, Rel::R);
        assert_eq!(composite.ts(), 20);
        assert_eq!(
            composite.values(),
            &[Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn three_way_join_matches_reference() {
        let mut cj = cascade();
        // Deterministic little workload.
        let mut a_tuples = Vec::new();
        let mut b_tuples = Vec::new();
        let mut c_tuples = Vec::new();
        for i in 0..30i64 {
            let ts = i as Ts * 11;
            a_tuples.push(a(ts, i % 5, i));
            b_tuples.push(b(ts + 1, i % 5, i % 3));
            c_tuples.push(c(ts + 2, i % 3));
        }
        let mut now = 0;
        for i in 0..30 {
            now = a_tuples[i].ts();
            cj.ingest_a(&a_tuples[i], now).unwrap();
            cj.ingest_b(&b_tuples[i], now + 1).unwrap();
            cj.ingest_c(&c_tuples[i], now + 2).unwrap();
            cj.punctuate(now + 3).unwrap();
        }
        cj.punctuate(now + 50).unwrap();
        cj.flush(now + 50).unwrap();
        let got = cj.take_results().len();

        // Brute-force reference with the cascade's window semantics:
        // |a.ts − b.ts| ≤ W and |max(a.ts,b.ts) − c.ts| ≤ W.
        let mut expect = 0usize;
        for ta in &a_tuples {
            for tb in &b_tuples {
                if ta.get(0) != tb.get(0) || ta.ts().abs_diff(tb.ts()) > W {
                    continue;
                }
                let ab_ts = ta.ts().max(tb.ts());
                for tc in &c_tuples {
                    if tb.get(1) == tc.get(0) && ab_ts.abs_diff(tc.ts()) <= W {
                        expect += 1;
                    }
                }
            }
        }
        assert!(expect > 0);
        assert_eq!(got, expect, "three-way cascade matches the reference join");
    }

    #[test]
    fn stage2_results_expose_composite_and_c_sides() {
        let mut cj = cascade();
        cj.ingest_a(&a(10, 1, 7), 10).unwrap();
        cj.ingest_b(&b(11, 1, 9), 11).unwrap();
        cj.punctuate(12).unwrap();
        cj.ingest_c(&c(13, 9), 13).unwrap();
        cj.punctuate(40).unwrap();
        cj.flush(40).unwrap();
        let results = cj.take_results();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.r.values().len(), 4, "composite A++B");
        assert_eq!(r.s.values(), &[Value::Int(9)]);
    }

    #[test]
    fn wrong_relation_tags_rejected() {
        let mut cj = cascade();
        assert!(cj.ingest_a(&b(0, 1, 1), 0).is_err());
        assert!(cj.ingest_b(&a(0, 1, 1), 0).is_err());
        assert!(cj.ingest_c(&a(0, 1, 1), 0).is_err());
    }

    #[test]
    fn stages_are_independently_scalable() {
        let mut cj = cascade();
        cj.stage_mut(0).scale_to(Rel::R, 4, 0).unwrap();
        cj.stage_mut(1).scale_to(Rel::S, 3, 0).unwrap();
        // Still joins correctly after scaling both stages.
        cj.ingest_a(&a(10, 2, 0), 10).unwrap();
        cj.ingest_b(&b(11, 2, 5), 11).unwrap();
        cj.punctuate(12).unwrap();
        cj.ingest_c(&c(13, 5), 13).unwrap();
        cj.punctuate(40).unwrap();
        cj.flush(40).unwrap();
        assert_eq!(cj.take_results().len(), 1);
    }
}
