//! The join-biclique distributed stream join engine (BiStream).
//!
//! A cluster of `n + m` processing units is organised as a complete
//! bipartite graph: `n` **joiner** units store partitions of relation R,
//! `m` store partitions of S. **Router** units ingest the interleaved
//! input streams and send every tuple (a) to exactly one unit of its own
//! side for *storage* and (b) to the unit(s) of the opposite side that may
//! hold matching tuples for *join processing*. Routers and joiners only
//! ever talk through the message substrate — no joiner-to-joiner edges —
//! which is what makes the topology elastic: units can be added or retired
//! without touching stored state.
//!
//! Module map:
//!
//! - [`config`] — engine configuration (sides, routing strategy, archive
//!   period, punctuation interval).
//! - [`adaptive`] — skew-adaptive routing: hot-key sketches in the router
//!   hot path, the self-tuning hot/cold tier classifier, and the
//!   punctuation-fenced two-phase strategy-switch protocol.
//! - [`layout`] — the mutable biclique topology: unit ids per side,
//!   ContRand subgroups, scaling edits.
//! - [`router`] — the routing core: Random, Hash (content-sensitive) and
//!   ContRand strategies, sequence stamping, punctuation emission.
//! - [`ordering`] — the joiner-side reorder buffer implementing the
//!   order-consistent protocol over pairwise-FIFO channels.
//! - [`joiner`] — the joiner core: store/join branches over the chained
//!   in-memory index, Theorem-1 discarding, result emission, resource
//!   charging.
//! - [`delivery`] — simulated pairwise-FIFO channels with pluggable
//!   (in-order or adversarial) schedulers.
//! - [`engine`] — the assembled biclique for deterministic in-process
//!   execution, including elastic scaling operations.
//! - [`sim`] — the virtual-time driver for long-horizon experiments
//!   (dynamic scaling, memory behaviour).
//! - [`exec`] — the live pipeline facade: one [`exec::Pipeline`] API over
//!   pluggable execution backends (broker or sharded), for wall-clock
//!   throughput/latency measurements.
//! - [`sharded`] — the lock-free sharded multi-core backend: one worker
//!   thread per router/joiner unit over hand-rolled bounded rings.
//! - [`chaos`] — deterministic fault injection: the plan-driven network
//!   scheduler, the crash/recover trial runner and the failing-plan
//!   minimiser behind the chaos exploration harness.
//! - [`cascade`] — multi-way joins as pipelines of binary bicliques.
//! - [`query`] — a schema-aware query builder resolving named join
//!   conditions into engine configurations.
//! - [`stats`] — engine-wide observability.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod cascade;
pub mod chaos;
pub mod config;
pub mod delivery;
pub mod engine;
pub mod exec;
pub mod joiner;
pub mod layout;
pub mod ordering;
pub mod query;
pub mod router;
pub mod sharded;
pub mod sim;
pub mod stats;

pub use config::{EngineConfig, RoutingStrategy};
pub use engine::BicliqueEngine;
pub use joiner::JoinerCore;
pub use layout::{JoinerId, Layout};
pub use query::{JoinQuery, QueryBuilder};
pub use router::RouterCore;
pub use stats::EngineStats;
