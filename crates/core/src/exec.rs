//! The live pipeline facade: one [`Pipeline`] API over pluggable
//! execution [`Backend`]s, each running routers and joiners as OS threads
//! inside one process.
//!
//! Both backends realise the same dataflow — ingest edge feeding a
//! competing-consumer router tier, one pairwise-FIFO channel per
//! router→joiner pair, joiners running the ordering protocol and the
//! store/join branches — and register the same observability series, so
//! callers, dashboards, the SLO engine and the auditor are
//! backend-agnostic:
//!
//! - [`Backend::Broker`]: the AMQP-model broker — a topic **ingest**
//!   exchange plus a direct **units** exchange fanning byte-encoded
//!   frames out to mutex-guarded bounded queues. The deployment shape of
//!   the original systems, scaled down into one process.
//! - [`Backend::Sharded`]: the lock-free sharded runtime
//!   ([`crate::sharded`]) — one worker thread per router/joiner unit over
//!   hand-rolled bounded rings, moving frames as in-memory values.
//!
//! The pipeline topology is fixed for its lifetime (dynamic scaling is the
//! simulator's job); this runtime exists to measure real wall-clock
//! throughput and latency (experiments E3, E10 and the criterion benches).

use crate::adaptive::AdaptiveShared;
use crate::config::EngineConfig;
use crate::joiner::{JoinerCore, JoinerStats};
use crate::layout::{JoinerId, Layout};
use crate::router::{RoutedBatch, RouterCore};
use crate::sharded::ShardedRuntime;
use crate::stats::{EngineSnapshot, EngineStats};
use bistream_broker::{Broker, ExchangeKind, Message, RecvError};
use bistream_cluster::CostModel;
use bistream_types::audit::Auditor;
use bistream_types::batch::BatchMessage;
use bistream_types::error::{Error, Result};
use bistream_types::hash::FxHashMap;
use bistream_types::perf::PerfReport;
use bistream_types::punct::{RouterId, SeqNo};
use bistream_types::recorder::RunHealth;
use bistream_types::registry::{Observability, RegistrySnapshot};
use bistream_types::slo::SloSpec;
use bistream_types::time::{Clock, Ts, WallClock};
use bistream_types::trace::Trace;
use bistream_types::tuple::{JoinResult, Tuple};
use bistream_types::watchdog::WatchdogConfig;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Exchange receiving raw input tuples.
const INGEST_EXCHANGE: &str = "tuple.exchange";
/// Queue making routers a competing-consumer group (crate-visible so the
/// chaos drills can target it with seeded stall windows).
pub(crate) const INGEST_QUEUE: &str = "tuple.exchange.routers";
/// Direct exchange fanning copies to unit queues.
const UNITS_EXCHANGE: &str = "units.exchange";

/// Which execution substrate carries frames from routers to joiners.
///
/// Both backends present the identical [`Pipeline`] surface and emit the
/// same results, metric series, trace spans and audit events; they differ
/// only in how frames physically move (and therefore in throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// AMQP-model broker: mutex-guarded bounded queues, frames
    /// byte-encoded per hop. The fidelity-first default.
    #[default]
    Broker,
    /// Lock-free sharded runtime: one core-pinnable worker thread per
    /// router/joiner unit, frames handed over bounded SPSC/MPMC rings as
    /// in-memory values (see [`crate::sharded`]). The throughput backend.
    Sharded,
}

/// Configuration of the live pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Engine configuration (topology, predicate, window, ordering,
    /// `batch_size` for the router→joiner framing…).
    pub engine: EngineConfig,
    /// Router instances competing on the ingest queue.
    pub routers: usize,
    /// Ingest queue bound (backpressure point for the feeder).
    pub ingest_capacity: usize,
    /// Per-unit queue bound (backpressure point for routers).
    pub unit_capacity: usize,
    /// CPU cost model charged to joiner meters (observability only in
    /// live mode — real CPU is spent regardless).
    pub cost: CostModel,
    /// Per-tuple trace sampling: `Some(n)` traces 1-in-`n` tuples through
    /// router → queue → joiner with wall-clock span stamps; `None` (the
    /// default) disables tracing entirely.
    pub trace_one_in: Option<u64>,
    /// Protocol-invariant auditor observing every router, queue and
    /// joiner. `None` (the default) self-arms in debug builds via
    /// [`Auditor::new_if_debug`]; release builds then run unaudited.
    pub auditor: Option<Auditor>,
    /// Service-level objectives graded over the run's scrape series
    /// (launch scrape, every [`Pipeline::sample`] call, and the final
    /// pre-teardown scrape). `None` skips SLO grading.
    pub slo: Option<SloSpec>,
    /// Progress-watchdog tuning (stall-tick threshold).
    pub watchdog: WatchdogConfig,
    /// Which execution substrate to run (broker queues or the sharded
    /// ring runtime). Defaults to [`Backend::Broker`].
    pub backend: Backend,
    /// Capture every emitted [`JoinResult`] and return them in
    /// [`PipelineReport::captured`] (per-joiner emission order,
    /// concatenated in layout unit order). Off by default — capturing
    /// buffers the whole result stream in memory; it exists for
    /// equivalence tests and small diagnostic runs.
    pub capture_results: bool,
}

impl PipelineConfig {
    /// Defaults: 1 router, 8K/4K queue bounds, default cost model, no
    /// tracing.
    pub fn new(engine: EngineConfig) -> PipelineConfig {
        PipelineConfig {
            engine,
            routers: 1,
            ingest_capacity: 8_192,
            unit_capacity: 4_096,
            cost: CostModel::default(),
            trace_one_in: None,
            auditor: None,
            slo: None,
            watchdog: WatchdogConfig::default(),
            backend: Backend::default(),
            capture_results: false,
        }
    }
}

/// Final report of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Engine-wide counters.
    pub snapshot: EngineSnapshot,
    /// Per-joiner counters (unit order follows the layout).
    pub joiners: Vec<JoinerStats>,
    /// Wall-clock runtime from launch to finish, ms.
    pub elapsed_ms: u64,
    /// Completed per-tuple traces, sorted by trace id (empty unless
    /// [`PipelineConfig::trace_one_in`] was set).
    pub traces: Vec<Trace>,
    /// The auditor that observed the run (if any): query it with
    /// [`Auditor::finish`] / [`Auditor::assert_clean`].
    pub auditor: Option<Auditor>,
    /// Queueing-model analysis over the launch→finish registry scrapes:
    /// per-unit service rates, utilization, and per-hop wait/service
    /// summaries (see [`bistream_types::perf::analyze`]).
    pub perf: PerfReport,
    /// SLO verdicts, stall-watchdog findings and (on breach) the
    /// flight-recorder bundle, graded over the same scrape series as
    /// `perf` (see [`bistream_types::recorder::grade_run`]).
    pub health: RunHealth,
    /// Every emitted join result, in per-joiner emission order
    /// concatenated in layout unit order — empty unless
    /// [`PipelineConfig::capture_results`] was set.
    pub captured: Vec<JoinResult>,
}

/// The running execution substrate behind a [`Pipeline`]: everything that
/// differs between backends (how frames move, how teardown drains) lives
/// behind this enum; everything else in [`Pipeline`] is shared.
enum Inner {
    /// Broker substrate: the broker itself plus the thread handles and
    /// the unit-queue names teardown must delete in punctuation order.
    Broker {
        broker: Broker,
        router_handles: Vec<JoinHandle<Result<()>>>,
        joiner_handles: Vec<JoinHandle<Result<(JoinerStats, Vec<JoinResult>)>>>,
        unit_queues: Vec<String>,
    },
    /// Sharded ring substrate (owns its own worker handles).
    Sharded(ShardedRuntime),
}

/// A running live pipeline.
pub struct Pipeline {
    inner: Inner,
    stats: Arc<EngineStats>,
    obs: Observability,
    /// Shared adaptive-routing state when the engine runs
    /// [`crate::config::RoutingStrategy::Adaptive`]; `None` otherwise.
    adaptive: Option<Arc<AdaptiveShared>>,
    auditor: Option<Auditor>,
    clock: Arc<WallClock>,
    started: Instant,
    /// Registry scrapes collected while running: the launch baseline,
    /// every [`Pipeline::sample`] call, and (appended by
    /// [`Pipeline::finish`]) the terminal pre-teardown scrape. This is the
    /// series the queueing model, the SLO engine and the stall watchdog
    /// all grade.
    samples: Mutex<Vec<RegistrySnapshot>>,
    slo: Option<SloSpec>,
    watchdog: WatchdogConfig,
}

impl Pipeline {
    /// Build the configured backend's topology and launch all threads.
    pub fn launch(config: PipelineConfig) -> Result<Pipeline> {
        config.engine.validate()?;
        let subgroups = match config.engine.routing {
            crate::config::RoutingStrategy::ContRand { subgroups }
            | crate::config::RoutingStrategy::Adaptive { subgroups } => subgroups,
            _ => 1,
        };
        let layout =
            Arc::new(Layout::new(config.engine.r_joiners, config.engine.s_joiners, subgroups)?);
        // Adaptive routing: one shared tuner spanning every router thread,
        // built before launch so each thread gets its handle up front.
        // Superseded probe coverage outlives the window, in punct ticks.
        let adaptive = match config.engine.routing {
            crate::config::RoutingStrategy::Adaptive { subgroups } => {
                let punct = config.engine.punctuation_interval_ms.max(1);
                let retire_ticks = match config.engine.window.size() {
                    Some(w) => (w / punct).saturating_add(2),
                    None => u64::MAX / 2,
                };
                let max_subgroups =
                    config.engine.r_joiners.min(config.engine.s_joiners).max(1);
                Some(AdaptiveShared::new(
                    config.engine.adaptive,
                    config.routers.max(1),
                    subgroups,
                    max_subgroups,
                    retire_ticks,
                    config.engine.seed,
                ))
            }
            _ => None,
        };
        let obs = match config.trace_one_in {
            Some(n) => Observability::with_tracing(n),
            None => Observability::new(),
        };
        let clock = Arc::new(WallClock::new());
        let auditor = config.auditor.clone().or_else(Auditor::new_if_debug);
        if let Some(a) = &auditor {
            a.attach_journal(obs.journal.clone());
        }
        let stats = EngineStats::shared();
        stats.register_into(&obs.registry, &[("engine", "live")]);

        let inner = match config.backend {
            Backend::Broker => {
                launch_broker(&config, &layout, &obs, &auditor, &stats, &clock, &adaptive)?
            }
            Backend::Sharded => Inner::Sharded(ShardedRuntime::launch(
                &config,
                &layout,
                &obs,
                auditor.clone(),
                Arc::clone(&stats),
                Arc::clone(&clock),
                config.capture_results,
                adaptive.clone(),
            )?),
        };

        let launch_scrape = obs.registry.scrape(clock.now());
        Ok(Pipeline {
            inner,
            stats,
            obs,
            adaptive,
            auditor,
            clock,
            started: Instant::now(),
            samples: Mutex::new(vec![launch_scrape]),
            slo: config.slo,
            watchdog: config.watchdog,
        })
    }
}

/// Declare the broker topology and launch its router/joiner threads —
/// the [`Backend::Broker`] arm of [`Pipeline::launch`].
fn launch_broker(
    config: &PipelineConfig,
    layout: &Arc<Layout>,
    obs: &Observability,
    auditor: &Option<Auditor>,
    stats: &Arc<EngineStats>,
    clock: &Arc<WallClock>,
    adaptive: &Option<Arc<AdaptiveShared>>,
) -> Result<Inner> {
    let broker = Broker::new();
    // Attach observability before any queue exists so every queue gets
    // depth/publish/deliver series and backpressure journal events.
    broker.attach_observability(obs.clone(), Arc::clone(clock) as Arc<dyn Clock>);
    if let Some(a) = auditor {
        broker.attach_auditor(a.clone());
    }
    broker.declare_exchange(INGEST_EXCHANGE, ExchangeKind::Topic)?;
    broker.declare_exchange(UNITS_EXCHANGE, ExchangeKind::Direct)?;
    broker.declare_queue(INGEST_QUEUE, config.ingest_capacity)?;
    broker.bind(INGEST_EXCHANGE, INGEST_QUEUE, "#")?;

    // Engine-wide sequence counter shared by all routers.
    let seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let router_ids: Vec<(RouterId, SeqNo)> =
        (0..config.routers.max(1)).map(|i| (i as RouterId, 0)).collect();

    // Interned routing keys: one `Arc<str>` per unit, shared by every
    // router thread so the publish hot path never re-allocates the key.
    let unit_keys: Arc<FxHashMap<JoinerId, Arc<str>>> = Arc::new(
        layout.all_units().map(|(_, id)| (id, Arc::<str>::from(unit_key(id)))).collect(),
    );

    // Unit queues + joiner threads.
    let mut unit_queues = Vec::new();
    let mut joiner_handles = Vec::new();
    for (side, id) in layout.all_units() {
        let qname = unit_queue(id);
        broker.declare_queue(&qname, config.unit_capacity)?;
        broker.bind(UNITS_EXCHANGE, &qname, &unit_key(id))?;
        unit_queues.push(qname.clone());
        let consumer = broker.subscribe(&qname)?;
        let mut joiner = JoinerCore::new(
            id,
            side,
            config.engine.predicate.clone(),
            config.engine.window,
            config.engine.archive_period_ms,
            config.engine.ordering,
            &router_ids,
            config.cost,
        );
        joiner.attach_obs(obs);
        joiner.set_batch_size(config.engine.batch_size);
        if let Some(a) = auditor {
            joiner.set_auditor(a.clone());
        }
        let per_joiner_latency = joiner.latency_histogram();
        let stats = Arc::clone(stats);
        let clock = Arc::clone(clock);
        let capture = config.capture_results;
        joiner_handles.push(std::thread::spawn(
            move || -> Result<(JoinerStats, Vec<JoinResult>)> {
                let mut captured: Vec<JoinResult> = Vec::new();
                let mut on_result = |result: JoinResult| {
                    stats.results.inc();
                    let latency = clock.now().saturating_sub(result.ts);
                    stats.latency_ms.record(latency);
                    if let Some(h) = &per_joiner_latency {
                        h.record(latency);
                    }
                    if capture {
                        captured.push(result);
                    }
                };
                loop {
                    match consumer.recv_timeout(Duration::from_millis(50)) {
                        Ok(m) => {
                            let mut payload = m.payload;
                            let msg = BatchMessage::decode(&mut payload)?;
                            joiner.set_now(clock.now());
                            joiner.handle_batch(msg, &mut on_result)?;
                        }
                        Err(RecvError::Timeout) => continue,
                        Err(RecvError::Disconnected) => break,
                    }
                }
                // Channel closed and drained: terminally flush whatever
                // the final punctuations left buffered.
                joiner.set_now(clock.now());
                joiner.flush(&mut on_result)?;
                drop(on_result);
                Ok((joiner.stats(), captured))
            },
        ));
    }

    // Router threads.
    let mut router_handles = Vec::new();
    for (rid, _) in &router_ids {
        let consumer = broker.subscribe(INGEST_QUEUE)?;
        let mut core = RouterCore::new(
            *rid,
            config.engine.routing,
            config.engine.predicate.clone(),
            config.engine.seed,
            Arc::clone(&seq),
        );
        core.attach_registry(&obs.registry);
        core.attach_tracer(obs.tracer.clone());
        core.set_batch_size(config.engine.batch_size);
        if let Some(a) = auditor {
            core.set_auditor(a.clone());
        }
        if let Some(sh) = adaptive {
            core.attach_adaptive(sh.handle(*rid));
        }
        let tracer = obs.tracer.clone();
        let layout = Arc::clone(layout);
        let broker = broker.clone();
        let stats = Arc::clone(stats);
        let unit_keys = Arc::clone(&unit_keys);
        let punct_interval = Duration::from_millis(config.engine.punctuation_interval_ms);
        router_handles.push(std::thread::spawn(move || -> Result<()> {
            let mut frames: Vec<RoutedBatch> = Vec::new();
            let mut last_punct = Instant::now();
            let publish = |frames: &mut Vec<RoutedBatch>| -> Result<()> {
                for f in frames.drain(..) {
                    let key = Arc::clone(&unit_keys[&f.dest]);
                    match &f.msg {
                        BatchMessage::Batch(b) => {
                            stats.copies.add(b.len() as u64);
                            // Out-of-band headers: queues record
                            // enqueue/dequeue spans for every sampled
                            // tuple in the frame without decoding it.
                            let sampled: Vec<u64> = b
                                .entries()
                                .iter()
                                .map(|e| e.seq)
                                .filter(|&s| tracer.sampled(s))
                                .collect();
                            let mut m = Message::new(key, f.msg.encode()?);
                            if !sampled.is_empty() {
                                m = m.with_trace_seqs(sampled);
                            }
                            broker.publish(UNITS_EXCHANGE, m)?;
                        }
                        BatchMessage::Punct(_) => {
                            stats.punctuations.inc();
                            broker
                                .publish(UNITS_EXCHANGE, Message::new(key, f.msg.encode()?))?;
                        }
                    }
                }
                Ok(())
            };
            loop {
                match consumer.recv_timeout(punct_interval) {
                    Ok(m) => {
                        let mut payload = m.payload;
                        let tuple = Tuple::decode(&mut payload)?;
                        stats.ingested.inc();
                        core.route_batched(&tuple, &layout, &[], &mut frames)?;
                        publish(&mut frames)?;
                    }
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::Disconnected) => {
                        core.punctuate_batched(&layout, &mut frames);
                        publish(&mut frames)?;
                        return Ok(());
                    }
                }
                if last_punct.elapsed() >= punct_interval {
                    core.punctuate_batched(&layout, &mut frames);
                    publish(&mut frames)?;
                    last_punct = Instant::now();
                }
            }
        }));
    }

    Ok(Inner::Broker { broker, router_handles, joiner_handles, unit_queues })
}

impl Pipeline {
    /// The pipeline's observability bundle: one registry scrape covers
    /// engine, per-router, per-joiner, per-pod and per-queue series, and
    /// the journal records store/join/punctuation/backpressure events from
    /// the same code paths the simulator exercises.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Wall-clock "now" of this pipeline (for stamping input tuples so
    /// latency is measurable).
    pub fn now(&self) -> Ts {
        self.clock.now()
    }

    /// The protocol-invariant auditor observing this pipeline, if any.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.auditor.as_ref()
    }

    /// The shared adaptive-routing state when running
    /// [`crate::config::RoutingStrategy::Adaptive`] (`None` under static
    /// strategies). Tests read the committed epoch / switch counter here
    /// and arm [`AdaptiveShared::force_flip_every_tick`]; the router
    /// threads observe the flag at their next punctuation tick.
    pub fn adaptive_state(&self) -> Option<&Arc<AdaptiveShared>> {
        self.adaptive.as_ref()
    }

    /// Feed one tuple (blocking when the ingest edge is full). On the
    /// broker backend the tuple is byte-encoded into a published message;
    /// on the sharded backend it moves into the ingest ring as a value.
    pub fn ingest(&self, tuple: &Tuple) -> Result<()> {
        match &self.inner {
            Inner::Broker { broker, .. } => {
                let key = format!("{}.in", tuple.rel());
                broker.publish(INGEST_EXCHANGE, Message::new(key, tuple.encode()))?;
                Ok(())
            }
            Inner::Sharded(rt) => rt.ingest(tuple),
        }
    }

    /// Live counters (sampleable while running).
    pub fn stats(&self) -> EngineSnapshot {
        self.stats.snapshot()
    }

    /// Broker management view (queue depths etc.). The sharded backend
    /// has no broker — it reports empty stats; its ring depths live in
    /// the registry's `bistream_queue_*` series instead.
    pub fn broker_stats(&self) -> bistream_broker::BrokerStats {
        match &self.inner {
            Inner::Broker { broker, .. } => broker.stats(),
            Inner::Sharded(_) => {
                bistream_broker::BrokerStats { exchanges: Vec::new(), queues: Vec::new() }
            }
        }
    }

    /// Take one registry scrape now and append it to the run's sample
    /// series. Callers pace this however they like (typically once per
    /// SLO evaluation interval); [`Pipeline::finish`] grades the SLO spec
    /// and the stall watchdog over the collected series.
    pub fn sample(&self) {
        let snap = self.obs.registry.scrape(self.clock.now());
        self.samples.lock().push(snap);
    }

    /// Stall or resume one named queue — the chaos drills use this to
    /// inject stalls into a live run on either backend. On the broker,
    /// publishers park while consumers keep draining (see
    /// [`Broker::set_queue_stalled`]); on the sharded runtime the unit's
    /// consumer holds and frames pile up in its rings. Both charge the
    /// same backpressure/stall series.
    pub fn set_queue_stalled(&self, queue: &str, on: bool) -> Result<()> {
        match &self.inner {
            Inner::Broker { broker, .. } => broker.set_queue_stalled(queue, on),
            Inner::Sharded(rt) => rt.set_queue_stalled(queue, on),
        }
    }

    /// Point-in-time Prometheus text exposition of every registered series
    /// — the payload a `/metrics` endpoint would serve while the pipeline
    /// runs. Rendering goes through [`bistream_types::telemetry`], the
    /// single exposition-format emitter.
    pub fn telemetry_text(&self) -> String {
        bistream_types::telemetry::prometheus_text(&self.obs.registry, self.clock.now())
    }

    /// Stop feeding, drain everything, join all threads and report.
    pub fn finish(self) -> Result<PipelineReport> {
        // Terminal scrape *before* teardown: deleting a queue retires its
        // series, and both the Little's-law rows and the watchdog need the
        // queue gauges. Work drained after this point is excluded from
        // `perf` (it still counts in `snapshot`).
        let series = bistream_types::metrics::finalize_scrape_series(
            &self.obs.registry,
            self.clock.now(),
            std::mem::take(&mut *self.samples.lock()),
        );
        let (joiners, captured) = match self.inner {
            Inner::Broker { broker, router_handles, joiner_handles, unit_queues } => {
                // 1. Close the ingest tier: routers drain then see
                //    Disconnected and emit a final punctuation.
                broker.delete_queue(INGEST_QUEUE)?;
                for h in router_handles {
                    h.join().map_err(|_| Error::Closed)??;
                }
                // 2. Close the unit tier: joiners drain (data + puncts).
                for q in &unit_queues {
                    broker.delete_queue(q)?;
                }
                let mut joiners = Vec::new();
                let mut captured = Vec::new();
                for h in joiner_handles {
                    let (stats, mut results) = h.join().map_err(|_| Error::Closed)??;
                    joiners.push(stats);
                    captured.append(&mut results);
                }
                (joiners, captured)
            }
            // The sharded runtime's own two-phase shutdown mirrors the
            // same punctuation-ordered drain.
            Inner::Sharded(rt) => rt.shutdown()?,
        };
        // Every joiner has flushed, so open branches can never close now.
        self.obs.tracer.flush_pending();
        let mut traces = self.obs.tracer.drain();
        traces.sort_by_key(|t| t.id);
        // The launch and terminal scrapes bracket the whole run (plus any
        // mid-run `sample()` scrapes): the analyzer calibrates and
        // evaluates on the same window, which is the honest choice for a
        // one-shot report; the SLO engine and watchdog grade the same
        // evidence. The journal is snapshotted, not drained — the report
        // must not steal events from a caller holding the bundle.
        let perf = bistream_types::perf::analyze(&series);
        let events = self.obs.journal.snapshot();
        let health = bistream_types::recorder::grade_run(
            self.slo.as_ref(),
            &self.watchdog,
            &series,
            &events,
            &traces,
        );
        Ok(PipelineReport {
            snapshot: self.stats.snapshot(),
            joiners,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            traces,
            auditor: self.auditor,
            perf,
            health,
            captured,
        })
    }
}

fn unit_queue(id: JoinerId) -> String {
    format!("unit.{}", id.0)
}

fn unit_key(id: JoinerId) -> String {
    format!("{}", id.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingStrategy;
    use bistream_types::rel::Rel;
    use bistream_types::value::Value;

    fn config(routing: RoutingStrategy, ordering: bool) -> PipelineConfig {
        let mut engine = EngineConfig::default_equi();
        engine.routing = routing;
        engine.ordering = ordering;
        engine.window = bistream_types::window::WindowSpec::sliding(60_000);
        let mut c = PipelineConfig::new(engine);
        c.routers = 2;
        c
    }

    fn feed_pairs(p: &Pipeline, pairs: usize) {
        for i in 0..pairs {
            let now = p.now();
            p.ingest(&Tuple::new(Rel::R, now, vec![Value::Int(i as i64)])).unwrap();
            p.ingest(&Tuple::new(Rel::S, now, vec![Value::Int(i as i64)])).unwrap();
        }
    }

    #[test]
    fn live_pipeline_produces_every_match_exactly_once() {
        let p = Pipeline::launch(config(RoutingStrategy::Hash, true)).unwrap();
        feed_pairs(&p, 500);
        // Allow punctuation cycles to flush.
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 1_000);
        assert_eq!(report.snapshot.results, 500, "exactly one result per pair");
        let total_stored: u64 = report.joiners.iter().map(|j| j.stored).sum();
        assert_eq!(total_stored, 1_000);
        assert!(report.snapshot.latency.count > 0);
        if let Some(a) = &report.auditor {
            a.assert_clean();
        }
    }

    #[test]
    fn batched_framing_produces_every_match_exactly_once() {
        let mut c = config(RoutingStrategy::Hash, true);
        c.engine.batch_size = 16;
        c.trace_one_in = Some(7);
        let p = Pipeline::launch(c).unwrap();
        feed_pairs(&p, 500);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 1_000);
        assert_eq!(report.snapshot.results, 500, "batching must not change results");
        assert_eq!(report.snapshot.copies, 2_000, "hash equi: store + join copy per tuple");
        // Sampled tuples still trace through router → queue → joiner even
        // when they share a frame with unsampled neighbours.
        let complete: Vec<_> = report.traces.iter().filter(|t| t.complete).collect();
        assert!(!complete.is_empty());
        for t in &complete {
            assert!(t.has_hop(bistream_types::trace::HopKind::Enqueue));
            assert!(t.has_hop(bistream_types::trace::HopKind::Dequeue));
        }
        if let Some(a) = &report.auditor {
            a.assert_clean();
        }
    }

    #[test]
    fn random_routing_matches_too() {
        let p = Pipeline::launch(config(RoutingStrategy::Random, true)).unwrap();
        feed_pairs(&p, 200);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 200);
        // Random join stream broadcasts: copies/tuple = 1 + 2.
        assert!((report.snapshot.copies_per_tuple() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn contrand_routing_works_live() {
        let mut c = config(RoutingStrategy::ContRand { subgroups: 2 }, true);
        c.engine.r_joiners = 4;
        c.engine.s_joiners = 4;
        let p = Pipeline::launch(c).unwrap();
        feed_pairs(&p, 300);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 300);
        // ContRand d=2 over 4 units/side: 1 store + 2 join copies.
        assert!((report.snapshot.copies_per_tuple() - 3.0).abs() < 1e-9);
        // Both subgroups' units stored something.
        let active_units = report.joiners.iter().filter(|j| j.stored > 0).count();
        assert!(active_units >= 4, "stores spread across subgroups: {active_units}");
    }

    #[test]
    fn ordering_disabled_still_flows_live() {
        // Without the protocol the live pipeline is best-effort; with one
        // router and uncontended queues the happy path still joins.
        let p = Pipeline::launch(config(RoutingStrategy::Hash, false)).unwrap();
        feed_pairs(&p, 100);
        std::thread::sleep(Duration::from_millis(100));
        let report = p.finish().unwrap();
        assert!(report.snapshot.results > 0);
    }

    #[test]
    fn finish_drains_without_feeding() {
        let p = Pipeline::launch(config(RoutingStrategy::Hash, true)).unwrap();
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 0);
        assert_eq!(report.snapshot.results, 0);
    }

    #[test]
    fn observability_scrape_covers_queues_joiners_routers_and_engine() {
        let p = Pipeline::launch(config(RoutingStrategy::Hash, true)).unwrap();
        feed_pairs(&p, 100);
        std::thread::sleep(Duration::from_millis(150));
        let snap = p.observability().registry.scrape(p.now());
        // 200 publishes into the ingest queue happened before the scrape.
        assert_eq!(
            snap.counter("bistream_queue_published_total", &[("queue", INGEST_QUEUE)]),
            Some(200)
        );
        assert!(snap.get("bistream_queue_depth", &[("queue", "unit.0")]).is_some());
        let stored: u64 = ["R0", "R1"]
            .iter()
            .map(|u| snap.counter("bistream_joiner_stored_total", &[("joiner", u)]).unwrap())
            .sum();
        assert!(stored > 0, "stores visible per joiner");
        assert!(snap
            .get("bistream_router_route_decisions_total", &[("router", "r0"), ("strategy", "hash")])
            .is_some());
        assert!(snap.get("bistream_pod_cpu_busy_us_total", &[("pod", "S2")]).is_some());
        assert!(snap.counter("bistream_tuples_ingested_total", &[("engine", "live")]).is_some());
        let events = p.observability().journal.drain();
        assert!(events.iter().any(|e| e.kind.tag() == "TupleStored"));
        p.finish().unwrap();
    }

    #[test]
    fn telemetry_export_and_perf_report_cover_the_run() {
        let p = Pipeline::launch(config(RoutingStrategy::Hash, true)).unwrap();
        feed_pairs(&p, 200);
        std::thread::sleep(Duration::from_millis(150));
        let text = p.telemetry_text();
        assert!(text.contains("# TYPE bistream_queue_depth gauge"), "got: {text}");
        assert!(text.contains("bistream_tuples_ingested_total{engine=\"live\"} 400"));
        let report = p.finish().unwrap();
        // The queueing model saw every pod meter the layout registered.
        assert_eq!(report.perf.units.len(), 4, "2x2 layout: {:?}", report.perf.units);
        for u in &report.perf.units {
            assert!(u.arrivals > 0, "unit {} processed tuples", u.unit);
            assert!(u.utilization_observed >= 0.0);
        }
        // Queue series exist in live mode, so Little's-law rows appear.
        assert!(!report.perf.queues.is_empty());
    }

    #[test]
    fn live_tracing_produces_multi_hop_traces() {
        use bistream_types::trace::HopKind;
        let mut c = config(RoutingStrategy::Hash, true);
        c.trace_one_in = Some(5);
        let p = Pipeline::launch(c).unwrap();
        feed_pairs(&p, 100);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert!(!report.traces.is_empty(), "1-in-5 over 200 tuples");
        let complete: Vec<_> = report.traces.iter().filter(|t| t.complete).collect();
        assert!(!complete.is_empty(), "drained pipeline closes every branch");
        for t in &complete {
            assert!(t.has_hop(HopKind::Route), "trace {} starts at a router", t.id);
            assert!(t.has_hop(HopKind::Enqueue), "broker queues record enqueues");
            assert!(t.has_hop(HopKind::Dequeue));
            assert!(t.has_hop(HopKind::Store) || t.has_hop(HopKind::Probe));
        }
        for w in report.traces.windows(2) {
            assert!(w[0].id < w[1].id, "sorted by trace id");
        }
    }

    #[test]
    fn broker_stats_visible_while_running() {
        let p = Pipeline::launch(config(RoutingStrategy::Hash, true)).unwrap();
        let stats = p.broker_stats();
        // ingest queue + 4 unit queues.
        assert_eq!(stats.queues.len(), 5);
        assert!(stats.exchanges.contains(&INGEST_EXCHANGE.to_string()));
        p.finish().unwrap();
    }

    fn sharded_config(routing: RoutingStrategy, ordering: bool) -> PipelineConfig {
        let mut c = config(routing, ordering);
        c.backend = Backend::Sharded;
        c
    }

    #[test]
    fn sharded_backend_produces_every_match_exactly_once() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Hash, true)).unwrap();
        feed_pairs(&p, 500);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 1_000);
        assert_eq!(report.snapshot.results, 500, "exactly one result per pair");
        let total_stored: u64 = report.joiners.iter().map(|j| j.stored).sum();
        assert_eq!(total_stored, 1_000);
        assert!(report.snapshot.latency.count > 0);
        if let Some(a) = &report.auditor {
            a.assert_clean();
        }
    }

    #[test]
    fn sharded_batched_framing_and_tracing_match_the_broker_contract() {
        let mut c = sharded_config(RoutingStrategy::Hash, true);
        c.engine.batch_size = 16;
        c.trace_one_in = Some(7);
        let p = Pipeline::launch(c).unwrap();
        feed_pairs(&p, 500);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 500, "batching must not change results");
        assert_eq!(report.snapshot.copies, 2_000, "hash equi: store + join copy per tuple");
        // Ring hand-offs record the same enqueue/dequeue spans the broker
        // queues do.
        let complete: Vec<_> = report.traces.iter().filter(|t| t.complete).collect();
        assert!(!complete.is_empty());
        for t in &complete {
            assert!(t.has_hop(bistream_types::trace::HopKind::Route));
            assert!(t.has_hop(bistream_types::trace::HopKind::Enqueue));
            assert!(t.has_hop(bistream_types::trace::HopKind::Dequeue));
            assert!(
                t.has_hop(bistream_types::trace::HopKind::Store)
                    || t.has_hop(bistream_types::trace::HopKind::Probe)
            );
        }
        if let Some(a) = &report.auditor {
            a.assert_clean();
        }
    }

    #[test]
    fn sharded_random_routing_matches_too() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Random, true)).unwrap();
        feed_pairs(&p, 200);
        std::thread::sleep(Duration::from_millis(150));
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 200);
        assert!((report.snapshot.copies_per_tuple() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_finish_drains_without_feeding() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Hash, true)).unwrap();
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.ingested, 0);
        assert_eq!(report.snapshot.results, 0);
    }

    #[test]
    fn capture_returns_the_result_stream_on_both_backends() {
        for backend in [Backend::Broker, Backend::Sharded] {
            let mut c = config(RoutingStrategy::Hash, true);
            c.backend = backend;
            c.capture_results = true;
            let p = Pipeline::launch(c).unwrap();
            feed_pairs(&p, 100);
            std::thread::sleep(Duration::from_millis(100));
            let report = p.finish().unwrap();
            assert_eq!(report.snapshot.results, 100);
            assert_eq!(
                report.captured.len(),
                100,
                "{backend:?}: every emitted result is captured"
            );
        }
    }

    #[test]
    fn sharded_observability_scrape_covers_ring_queues() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Hash, true)).unwrap();
        feed_pairs(&p, 100);
        std::thread::sleep(Duration::from_millis(150));
        let snap = p.observability().registry.scrape(p.now());
        // 200 tuples entered the ingest ring before the scrape, under the
        // same series names the broker's ingest queue would register.
        assert_eq!(
            snap.counter("bistream_queue_published_total", &[("queue", INGEST_QUEUE)]),
            Some(200)
        );
        assert!(snap.get("bistream_queue_depth", &[("queue", "unit.0")]).is_some());
        assert!(snap.counter("bistream_tuples_ingested_total", &[("engine", "live")]).is_some());
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 100);
        // Little's-law rows appear because ring series mirror queue series.
        assert!(!report.perf.queues.is_empty());
    }

    #[test]
    fn sharded_stall_injection_holds_a_unit_and_recovers() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Hash, true)).unwrap();
        assert!(p.set_queue_stalled("no.such.queue", true).is_err());
        p.set_queue_stalled("unit.0", true).unwrap();
        feed_pairs(&p, 100);
        std::thread::sleep(Duration::from_millis(60));
        p.set_queue_stalled("unit.0", false).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let snap = p.observability().registry.scrape(p.now());
        let stalled_ms =
            snap.counter("bistream_queue_stall_ms_total", &[("queue", "unit.0")]).unwrap_or(0);
        assert!(stalled_ms > 0, "held unit charges the stall series");
        let report = p.finish().unwrap();
        assert_eq!(report.snapshot.results, 100, "stall delays but never drops");
    }

    #[test]
    fn sharded_broker_stats_are_empty() {
        let p = Pipeline::launch(sharded_config(RoutingStrategy::Hash, true)).unwrap();
        assert!(p.broker_stats().queues.is_empty());
        p.finish().unwrap();
    }
}
