//! Simulated message delivery between routers and joiners.
//!
//! The network guarantees the engine relies on is exactly *pairwise FIFO*
//! (Definition 8): messages from one router to one joiner arrive in send
//! order. Everything else — the interleaving across channels — is up to
//! the scheduler, and that freedom is what the ordering protocol must
//! tolerate. Two schedulers are provided:
//!
//! - [`DeliveryMode::InOrder`] delivers messages in global send order
//!   (the benign schedule; what a single-threaded run would see).
//! - [`DeliveryMode::Shuffled`] picks a random non-empty channel each
//!   step, producing adversarial cross-channel interleavings while still
//!   honouring per-channel FIFO — the schedule that exposes the
//!   duplicate/missed-result races when the ordering protocol is off
//!   (experiment E7).

use crate::layout::JoinerId;
use bistream_types::punct::{RouterId, StreamMessage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The unified execution-substrate seam: every delivery fabric the engine
/// can run on — the simulated [`ChannelNet`], the fault-injecting
/// [`ChaosNet`](crate::chaos::ChaosNet), and (via the same contract,
/// adapted to per-thread handles) the sharded runtime's SPSC rings —
/// speaks this trait.
///
/// # Contract
///
/// - **Pairwise FIFO (Definition 8).** Frames from one router to one
///   joiner are delivered in send order. Cross-channel interleaving is
///   implementation-defined.
/// - **No silent loss.** A frame is either accepted (`send` returns
///   `true`) and eventually delivered, or refused (`false`, e.g. a
///   partitioned channel) and the *caller* keeps it for retry. Refusal is
///   the only loss mode.
/// - **Punctuation fencing.** A punctuation accepted after the data
///   frames it covers is delivered after them on that channel (a direct
///   consequence of pairwise FIFO); [`drain`](DataPlane::drain) preserves
///   this, so a drained unit sees its final punctuation *behind* every
///   copy it fences.
/// - **Retirement.** [`forget_unit`](DataPlane::forget_unit) discards a
///   retired unit's in-flight traffic; a future network backend maps this
///   to closing the unit's connections.
pub trait DataPlane<M> {
    /// Enqueue a frame from `router` to `dest`. Returns `false` when the
    /// fabric refuses it (partition, closed channel); the caller then
    /// owns the frame and must retry or drop it knowingly.
    #[must_use]
    fn send(&mut self, router: RouterId, dest: JoinerId, msg: M) -> bool;

    /// Deliver the next frame per the fabric's schedule.
    fn deliver_next(&mut self) -> Option<InFlight<M>>;

    /// Frames currently in flight.
    fn pending(&self) -> usize;

    /// Pull every in-flight frame destined for `unit`, preserving
    /// per-channel send order (punctuation fencing included) — the
    /// two-phase-shutdown primitive: close ingest, then drain each unit
    /// in punctuation order.
    fn drain(&mut self, unit: JoinerId) -> Vec<M>;

    /// Discard all in-flight traffic to a retired unit.
    fn forget_unit(&mut self, unit: JoinerId);
}

/// Delivery scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Global send order (benign).
    InOrder,
    /// Random non-empty channel per step, seeded (adversarial but
    /// pairwise-FIFO).
    Shuffled {
        /// RNG seed for the channel choice.
        seed: u64,
    },
}

/// One message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight<M = StreamMessage> {
    /// Destination unit.
    pub dest: JoinerId,
    /// The message.
    pub msg: M,
}

// One NetImpl exists per engine; the size spread between the two
// variants is irrelevant next to heap contents.
#[allow(clippy::large_enum_variant)]
enum NetImpl<M> {
    InOrder {
        queue: VecDeque<InFlight<M>>,
    },
    Shuffled {
        /// Per-channel FIFO queues.
        channels: Vec<((RouterId, JoinerId), VecDeque<M>)>,
        rng: StdRng,
        pending: usize,
    },
}

/// The simulated network, generic over the frame type it carries — the
/// engine moves [`bistream_types::BatchMessage`] frames; per-tuple
/// [`StreamMessage`] remains the default for protocol-level tests.
pub struct ChannelNet<M = StreamMessage> {
    inner: NetImpl<M>,
}

impl<M> ChannelNet<M> {
    /// A network with the given scheduling policy.
    pub fn new(mode: DeliveryMode) -> ChannelNet<M> {
        let inner = match mode {
            DeliveryMode::InOrder => NetImpl::InOrder { queue: VecDeque::new() },
            DeliveryMode::Shuffled { seed } => NetImpl::Shuffled {
                channels: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                pending: 0,
            },
        };
        ChannelNet { inner }
    }

    /// Enqueue a message from `router` to `dest`.
    pub fn send(&mut self, router: RouterId, dest: JoinerId, msg: M) {
        match &mut self.inner {
            NetImpl::InOrder { queue } => queue.push_back(InFlight { dest, msg }),
            NetImpl::Shuffled { channels, pending, .. } => {
                let key = (router, dest);
                match channels.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, q)) => q.push_back(msg),
                    None => {
                        let mut q = VecDeque::new();
                        q.push_back(msg);
                        channels.push((key, q));
                    }
                }
                *pending += 1;
            }
        }
    }

    /// Deliver the next message per the scheduling policy.
    pub fn deliver_next(&mut self) -> Option<InFlight<M>> {
        match &mut self.inner {
            NetImpl::InOrder { queue } => queue.pop_front(),
            NetImpl::Shuffled { channels, rng, pending } => {
                if *pending == 0 {
                    return None;
                }
                loop {
                    let i = rng.gen_range(0..channels.len());
                    let ((_, dest), q) = &mut channels[i];
                    if let Some(msg) = q.pop_front() {
                        *pending -= 1;
                        return Some(InFlight { dest: *dest, msg });
                    }
                }
            }
        }
    }

    /// Messages currently in flight.
    pub fn pending(&self) -> usize {
        match &self.inner {
            NetImpl::InOrder { queue } => queue.len(),
            NetImpl::Shuffled { pending, .. } => *pending,
        }
    }

    /// Drop all channels to a retired unit (messages to it are discarded).
    pub fn forget_unit(&mut self, unit: JoinerId) {
        match &mut self.inner {
            NetImpl::InOrder { queue } => queue.retain(|m| m.dest != unit),
            NetImpl::Shuffled { channels, pending, .. } => {
                channels.retain(|((_, dest), q)| {
                    if *dest == unit {
                        *pending -= q.len();
                        false
                    } else {
                        true
                    }
                });
            }
        }
    }
}

impl<M> DataPlane<M> for ChannelNet<M> {
    /// The simulated network never refuses a frame.
    fn send(&mut self, router: RouterId, dest: JoinerId, msg: M) -> bool {
        ChannelNet::send(self, router, dest, msg);
        true
    }

    fn deliver_next(&mut self) -> Option<InFlight<M>> {
        ChannelNet::deliver_next(self)
    }

    fn pending(&self) -> usize {
        ChannelNet::pending(self)
    }

    fn drain(&mut self, unit: JoinerId) -> Vec<M> {
        match &mut self.inner {
            NetImpl::InOrder { queue } => {
                let mut out = Vec::new();
                let mut keep = VecDeque::with_capacity(queue.len());
                for f in queue.drain(..) {
                    if f.dest == unit {
                        out.push(f.msg);
                    } else {
                        keep.push_back(f);
                    }
                }
                *queue = keep;
                out
            }
            NetImpl::Shuffled { channels, pending, .. } => {
                // Per-channel FIFO is preserved; channels drain in the
                // order they were first used (deterministic).
                let mut out = Vec::new();
                channels.retain_mut(|((_, dest), q)| {
                    if *dest == unit {
                        *pending -= q.len();
                        out.extend(q.drain(..));
                        false
                    } else {
                        true
                    }
                });
                out
            }
        }
    }

    fn forget_unit(&mut self, unit: JoinerId) {
        ChannelNet::forget_unit(self, unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistream_types::punct::Punctuation;

    fn punct(router: RouterId, seq: u64) -> StreamMessage {
        StreamMessage::Punct(Punctuation { router, seq })
    }

    #[test]
    fn in_order_preserves_global_send_order() {
        let mut net = ChannelNet::new(DeliveryMode::InOrder);
        for seq in 1..=5 {
            net.send(0, JoinerId(seq as u32 % 2), punct(0, seq));
        }
        let seqs: Vec<u64> =
            std::iter::from_fn(|| net.deliver_next()).map(|m| m.msg.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(net.pending(), 0);
    }

    #[test]
    fn shuffled_preserves_pairwise_fifo() {
        let mut net = ChannelNet::new(DeliveryMode::Shuffled { seed: 42 });
        // Two routers, two joiners, interleaved sends.
        for seq in 1..=50u64 {
            for r in 0..2 {
                for j in 0..2 {
                    net.send(r, JoinerId(j), punct(r, seq));
                }
            }
        }
        let mut last: std::collections::HashMap<(RouterId, JoinerId), u64> = Default::default();
        let mut count = 0;
        while let Some(m) = net.deliver_next() {
            let key = (m.msg.router(), m.dest);
            let prev = last.insert(key, m.msg.seq());
            if let Some(p) = prev {
                assert!(m.msg.seq() > p, "FIFO violated on {key:?}");
            }
            count += 1;
        }
        assert_eq!(count, 200);
    }

    #[test]
    fn shuffled_actually_interleaves_across_channels() {
        let mut net = ChannelNet::new(DeliveryMode::Shuffled { seed: 7 });
        for seq in 1..=20u64 {
            net.send(0, JoinerId(0), punct(0, seq));
            net.send(1, JoinerId(0), punct(1, seq));
        }
        let order: Vec<RouterId> =
            std::iter::from_fn(|| net.deliver_next()).map(|m| m.msg.router()).collect();
        // Not all of router 0 then all of router 1 (or vice versa).
        let first_half_same = order[..20].iter().all(|&r| r == order[0]);
        assert!(!first_half_same, "expected interleaving, got {order:?}");
    }

    #[test]
    fn forget_unit_discards_its_traffic() {
        for mode in [DeliveryMode::InOrder, DeliveryMode::Shuffled { seed: 1 }] {
            let mut net = ChannelNet::new(mode);
            net.send(0, JoinerId(0), punct(0, 1));
            net.send(0, JoinerId(1), punct(0, 2));
            net.forget_unit(JoinerId(0));
            assert_eq!(net.pending(), 1);
            let only = net.deliver_next().unwrap();
            assert_eq!(only.dest, JoinerId(1));
        }
    }

    #[test]
    fn data_plane_send_never_refuses_on_channel_net() {
        let mut net: ChannelNet = ChannelNet::new(DeliveryMode::InOrder);
        let plane: &mut dyn DataPlane<StreamMessage> = &mut net;
        assert!(plane.send(0, JoinerId(0), punct(0, 1)));
        assert_eq!(plane.pending(), 1);
    }

    #[test]
    fn drain_extracts_one_unit_in_channel_order() {
        for mode in [DeliveryMode::InOrder, DeliveryMode::Shuffled { seed: 3 }] {
            let mut net = ChannelNet::new(mode);
            for seq in 1..=5u64 {
                net.send(0, JoinerId(0), punct(0, seq));
                net.send(0, JoinerId(1), punct(0, seq));
            }
            let drained = DataPlane::drain(&mut net, JoinerId(0));
            // Per-channel FIFO: unit 0's frames come out in send order,
            // with the punctuation fence (highest seq) last.
            let seqs: Vec<u64> = drained.iter().map(StreamMessage::seq).collect();
            assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
            // The other unit's traffic is untouched.
            assert_eq!(net.pending(), 5);
            assert!(std::iter::from_fn(|| net.deliver_next()).all(|m| m.dest == JoinerId(1)));
        }
    }
}
